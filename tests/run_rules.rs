//! Run-rule enforcement (paper Section 6.1): minimum query counts and
//! durations, seeded sample selection, thermal/cooldown behaviour, and the
//! submission checker — exercised through the real device SUT.

use loadgen::checker::{check_log, Violation};
use loadgen::log::RunLog;
use loadgen::run::{performance_sample_set, run_single_stream};
use loadgen::scenario::TestSettings;
use loadgen::sut::SystemUnderTest;
use mlperf_mobile::harness::{run_benchmark, RunRules};
use mlperf_mobile::sut_impl::{DatasetScale, DeviceSut};
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::Backend;
use mobile_backend::backends::{Neuron, Snpe};
use soc_sim::catalog::ChipId;
use soc_sim::time::SimDuration;

fn device_sut(task: Task) -> DeviceSut {
    let soc = ChipId::Dimensity1100.build();
    let def = suite(SuiteVersion::V1_0).into_iter().find(|d| d.task == task).unwrap();
    let deployment = Neuron.compile(&def.model.build(), &soc).unwrap();
    DeviceSut::new(soc, deployment, &def, DatasetScale::Reduced(128), 42, 22.0)
}

#[test]
fn single_stream_satisfies_1024_and_60s() {
    // Classification at ~2.2 ms: 1024 queries take ~2.3 s, so the 60 s
    // minimum forces ~27k queries.
    let mut sut = device_sut(Task::ImageClassification);
    let mut log = RunLog::new();
    let settings = TestSettings::default();
    let r = run_single_stream(&mut sut, 128, &settings, &mut log);
    assert!(r.queries >= 1024);
    assert!(r.duration >= SimDuration::from_secs(60));
    assert!(r.queries > 20_000, "2ms queries need >20k to fill 60s, got {}", r.queries);
    assert!(check_log(&log, &settings).is_empty());
}

#[test]
fn heavy_task_bound_by_query_count() {
    // Segmentation at ~20 ms: 1024 queries take ~20 s < 60 s, so duration
    // binds and more than 1024 queries run; NLP at ~67 ms would be bound
    // by count (68 s > 60 s at exactly 1024).
    let mut sut = device_sut(Task::QuestionAnswering);
    let mut log = RunLog::new();
    let settings = TestSettings::default();
    let r = run_single_stream(&mut sut, 128, &settings, &mut log);
    assert_eq!(r.queries, 1024, "NLP should be count-bound");
    assert!(r.duration >= SimDuration::from_secs(60));
}

#[test]
fn seeded_selection_is_reproducible_and_seed_sensitive() {
    let a = performance_sample_set(99, 50_000, 1024);
    let b = performance_sample_set(99, 50_000, 1024);
    let c = performance_sample_set(100, 50_000, 1024);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn sustained_perf_run_heats_device() {
    let mut sut = device_sut(Task::ImageSegmentation);
    let t0 = sut.state.thermal.temperature_c();
    let mut log = RunLog::new();
    let _ = run_single_stream(&mut sut, 128, &TestSettings::default(), &mut log);
    let t1 = sut.state.thermal.temperature_c();
    assert!(t1 > t0 + 5.0, "60s of segmentation should heat the SoC: {t0} -> {t1}");
    // Cooldown (rules allow up to 5 minutes) restores headroom.
    sut.state.thermal.cooldown(SimDuration::from_secs(300));
    assert!(sut.state.thermal.temperature_c() < t0 + 3.0);
}

#[test]
fn hot_ambient_produces_worse_scores() {
    // The rules demand 20-25 degC for a reason: scores degrade outside it.
    let soc = ChipId::Snapdragon888.build();
    let def = suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageSegmentation)
        .unwrap();
    let run_at = |ambient: f64| {
        let deployment = Snpe.compile(&def.model.build(), &soc).unwrap();
        let mut sut =
            DeviceSut::new(soc.clone(), deployment, &def, DatasetScale::Reduced(64), 1, ambient);
        let mut log = RunLog::new();
        run_single_stream(&mut sut, 64, &TestSettings::default(), &mut log)
    };
    let cool = run_at(22.0).latency.unwrap();
    let hot = run_at(48.0).latency.unwrap();
    assert!(
        hot.p90_ns > cool.p90_ns,
        "48C ambient p90 {} should exceed 22C p90 {}",
        hot.p90_ns,
        cool.p90_ns
    );
}

#[test]
fn checker_rejects_shortened_runs() {
    let mut sut = device_sut(Task::ImageClassification);
    let mut log = RunLog::new();
    // Run with an illegally small count but check against the real rules.
    let short_run = TestSettings {
        min_query_count: 10,
        min_duration: SimDuration::from_millis(10),
        ..TestSettings::default()
    };
    let _ = run_single_stream(&mut sut, 128, &short_run, &mut log);
    let violations = check_log(&log, &TestSettings::default());
    assert!(violations.iter().any(|v| matches!(v, Violation::TooFewQueries { .. })));
}

#[test]
fn benchmark_flow_runs_accuracy_before_performance() {
    // The harness runs accuracy first (validation set), then performance —
    // verify both phases happened by checking the log and score.
    let def = suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .unwrap();
    let score = run_benchmark(
        ChipId::Dimensity1100,
        &Neuron,
        &def,
        &RunRules::smoke_test(),
        DatasetScale::Reduced(64),
        false,
    )
    .unwrap();
    assert!(score.accuracy > 0.0, "accuracy phase produced a score");
    assert!(score.single_stream.queries >= 32, "performance phase ran");
}

#[test]
fn device_description_flows_into_log() {
    let mut sut = device_sut(Task::ImageClassification);
    let desc = sut.description();
    let mut log = RunLog::new();
    let _ = run_single_stream(&mut sut, 64, &TestSettings::smoke_test(), &mut log);
    let text = log.to_json_lines();
    assert!(text.contains("Dimensity 1100"), "{desc} should appear in the log");
}
