//! End-to-end integration of the Appendix E extensions: the extended
//! suite, the AI-tax wrapper, battery effects and DVFS interplay — all
//! through the public API.

use loadgen::log::RunLog;
use loadgen::run::run_single_stream;
use loadgen::scenario::TestSettings;
use loadgen::sut::SystemUnderTest;
use mlperf_mobile::ai_tax::EndToEndSut;
use mlperf_mobile::extensions::{extended_suite, extension_defs};
use mlperf_mobile::harness::{run_benchmark, RunRules};
use mlperf_mobile::sut_impl::{DatasetScale, DeviceSut};
use mlperf_mobile::task::{SuiteVersion, Task};
use mobile_backend::registry::{create, vendor_backend};
use soc_sim::battery::{BatterySpec, BatteryState};
use soc_sim::catalog::ChipId;

#[test]
fn extended_suite_passes_on_all_flagships() {
    for chip in [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888] {
        let soc = chip.build();
        let backend = create(vendor_backend(&soc).unwrap());
        for def in extension_defs() {
            let score = run_benchmark(
                chip,
                backend.as_ref(),
                &def,
                &RunRules::smoke_test(),
                DatasetScale::Reduced(48),
                false,
            )
            .unwrap_or_else(|e| panic!("{chip:?}/{:?}: {e}", def.task));
            assert!(
                score.accuracy_passed,
                "{chip:?}/{}: {:.4} < {:.4}",
                def.task, score.accuracy, score.quality_target
            );
        }
    }
}

#[test]
fn extended_suite_is_superset_of_core() {
    let core = mlperf_mobile::task::suite(SuiteVersion::V1_0);
    let ext = extended_suite(SuiteVersion::V1_0);
    assert_eq!(ext.len(), core.len() + 2);
    for (a, b) in core.iter().zip(ext.iter()) {
        assert_eq!(a.task, b.task, "core prefix preserved");
    }
}

#[test]
fn end_to_end_wrapper_composes_with_loadgen() {
    // The AI-tax wrapper is itself a SystemUnderTest: the LoadGen can run
    // a rule-compliant performance pass over it.
    let chip = ChipId::Snapdragon888;
    let soc = chip.build();
    let def = mlperf_mobile::task::suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .unwrap();
    let backend = create(vendor_backend(&soc).unwrap());
    let deployment = backend.compile(&def.model.build(), &soc).unwrap();
    let mut inner = DeviceSut::new(soc, deployment, &def, DatasetScale::Reduced(64), 5, 22.0);
    let (model_only, _) = inner.issue_query(0);
    let mut e2e = EndToEndSut::new(inner, Task::ImageClassification);
    let mut log = RunLog::new();
    let r = run_single_stream(&mut e2e, 64, &TestSettings::smoke_test(), &mut log);
    // End-to-end p90 must exceed the model-only latency by the host tax.
    assert!(r.latency.unwrap().p90_ns > model_only.as_nanos());
    let tax = e2e.tax_fraction(model_only);
    assert!(tax > 0.05, "classification tax {tax:.3} should be visible");
}

#[test]
fn battery_power_saving_caps_frequency_via_dvfs() {
    // A low battery caps frequency; the DVFS ladder snaps it to a discrete
    // operating point.
    let soc = ChipId::Snapdragon888.build();
    let mut state = soc.new_state_on_battery(
        22.0,
        BatteryState::new(BatterySpec::default(), 0.10),
    );
    let f = state.freq_factor();
    assert!(f < 1.0, "low battery must cap frequency");
    assert!(
        state.dvfs.factors().contains(&f),
        "factor {f} must be a ladder point"
    );
    // Draining to empty never panics and never raises frequency.
    state.battery.as_mut().unwrap().drain_joules(1e9);
    assert!(state.freq_factor() <= f);
}

#[test]
fn low_battery_visibly_degrades_benchmark_scores() {
    let def = mlperf_mobile::task::suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .unwrap();
    let full = RunRules::smoke_test();
    let mut low = RunRules::smoke_test();
    low.battery_soc = Some(0.12);
    let backend = create(vendor_backend(&ChipId::Snapdragon888.build()).unwrap());
    let a = run_benchmark(ChipId::Snapdragon888, backend.as_ref(), &def, &full, DatasetScale::Reduced(48), false)
        .unwrap();
    let b = run_benchmark(ChipId::Snapdragon888, backend.as_ref(), &def, &low, DatasetScale::Reduced(48), false)
        .unwrap();
    assert!(!a.power_saving_entered);
    assert!(b.power_saving_entered);
    assert!(
        b.latency_ms() > a.latency_ms() * 1.2,
        "power saving should visibly slow queries: {:.2} vs {:.2} ms",
        b.latency_ms(),
        a.latency_ms()
    );
}

#[test]
fn speech_and_sr_memory_footprints_differ_by_orders() {
    // RNN-T is weight-heavy; EDSR is activation-heavy. The deployment
    // memory model must reflect that.
    let soc = ChipId::Exynos2100.build();
    let backend = create(vendor_backend(&soc).unwrap());
    let rnnt = backend
        .compile(&nn_graph::models::ModelId::MobileRnnt.build(), &soc)
        .unwrap();
    let edsr = backend
        .compile(&nn_graph::models::ModelId::EdsrMobile.build(), &soc)
        .unwrap();
    // RNN-T at FP16: ~23M params x2 bytes >> EDSR weights; EDSR peak
    // activation (720p x 32ch) dominates its footprint instead.
    assert!(rnnt.peak_memory_bytes() > 30_000_000, "{}", rnnt.peak_memory_bytes());
    let edsr_graph = &edsr.graph;
    let weights: u64 = edsr_graph.parameter_count();
    assert!(weights < 200_000, "EDSR params tiny: {weights}");
    assert!(
        edsr.peak_memory_bytes() > 10_000_000,
        "EDSR activations dominate: {}",
        edsr.peak_memory_bytes()
    );
}
