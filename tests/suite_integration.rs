//! Cross-crate integration: the full suite runs end-to-end on every
//! catalog platform, produces Table 2-shaped configurations, and passes
//! every Table 1 quality gate.

use mlperf_mobile::app::{run_suite, AppConfig};
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{SuiteVersion, Task};
use nn_graph::DataType;
use soc_sim::catalog::{ChipId, Generation};

fn smoke_config() -> AppConfig {
    AppConfig { rules: RunRules::smoke_test(), offline_classification: false, scenario_matrix: false, tuner: None }
}

#[test]
fn every_platform_completes_its_generation_suite() {
    for chip in ChipId::ALL {
        let version = match chip.generation() {
            Generation::V0_7 => SuiteVersion::V0_7,
            Generation::V1_0 => SuiteVersion::V1_0,
        };
        let report = run_suite(chip, version, &smoke_config(), DatasetScale::Reduced(48))
            .unwrap_or_else(|e| panic!("{chip:?}: {e}"));
        assert_eq!(report.scores.len(), 4, "{chip:?}");
        for s in &report.scores {
            assert!(
                s.accuracy_passed,
                "{chip:?}/{}: accuracy {:.4} below target {:.4}",
                s.def.task, s.accuracy, s.quality_target
            );
            assert!(s.latency_ms() > 0.1, "{chip:?}/{}", s.def.task);
        }
    }
}

#[test]
fn table2_numerics_pattern_holds() {
    // Paper Table 2 / Insight 5: vision tasks deploy INT8/UINT8 on phones,
    // NLP deploys FP16; Samsung is INT8, MediaTek/Qualcomm UINT8; laptops
    // are INT8 everywhere.
    for (chip, version) in [
        (ChipId::Dimensity820, SuiteVersion::V0_7),
        (ChipId::Exynos990, SuiteVersion::V0_7),
        (ChipId::Snapdragon865Plus, SuiteVersion::V0_7),
    ] {
        let report = run_suite(chip, version, &smoke_config(), DatasetScale::Reduced(32)).unwrap();
        for s in &report.scores {
            match s.def.task {
                Task::QuestionAnswering => {
                    assert_eq!(s.scheme.dtype(), DataType::F16, "{chip:?} NLP should be FP16")
                }
                _ => {
                    assert!(s.scheme.is_quantized(), "{chip:?}/{} should be 8-bit", s.def.task);
                }
            }
        }
    }
    // Samsung INT8 vs Qualcomm/MediaTek UINT8.
    let samsung = run_suite(
        ChipId::Exynos990,
        SuiteVersion::V0_7,
        &smoke_config(),
        DatasetScale::Reduced(32),
    )
    .unwrap();
    assert_eq!(samsung.scores[0].scheme.dtype(), DataType::I8);
    let qc = run_suite(
        ChipId::Snapdragon865Plus,
        SuiteVersion::V0_7,
        &smoke_config(),
        DatasetScale::Reduced(32),
    )
    .unwrap();
    assert_eq!(qc.scores[0].scheme.dtype(), DataType::U8);
}

#[test]
fn table2_accelerator_pattern_holds() {
    // NLP runs on the GPU on every phone; vision runs on the AI
    // accelerators.
    let report = run_suite(
        ChipId::Exynos990,
        SuiteVersion::V0_7,
        &smoke_config(),
        DatasetScale::Reduced(32),
    )
    .unwrap();
    let nlp = report.score(Task::QuestionAnswering).unwrap();
    assert!(nlp.accelerator.contains("GPU"), "NLP on {}", nlp.accelerator);
    let cls = report.score(Task::ImageClassification).unwrap();
    assert!(cls.accelerator.contains("NPU"), "classification on {}", cls.accelerator);
}

#[test]
fn quality_gates_fail_with_bad_calibration() {
    // A deployment whose PTQ calibration used raw min/max on the most
    // sensitive task (NLP) drops below the 93% gate — the quality model
    // end-to-end.
    use mlperf_mobile::task::suite;
    use quant::{nominal_retention, CalibrationMethod, Scheme, Sensitivity};
    let def = &suite(SuiteVersion::V1_0)[3];
    let bad = Scheme::PtqInt8 { method: CalibrationMethod::MinMax, dtype: DataType::I8 };
    let retention = nominal_retention(bad, Sensitivity::for_model(def.model));
    assert!(
        def.fp32_quality * retention < def.quality_target(),
        "badly calibrated INT8 NLP must fail the gate"
    );
}

#[test]
fn laptop_and_phone_use_disjoint_backends() {
    let phone = run_suite(
        ChipId::Snapdragon888,
        SuiteVersion::V1_0,
        &smoke_config(),
        DatasetScale::Reduced(32),
    )
    .unwrap();
    let laptop = run_suite(
        ChipId::CoreI7_11375H,
        SuiteVersion::V1_0,
        &smoke_config(),
        DatasetScale::Reduced(32),
    )
    .unwrap();
    for s in &laptop.scores {
        assert_eq!(s.backend, mobile_backend::backend::BackendId::OpenVino);
    }
    for s in &phone.scores {
        assert_ne!(s.backend, mobile_backend::backend::BackendId::OpenVino);
    }
}
