//! Batched-executor smoke test, gated into `make check`: runs K=4
//! batched single-stream lanes against one golden benchmark cell and
//! diffs the bytes — per-lane results, per-lane logs, and final device
//! states must all be identical to independent scalar runs.

use loadgen::log::RunLog;
use loadgen::run::run_single_stream;
use loadgen::scenario::TestSettings;
use mlperf_mobile::harness::run_single_stream_lanes;
use mlperf_mobile::metrics::metrics;
use mlperf_mobile::sut_impl::{BatchDeviceSut, DatasetScale, DeviceSut, PlannedDeployment};
use mlperf_mobile::task::{suite, SuiteVersion};
use mobile_backend::backend::Backend;
use mobile_backend::backends::Neuron;
use soc_sim::catalog::ChipId;
use std::sync::Arc;

const LANES: usize = 4;
const AMBIENT_C: f64 = 22.0;
const SEED: u64 = 42;

#[test]
fn batched_golden_cell_is_byte_identical_to_scalar() {
    // The golden cell: MobileNetEdgeTpu / Neuron / Dimensity 1100 — the
    // same cell the sut_impl unit tests pin down.
    let def = &suite(SuiteVersion::V1_0)[0];
    let soc = Arc::new(ChipId::Dimensity1100.build());
    let deployment = Arc::new(Neuron.compile(&def.model.build(), &soc).unwrap());
    let planned = PlannedDeployment::compile(&soc, Arc::clone(&deployment));
    let settings = TestSettings::smoke_test();
    let dataset_len = 64;

    // Batched run: K identical fresh devices in lockstep.
    let before = metrics().snapshot();
    let mut batch_sut = BatchDeviceSut::new(Arc::clone(&soc), &planned, LANES, AMBIENT_C);
    let mut batch_logs: Vec<RunLog> = (0..LANES).map(|_| RunLog::new()).collect();
    let batch_results =
        run_single_stream_lanes(&mut batch_sut, dataset_len, &settings, &mut batch_logs);
    let delta = metrics().snapshot().since(&before);
    assert_eq!(delta.plan_batch_runs, 1, "one batched run recorded");
    assert_eq!(
        delta.plan_batch_lanes_executed,
        batch_sut.lanes_executed(),
        "lane-query counter matches the SUT's own count"
    );
    assert!(
        batch_sut.lanes_executed() >= LANES as u64 * settings.min_query_count,
        "every lane ran at least the minimum query count"
    );

    // Scalar reference: one independent DeviceSut per lane, identical
    // construction inputs.
    for lane in 0..LANES {
        let mut scalar_sut = DeviceSut::with_plans(
            Arc::clone(&soc),
            planned.clone(),
            def,
            DatasetScale::Reduced(dataset_len),
            SEED,
            AMBIENT_C,
        );
        let mut scalar_log = RunLog::new();
        let reference = run_single_stream(&mut scalar_sut, dataset_len, &settings, &mut scalar_log);

        // Diff the bytes: serialized result and serialized log.
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&batch_results[lane]).unwrap(),
            "lane {lane} result bytes diverged from scalar"
        );
        assert_eq!(
            serde_json::to_string(&scalar_log).unwrap(),
            serde_json::to_string(&batch_logs[lane]).unwrap(),
            "lane {lane} log bytes diverged from scalar"
        );
        // And the final device state — thermal, energy, battery, DVFS —
        // must match field for field.
        assert_eq!(
            batch_sut.final_state(lane),
            Some(&scalar_sut.state),
            "lane {lane} final device state diverged from scalar"
        );
    }
}
