//! Golden-trace regression suite: locks the full v1.0 suite — every
//! (chip, task, backend, scenario) cell — plus key trace invariants
//! against checked-in goldens under `tests/golden/`.
//!
//! Scores are compared at **0 ULPs** via `f64::to_bits`: any drift at all
//! fails with a per-cell diff naming the cell, both values, and the ULP
//! distance. After an intentional scoring change, regenerate the goldens
//! with:
//!
//! ```sh
//! BLESS=1 cargo test --test golden_suite
//! ```

use mlperf_mobile::app::AppConfig;
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::metrics::TraceCollector;
use mlperf_mobile::runner::SuiteRunner;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::SuiteVersion;
use serde::{Deserialize, Serialize};
use soc_sim::catalog::ChipId;
use std::sync::Arc;

/// Where the goldens live (crate manifest is `crates/core`).
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/v1_0_suite.json");

/// One locked benchmark-matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCell {
    /// Chip name.
    chip: String,
    /// Task name.
    task: String,
    /// Backend the submission rules select.
    backend: String,
    /// Single-stream p90 in milliseconds (human-readable copy).
    score_ms: f64,
    /// Exact bits of `score_ms` — the 0-ULP lock.
    score_bits: u64,
    /// Measured accuracy (human-readable copy).
    accuracy: f64,
    /// Exact bits of `accuracy`.
    accuracy_bits: u64,
    /// Offline throughput in FPS, for the cells that run offline.
    offline_fps: Option<f64>,
    /// Exact bits of `offline_fps`.
    offline_bits: Option<u64>,
    /// Trace invariant: spans recorded == performance queries issued.
    spans: u64,
    /// Trace invariant: queries dispatched while throttled.
    throttled_queries: u64,
    /// Trace invariant: transitions into throttling.
    throttle_events: u64,
}

impl GoldenCell {
    fn label(&self) -> String {
        format!("{}/{}/{}", self.chip, self.task, self.backend)
    }
}

/// Runs the full v1.0 suite over every catalog chip with tracing on and
/// distills each cell into its golden form.
fn compute_cells() -> Vec<GoldenCell> {
    let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: true };
    let sink = Arc::new(TraceCollector::new());
    let runner = SuiteRunner::new().with_trace(Arc::clone(&sink));
    let reports = runner
        .sweep(&ChipId::ALL, SuiteVersion::V1_0, &config, DatasetScale::Reduced(48))
        .expect("every submission backend compiles");
    let traces = sink.drain();
    let mut cells = Vec::new();
    for report in &reports {
        for score in &report.scores {
            let trace = traces
                .iter()
                .find(|t| t.chip == score.chip && t.task == score.def.task)
                .expect("every run leaves a trace");
            trace.validate().expect("trace invariants hold");
            assert_eq!(
                trace.single_stream.span_count(),
                score.single_stream.queries,
                "span count must equal query count"
            );
            let offline_fps = score.offline.as_ref().map(|o| o.throughput_fps);
            cells.push(GoldenCell {
                chip: score.chip.to_string(),
                task: format!("{:?}", score.def.task),
                backend: score.backend.to_string(),
                score_ms: score.latency_ms(),
                score_bits: score.latency_ms().to_bits(),
                accuracy: score.accuracy,
                accuracy_bits: score.accuracy.to_bits(),
                offline_fps,
                offline_bits: offline_fps.map(f64::to_bits),
                spans: trace.single_stream.span_count(),
                throttled_queries: trace.throttled_queries(),
                throttle_events: trace.throttle_events(),
            });
        }
    }
    cells.sort_by_key(GoldenCell::label);
    cells
}

/// One field comparison at 0 ULPs, rendered as a readable diff line.
fn field_diff(
    label: &str,
    name: &str,
    golden_val: f64,
    golden_bits: u64,
    got_val: f64,
    got_bits: u64,
) -> Option<String> {
    (golden_bits != got_bits).then(|| {
        format!(
            "{label}: {name} {got_val:.17} (bits {got_bits:#018x}) != golden {golden_val:.17} \
             (bits {golden_bits:#018x}) — {} ULPs apart",
            golden_bits.abs_diff(got_bits),
        )
    })
}

/// Compares expected vs actual bit-exactly, returning one readable line
/// per divergence (empty = pass). Pure so it can be unit-tested.
fn diff_cells(expected: &[GoldenCell], actual: &[GoldenCell]) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.len() != actual.len() {
        diffs.push(format!(
            "cell count: golden has {}, run produced {}",
            expected.len(),
            actual.len()
        ));
    }
    for exp in expected {
        let Some(act) = actual.iter().find(|c| c.label() == exp.label()) else {
            diffs.push(format!("{}: cell missing from this run", exp.label()));
            continue;
        };
        let label = exp.label();
        diffs.extend(field_diff(
            &label, "score_ms", exp.score_ms, exp.score_bits, act.score_ms, act.score_bits,
        ));
        diffs.extend(field_diff(
            &label, "accuracy", exp.accuracy, exp.accuracy_bits, act.accuracy, act.accuracy_bits,
        ));
        match (exp.offline_bits, act.offline_bits) {
            (Some(g), Some(a)) => diffs.extend(field_diff(
                &label,
                "offline_fps",
                exp.offline_fps.unwrap_or(0.0),
                g,
                act.offline_fps.unwrap_or(0.0),
                a,
            )),
            (None, None) => {}
            (g, a) => diffs.push(format!(
                "{label}: offline presence changed: golden {:?}, run {:?}",
                g.is_some(),
                a.is_some()
            )),
        }
        for (name, golden, got) in [
            ("spans", exp.spans, act.spans),
            ("throttled_queries", exp.throttled_queries, act.throttled_queries),
            ("throttle_events", exp.throttle_events, act.throttle_events),
        ] {
            if golden != got {
                diffs.push(format!("{}: {name} {got} != golden {golden}", exp.label()));
            }
        }
    }
    for act in actual {
        if !expected.iter().any(|c| c.label() == act.label()) {
            diffs.push(format!("{}: cell not present in golden", act.label()));
        }
    }
    diffs
}

fn bless_requested() -> bool {
    std::env::var("BLESS").is_ok_and(|v| v == "1")
}

#[test]
fn v1_0_suite_matches_golden() {
    let actual = compute_cells();
    assert_eq!(actual.len(), ChipId::ALL.len() * 4, "8 chips x 4 tasks");
    if bless_requested() {
        let json = serde_json::to_string_pretty(&actual).expect("cells serialize") + "\n";
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, json).expect("write golden");
        eprintln!("blessed {} cells into {GOLDEN_PATH}", actual.len());
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("no golden at {GOLDEN_PATH} ({e}); generate with BLESS=1 cargo test --test golden_suite")
    });
    let expected: Vec<GoldenCell> = serde_json::from_str(&text).expect("golden parses");
    let diffs = diff_cells(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "{} cell(s) drifted from golden (BLESS=1 to accept intentional changes):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn golden_file_is_checked_in_and_well_formed() {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden/v1_0_suite.json must be checked in");
    let cells: Vec<GoldenCell> = serde_json::from_str(&text).expect("golden parses");
    assert_eq!(cells.len(), ChipId::ALL.len() * 4);
    for c in &cells {
        assert_eq!(c.score_ms.to_bits(), c.score_bits, "{}: bits out of sync", c.label());
        assert_eq!(c.accuracy.to_bits(), c.accuracy_bits, "{}: bits out of sync", c.label());
        assert!(c.spans > 0, "{}: a run always issues queries", c.label());
    }
    // Offline rides along with classification only.
    let offline_cells = cells.iter().filter(|c| c.offline_fps.is_some()).count();
    assert_eq!(offline_cells, ChipId::ALL.len());
}

#[test]
fn diff_reports_perturbations_per_cell() {
    let base = vec![
        GoldenCell {
            chip: "Snapdragon 888".into(),
            task: "ImageClassification".into(),
            backend: "SNPE".into(),
            score_ms: 1.5,
            score_bits: 1.5f64.to_bits(),
            accuracy: 0.75,
            accuracy_bits: 0.75f64.to_bits(),
            offline_fps: Some(500.0),
            offline_bits: Some(500.0f64.to_bits()),
            spans: 32,
            throttled_queries: 0,
            throttle_events: 0,
        },
        GoldenCell {
            chip: "Exynos 2100".into(),
            task: "ObjectDetection".into(),
            backend: "ENN".into(),
            score_ms: 4.0,
            score_bits: 4.0f64.to_bits(),
            accuracy: 0.28,
            accuracy_bits: 0.28f64.to_bits(),
            offline_fps: None,
            offline_bits: None,
            spans: 32,
            throttled_queries: 3,
            throttle_events: 1,
        },
    ];
    // Identical cells: clean pass.
    assert!(diff_cells(&base, &base).is_empty());

    // A 1-ULP score nudge on one cell is caught, named, and quantified.
    let mut drifted = base.clone();
    drifted[0].score_bits += 1;
    drifted[0].score_ms = f64::from_bits(drifted[0].score_bits);
    let diffs = diff_cells(&base, &drifted);
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("Snapdragon 888/ImageClassification/SNPE"));
    assert!(diffs[0].contains("score_ms"));
    assert!(diffs[0].contains("1 ULPs apart"));

    // Trace-invariant drift is reported separately.
    let mut throttled = base.clone();
    throttled[1].throttle_events = 9;
    let diffs = diff_cells(&base, &throttled);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].contains("Exynos 2100/ObjectDetection/ENN"));
    assert!(diffs[0].contains("throttle_events 9 != golden 1"));

    // A missing cell is its own diff line.
    let diffs = diff_cells(&base, &base[..1]);
    assert!(diffs.iter().any(|d| d.contains("cell count")));
    assert!(diffs.iter().any(|d| d.contains("cell missing from this run")));
}
