//! Golden-trace regression suite: locks the full v1.0 suite — every
//! (chip, task, backend, scenario) cell — plus key trace invariants
//! against checked-in goldens under `tests/golden/`.
//!
//! Scores are compared at **0 ULPs** via `f64::to_bits`: any drift at all
//! fails with a per-cell diff naming the cell, both values, and the ULP
//! distance. After an intentional scoring change, regenerate the goldens
//! with:
//!
//! ```sh
//! BLESS=1 cargo test --test golden_suite
//! ```

use mlperf_mobile::app::AppConfig;
use mlperf_mobile::harness::{
    run_benchmark_planned_scenarios_with_trace, RunRules, ScenarioMix,
};
use mlperf_mobile::metrics::TraceCollector;
use mlperf_mobile::runner::{CompileCache, SuiteRunner};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion};
use serde::{Deserialize, Serialize};
use soc_sim::catalog::ChipId;
use std::sync::Arc;

/// Where the goldens live (crate manifest is `crates/core`).
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/v1_0_suite.json");

/// Server/multi-stream goldens: one cell per (model, backend) pair.
const SCENARIO_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/v1_0_scenarios.json");

/// Schedule-tuning goldens: the heuristic-vs-optimal gap table.
const TUNING_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/v1_0_tuning.json");

/// One locked benchmark-matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCell {
    /// Chip name.
    chip: String,
    /// Task name.
    task: String,
    /// Backend the submission rules select.
    backend: String,
    /// Single-stream p90 in milliseconds (human-readable copy).
    score_ms: f64,
    /// Exact bits of `score_ms` — the 0-ULP lock.
    score_bits: u64,
    /// Measured accuracy (human-readable copy).
    accuracy: f64,
    /// Exact bits of `accuracy`.
    accuracy_bits: u64,
    /// Offline throughput in FPS, for the cells that run offline.
    offline_fps: Option<f64>,
    /// Exact bits of `offline_fps`.
    offline_bits: Option<u64>,
    /// Trace invariant: spans recorded == performance queries issued.
    spans: u64,
    /// Trace invariant: queries dispatched while throttled.
    throttled_queries: u64,
    /// Trace invariant: transitions into throttling.
    throttle_events: u64,
}

impl GoldenCell {
    fn label(&self) -> String {
        format!("{}/{}/{}", self.chip, self.task, self.backend)
    }
}

/// Runs the full v1.0 suite over every catalog chip with tracing on and
/// distills each cell into its golden form.
fn compute_cells() -> Vec<GoldenCell> {
    let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: true, scenario_matrix: false, tuner: None };
    let sink = Arc::new(TraceCollector::new());
    let runner = SuiteRunner::new().with_trace(Arc::clone(&sink));
    let reports = runner
        .sweep(&ChipId::ALL, SuiteVersion::V1_0, &config, DatasetScale::Reduced(48))
        .expect("every submission backend compiles");
    let traces = sink.drain();
    let mut cells = Vec::new();
    for report in &reports {
        for score in &report.scores {
            let trace = traces
                .iter()
                .find(|t| t.chip == score.chip && t.task == score.def.task)
                .expect("every run leaves a trace");
            trace.validate().expect("trace invariants hold");
            assert_eq!(
                trace.single_stream.span_count(),
                score.single_stream.queries,
                "span count must equal query count"
            );
            let offline_fps = score.offline.as_ref().map(|o| o.throughput_fps);
            cells.push(GoldenCell {
                chip: score.chip.to_string(),
                task: format!("{:?}", score.def.task),
                backend: score.backend.to_string(),
                score_ms: score.latency_ms(),
                score_bits: score.latency_ms().to_bits(),
                accuracy: score.accuracy,
                accuracy_bits: score.accuracy.to_bits(),
                offline_fps,
                offline_bits: offline_fps.map(f64::to_bits),
                spans: trace.single_stream.span_count(),
                throttled_queries: trace.throttled_queries(),
                throttle_events: trace.throttle_events(),
            });
        }
    }
    cells.sort_by_key(GoldenCell::label);
    cells
}

/// One locked server/multi-stream cell: the discrete-event executor's
/// search results for a (chip, task-model, backend) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ScenarioGoldenCell {
    /// Chip name.
    chip: String,
    /// Task name (stands in for the task's reference model).
    task: String,
    /// Backend the submission rules select.
    backend: String,
    /// Server scenario: max offered Poisson load meeting the bound (QPS).
    server_qps: f64,
    /// Exact bits of `server_qps` — the 0-ULP lock.
    server_qps_bits: u64,
    /// The per-model latency bound the search held (3x single-stream p90).
    server_bound_ns: u64,
    /// Binary-search probes the server search spent.
    server_probes: u64,
    /// Multi-stream scenario: max streams per 50 ms frame.
    streams: u64,
    /// Search probes the stream search spent.
    multi_stream_probes: u64,
    /// Trace invariant: spans in the winning server probe's replay.
    server_spans: u64,
    /// Trace invariant: spans in the winning multi-stream replay.
    multi_stream_spans: u64,
}

impl ScenarioGoldenCell {
    fn label(&self) -> String {
        format!("{}/{}/{}", self.chip, self.task, self.backend)
    }
}

/// Runs the server + multi-stream searches for every (model, backend)
/// pair — each task's reference model under each chip's submission
/// backend — and distills the results into golden form.
fn compute_scenario_cells() -> Vec<ScenarioGoldenCell> {
    let rules = RunRules::smoke_test();
    let mix = ScenarioMix { offline: false, server: true, multi_stream: true };
    let cache = CompileCache::new();
    let mut cells = Vec::new();
    for &chip in &ChipId::ALL {
        for def in suite(SuiteVersion::V1_0) {
            let backend = mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
            let planned = cache
                .planned(chip, backend, def.model)
                .expect("every submission backend compiles");
            let (score, trace) = run_benchmark_planned_scenarios_with_trace(
                chip,
                cache.soc(chip),
                planned,
                &def,
                &rules,
                DatasetScale::Reduced(48),
                mix,
            );
            trace.validate().expect("trace invariants hold");
            let srv = score.server.as_ref().expect("mix requested server");
            let ms = score.multi_stream.as_ref().expect("mix requested multi-stream");
            cells.push(ScenarioGoldenCell {
                chip: score.chip.to_string(),
                task: format!("{:?}", score.def.task),
                backend: score.backend.to_string(),
                server_qps: srv.max_qps,
                server_qps_bits: srv.max_qps.to_bits(),
                server_bound_ns: srv.target_latency_ns,
                server_probes: srv.probes,
                streams: ms.streams,
                multi_stream_probes: ms.probes,
                server_spans: trace.server.as_ref().map_or(0, |t| t.span_count()),
                multi_stream_spans: trace.multi_stream.as_ref().map_or(0, |t| t.span_count()),
            });
        }
    }
    cells.sort_by_key(ScenarioGoldenCell::label);
    cells
}

/// One locked schedule-tuning cell: what the auto-tuner found for a
/// (chip, backend, model, objective) cell, scores at exact bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TuningGoldenCell {
    /// Chip name.
    chip: String,
    /// Backend the submission rules select.
    backend: String,
    /// Reference model.
    model: String,
    /// Search objective (`latency` or `energy`).
    objective: String,
    /// Heuristic single-stream latency, ms (human-readable copy).
    heuristic_ms: f64,
    /// Exact bits of `heuristic_ms` — the 0-ULP lock.
    heuristic_ms_bits: u64,
    /// Tuned single-stream latency, ms.
    tuned_ms: f64,
    /// Exact bits of `tuned_ms`.
    tuned_ms_bits: u64,
    /// Heuristic active compute energy, mJ.
    heuristic_mj: f64,
    /// Exact bits of `heuristic_mj`.
    heuristic_mj_bits: u64,
    /// Tuned active compute energy, mJ.
    tuned_mj: f64,
    /// Exact bits of `tuned_mj`.
    tuned_mj_bits: u64,
    /// Relative improvement on the objective, percent.
    gap_pct: f64,
    /// Exact bits of `gap_pct`.
    gap_pct_bits: u64,
    /// Complete candidates the search scored exactly.
    candidates: u64,
    /// Partials eliminated by the branch-and-bound bound.
    pruned: u64,
    /// Whether the tuner strictly beat the vendor heuristic.
    improved: bool,
}

impl TuningGoldenCell {
    fn label(&self) -> String {
        format!("{}/{}/{}/{}", self.chip, self.backend, self.model, self.objective)
    }
}

/// Runs the auto-tuner over the full catalog gap table (the
/// `reproduce tuning` matrix) and distills each cell into golden form.
fn compute_tuning_cells() -> Vec<TuningGoldenCell> {
    let report = mlperf_mobile::tuning::run_tuning(
        &CompileCache::new(),
        &mlperf_mobile::tuning::TuningConfig::new(),
    )
    .expect("every submission backend compiles");
    let mut cells: Vec<TuningGoldenCell> = report
        .cells
        .iter()
        .map(|c| TuningGoldenCell {
            chip: c.chip.clone(),
            backend: c.backend.clone(),
            model: c.model.clone(),
            objective: c.objective.clone(),
            heuristic_ms: c.heuristic_ms,
            heuristic_ms_bits: c.heuristic_ms.to_bits(),
            tuned_ms: c.tuned_ms,
            tuned_ms_bits: c.tuned_ms.to_bits(),
            heuristic_mj: c.heuristic_mj,
            heuristic_mj_bits: c.heuristic_mj.to_bits(),
            tuned_mj: c.tuned_mj,
            tuned_mj_bits: c.tuned_mj.to_bits(),
            gap_pct: c.gap_pct,
            gap_pct_bits: c.gap_pct.to_bits(),
            candidates: c.candidates,
            pruned: c.pruned,
            improved: c.improved,
        })
        .collect();
    cells.sort_by_key(TuningGoldenCell::label);
    cells
}

/// Bit-exact comparison for the tuning goldens, one readable line per
/// divergence (empty = pass).
fn diff_tuning_cells(expected: &[TuningGoldenCell], actual: &[TuningGoldenCell]) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.len() != actual.len() {
        diffs.push(format!(
            "cell count: golden has {}, run produced {}",
            expected.len(),
            actual.len()
        ));
    }
    for exp in expected {
        let Some(act) = actual.iter().find(|c| c.label() == exp.label()) else {
            diffs.push(format!("{}: cell missing from this run", exp.label()));
            continue;
        };
        let label = exp.label();
        for (name, gv, gb, av, ab) in [
            ("heuristic_ms", exp.heuristic_ms, exp.heuristic_ms_bits, act.heuristic_ms, act.heuristic_ms_bits),
            ("tuned_ms", exp.tuned_ms, exp.tuned_ms_bits, act.tuned_ms, act.tuned_ms_bits),
            ("heuristic_mj", exp.heuristic_mj, exp.heuristic_mj_bits, act.heuristic_mj, act.heuristic_mj_bits),
            ("tuned_mj", exp.tuned_mj, exp.tuned_mj_bits, act.tuned_mj, act.tuned_mj_bits),
            ("gap_pct", exp.gap_pct, exp.gap_pct_bits, act.gap_pct, act.gap_pct_bits),
        ] {
            diffs.extend(field_diff(&label, name, gv, gb, av, ab));
        }
        for (name, golden, got) in [
            ("candidates", exp.candidates, act.candidates),
            ("pruned", exp.pruned, act.pruned),
        ] {
            if golden != got {
                diffs.push(format!("{label}: {name} {got} != golden {golden}"));
            }
        }
        if exp.improved != act.improved {
            diffs.push(format!(
                "{label}: improved {} != golden {}",
                act.improved, exp.improved
            ));
        }
    }
    for act in actual {
        if !expected.iter().any(|c| c.label() == act.label()) {
            diffs.push(format!("{}: cell not present in golden", act.label()));
        }
    }
    diffs
}

/// One field comparison at 0 ULPs, rendered as a readable diff line.
fn field_diff(
    label: &str,
    name: &str,
    golden_val: f64,
    golden_bits: u64,
    got_val: f64,
    got_bits: u64,
) -> Option<String> {
    (golden_bits != got_bits).then(|| {
        format!(
            "{label}: {name} {got_val:.17} (bits {got_bits:#018x}) != golden {golden_val:.17} \
             (bits {golden_bits:#018x}) — {} ULPs apart",
            golden_bits.abs_diff(got_bits),
        )
    })
}

/// Compares expected vs actual bit-exactly, returning one readable line
/// per divergence (empty = pass). Pure so it can be unit-tested.
fn diff_cells(expected: &[GoldenCell], actual: &[GoldenCell]) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.len() != actual.len() {
        diffs.push(format!(
            "cell count: golden has {}, run produced {}",
            expected.len(),
            actual.len()
        ));
    }
    for exp in expected {
        let Some(act) = actual.iter().find(|c| c.label() == exp.label()) else {
            diffs.push(format!("{}: cell missing from this run", exp.label()));
            continue;
        };
        let label = exp.label();
        diffs.extend(field_diff(
            &label, "score_ms", exp.score_ms, exp.score_bits, act.score_ms, act.score_bits,
        ));
        diffs.extend(field_diff(
            &label, "accuracy", exp.accuracy, exp.accuracy_bits, act.accuracy, act.accuracy_bits,
        ));
        match (exp.offline_bits, act.offline_bits) {
            (Some(g), Some(a)) => diffs.extend(field_diff(
                &label,
                "offline_fps",
                exp.offline_fps.unwrap_or(0.0),
                g,
                act.offline_fps.unwrap_or(0.0),
                a,
            )),
            (None, None) => {}
            (g, a) => diffs.push(format!(
                "{label}: offline presence changed: golden {:?}, run {:?}",
                g.is_some(),
                a.is_some()
            )),
        }
        for (name, golden, got) in [
            ("spans", exp.spans, act.spans),
            ("throttled_queries", exp.throttled_queries, act.throttled_queries),
            ("throttle_events", exp.throttle_events, act.throttle_events),
        ] {
            if golden != got {
                diffs.push(format!("{}: {name} {got} != golden {golden}", exp.label()));
            }
        }
    }
    for act in actual {
        if !expected.iter().any(|c| c.label() == act.label()) {
            diffs.push(format!("{}: cell not present in golden", act.label()));
        }
    }
    diffs
}

/// Bit-exact comparison for the scenario goldens, one readable line per
/// divergence (empty = pass).
fn diff_scenario_cells(expected: &[ScenarioGoldenCell], actual: &[ScenarioGoldenCell]) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.len() != actual.len() {
        diffs.push(format!(
            "cell count: golden has {}, run produced {}",
            expected.len(),
            actual.len()
        ));
    }
    for exp in expected {
        let Some(act) = actual.iter().find(|c| c.label() == exp.label()) else {
            diffs.push(format!("{}: cell missing from this run", exp.label()));
            continue;
        };
        let label = exp.label();
        diffs.extend(field_diff(
            &label,
            "server_qps",
            exp.server_qps,
            exp.server_qps_bits,
            act.server_qps,
            act.server_qps_bits,
        ));
        for (name, golden, got) in [
            ("server_bound_ns", exp.server_bound_ns, act.server_bound_ns),
            ("server_probes", exp.server_probes, act.server_probes),
            ("streams", exp.streams, act.streams),
            ("multi_stream_probes", exp.multi_stream_probes, act.multi_stream_probes),
            ("server_spans", exp.server_spans, act.server_spans),
            ("multi_stream_spans", exp.multi_stream_spans, act.multi_stream_spans),
        ] {
            if golden != got {
                diffs.push(format!("{label}: {name} {got} != golden {golden}"));
            }
        }
    }
    for act in actual {
        if !expected.iter().any(|c| c.label() == act.label()) {
            diffs.push(format!("{}: cell not present in golden", act.label()));
        }
    }
    diffs
}

fn bless_requested() -> bool {
    std::env::var("BLESS").is_ok_and(|v| v == "1")
}

#[test]
fn v1_0_suite_matches_golden() {
    let actual = compute_cells();
    assert_eq!(actual.len(), ChipId::ALL.len() * 4, "8 chips x 4 tasks");
    if bless_requested() {
        let json = serde_json::to_string_pretty(&actual).expect("cells serialize") + "\n";
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, json).expect("write golden");
        eprintln!("blessed {} cells into {GOLDEN_PATH}", actual.len());
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("no golden at {GOLDEN_PATH} ({e}); generate with BLESS=1 cargo test --test golden_suite")
    });
    let expected: Vec<GoldenCell> = serde_json::from_str(&text).expect("golden parses");
    let diffs = diff_cells(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "{} cell(s) drifted from golden (BLESS=1 to accept intentional changes):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn v1_0_scenarios_match_golden() {
    let actual = compute_scenario_cells();
    assert_eq!(
        actual.len(),
        ChipId::ALL.len() * 4,
        "every (model, backend) pair: 8 chips x 4 task models"
    );
    if bless_requested() {
        let json = serde_json::to_string_pretty(&actual).expect("cells serialize") + "\n";
        std::fs::create_dir_all(std::path::Path::new(SCENARIO_GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(SCENARIO_GOLDEN_PATH, json).expect("write golden");
        eprintln!("blessed {} scenario cells into {SCENARIO_GOLDEN_PATH}", actual.len());
        return;
    }
    let text = std::fs::read_to_string(SCENARIO_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("no golden at {SCENARIO_GOLDEN_PATH} ({e}); generate with BLESS=1 cargo test --test golden_suite")
    });
    let expected: Vec<ScenarioGoldenCell> = serde_json::from_str(&text).expect("golden parses");
    let diffs = diff_scenario_cells(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "{} scenario cell(s) drifted from golden (BLESS=1 to accept intentional changes):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn v1_0_tuning_matches_golden() {
    let actual = compute_tuning_cells();
    assert_eq!(
        actual.len(),
        ChipId::ALL.len() * 4 * 2,
        "every (chip, task) submission cell under both objectives"
    );
    if bless_requested() {
        let json = serde_json::to_string_pretty(&actual).expect("cells serialize") + "\n";
        std::fs::create_dir_all(std::path::Path::new(TUNING_GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(TUNING_GOLDEN_PATH, json).expect("write golden");
        eprintln!("blessed {} tuning cells into {TUNING_GOLDEN_PATH}", actual.len());
        return;
    }
    let text = std::fs::read_to_string(TUNING_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("no golden at {TUNING_GOLDEN_PATH} ({e}); generate with BLESS=1 cargo test --test golden_suite")
    });
    let expected: Vec<TuningGoldenCell> = serde_json::from_str(&text).expect("golden parses");
    let diffs = diff_tuning_cells(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "{} tuning cell(s) drifted from golden (BLESS=1 to accept intentional changes):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn tuning_golden_file_is_checked_in_and_well_formed() {
    let text = std::fs::read_to_string(TUNING_GOLDEN_PATH)
        .expect("tests/golden/v1_0_tuning.json must be checked in");
    let cells: Vec<TuningGoldenCell> = serde_json::from_str(&text).expect("golden parses");
    assert_eq!(cells.len(), ChipId::ALL.len() * 4 * 2);
    for c in &cells {
        assert_eq!(c.tuned_ms.to_bits(), c.tuned_ms_bits, "{}: bits out of sync", c.label());
        assert_eq!(c.gap_pct.to_bits(), c.gap_pct_bits, "{}: bits out of sync", c.label());
        // The incumbent is seeded with the heuristic: tuning never regresses.
        let (before, after) = if c.objective == "latency" {
            (c.heuristic_ms, c.tuned_ms)
        } else {
            (c.heuristic_mj, c.tuned_mj)
        };
        assert!(after <= before, "{}: tuner regressed its objective", c.label());
        assert!(c.gap_pct >= 0.0, "{}: negative gap", c.label());
        assert_eq!(c.improved, after < before, "{}: improved flag out of sync", c.label());
    }
    // The headline acceptance criterion: the search finds a real
    // heuristic-vs-optimal gap somewhere in the matrix.
    assert!(
        cells.iter().any(|c| c.improved && c.gap_pct > 0.0),
        "no cell shows a nonzero scheduling gap"
    );
}

#[test]
fn tuning_diff_reports_perturbations_per_cell() {
    let base = vec![TuningGoldenCell {
        chip: "Exynos 990".into(),
        backend: "ENN".into(),
        model: "DeepLabV3Plus".into(),
        objective: "latency".into(),
        heuristic_ms: 133.7,
        heuristic_ms_bits: 133.7f64.to_bits(),
        tuned_ms: 62.1,
        tuned_ms_bits: 62.1f64.to_bits(),
        heuristic_mj: 130.3,
        heuristic_mj_bits: 130.3f64.to_bits(),
        tuned_mj: 35.1,
        tuned_mj_bits: 35.1f64.to_bits(),
        gap_pct: 53.5,
        gap_pct_bits: 53.5f64.to_bits(),
        candidates: 65,
        pruned: 340,
        improved: true,
    }];
    assert!(diff_tuning_cells(&base, &base).is_empty());

    // A 1-ULP tuned-score nudge is caught, named, and quantified.
    let mut drifted = base.clone();
    drifted[0].tuned_ms_bits += 1;
    drifted[0].tuned_ms = f64::from_bits(drifted[0].tuned_ms_bits);
    let diffs = diff_tuning_cells(&base, &drifted);
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("Exynos 990/ENN/DeepLabV3Plus/latency"));
    assert!(diffs[0].contains("tuned_ms"));
    assert!(diffs[0].contains("1 ULPs apart"));

    // Search-effort drift (a changed prune count) is its own line.
    let mut pruned = base.clone();
    pruned[0].pruned = 341;
    let diffs = diff_tuning_cells(&base, &pruned);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].contains("pruned 341 != golden 340"));
}

#[test]
fn scenario_golden_file_is_checked_in_and_well_formed() {
    let text = std::fs::read_to_string(SCENARIO_GOLDEN_PATH)
        .expect("tests/golden/v1_0_scenarios.json must be checked in");
    let cells: Vec<ScenarioGoldenCell> = serde_json::from_str(&text).expect("golden parses");
    assert_eq!(cells.len(), ChipId::ALL.len() * 4);
    for c in &cells {
        assert_eq!(c.server_qps.to_bits(), c.server_qps_bits, "{}: bits out of sync", c.label());
        assert!(c.server_qps > 0.0, "{}: a passing server load exists", c.label());
        assert!(c.server_bound_ns > 0, "{}: the latency bound is real", c.label());
        assert!(c.server_probes > 0 && c.multi_stream_probes > 0, "{}: searches probe", c.label());
        // streams == 0 is legitimate: models slower than the 50 ms frame
        // budget (e.g. MobileBert) fit no stream width at all.
        assert!(
            c.server_spans > 0 && c.multi_stream_spans > 0,
            "{}: even a failing probe replays with spans",
            c.label()
        );
    }
    // Fast models do reach multi-width frames somewhere in the matrix.
    assert!(cells.iter().any(|c| c.streams > 1), "some cell sustains multiple streams");
}

#[test]
fn scenario_diff_reports_perturbations_per_cell() {
    let base = vec![ScenarioGoldenCell {
        chip: "Snapdragon 888".into(),
        task: "ImageClassification".into(),
        backend: "SNPE".into(),
        server_qps: 1050.0,
        server_qps_bits: 1050.0f64.to_bits(),
        server_bound_ns: 5_800_000,
        server_probes: 10,
        streams: 16,
        multi_stream_probes: 2,
        server_spans: 240,
        multi_stream_spans: 128,
    }];
    assert!(diff_scenario_cells(&base, &base).is_empty());

    // A 1-ULP QPS nudge is caught, named, and quantified.
    let mut drifted = base.clone();
    drifted[0].server_qps_bits += 1;
    drifted[0].server_qps = f64::from_bits(drifted[0].server_qps_bits);
    let diffs = diff_scenario_cells(&base, &drifted);
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("Snapdragon 888/ImageClassification/SNPE"));
    assert!(diffs[0].contains("server_qps"));
    assert!(diffs[0].contains("1 ULPs apart"));

    // Integer-field drift (stream width) is its own line.
    let mut widened = base.clone();
    widened[0].streams = 32;
    let diffs = diff_scenario_cells(&base, &widened);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].contains("streams 32 != golden 16"));
}

#[test]
fn golden_file_is_checked_in_and_well_formed() {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden/v1_0_suite.json must be checked in");
    let cells: Vec<GoldenCell> = serde_json::from_str(&text).expect("golden parses");
    assert_eq!(cells.len(), ChipId::ALL.len() * 4);
    for c in &cells {
        assert_eq!(c.score_ms.to_bits(), c.score_bits, "{}: bits out of sync", c.label());
        assert_eq!(c.accuracy.to_bits(), c.accuracy_bits, "{}: bits out of sync", c.label());
        assert!(c.spans > 0, "{}: a run always issues queries", c.label());
    }
    // Offline rides along with classification only.
    let offline_cells = cells.iter().filter(|c| c.offline_fps.is_some()).count();
    assert_eq!(offline_cells, ChipId::ALL.len());
}

#[test]
fn diff_reports_perturbations_per_cell() {
    let base = vec![
        GoldenCell {
            chip: "Snapdragon 888".into(),
            task: "ImageClassification".into(),
            backend: "SNPE".into(),
            score_ms: 1.5,
            score_bits: 1.5f64.to_bits(),
            accuracy: 0.75,
            accuracy_bits: 0.75f64.to_bits(),
            offline_fps: Some(500.0),
            offline_bits: Some(500.0f64.to_bits()),
            spans: 32,
            throttled_queries: 0,
            throttle_events: 0,
        },
        GoldenCell {
            chip: "Exynos 2100".into(),
            task: "ObjectDetection".into(),
            backend: "ENN".into(),
            score_ms: 4.0,
            score_bits: 4.0f64.to_bits(),
            accuracy: 0.28,
            accuracy_bits: 0.28f64.to_bits(),
            offline_fps: None,
            offline_bits: None,
            spans: 32,
            throttled_queries: 3,
            throttle_events: 1,
        },
    ];
    // Identical cells: clean pass.
    assert!(diff_cells(&base, &base).is_empty());

    // A 1-ULP score nudge on one cell is caught, named, and quantified.
    let mut drifted = base.clone();
    drifted[0].score_bits += 1;
    drifted[0].score_ms = f64::from_bits(drifted[0].score_bits);
    let diffs = diff_cells(&base, &drifted);
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("Snapdragon 888/ImageClassification/SNPE"));
    assert!(diffs[0].contains("score_ms"));
    assert!(diffs[0].contains("1 ULPs apart"));

    // Trace-invariant drift is reported separately.
    let mut throttled = base.clone();
    throttled[1].throttle_events = 9;
    let diffs = diff_cells(&base, &throttled);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].contains("Exynos 2100/ObjectDetection/ENN"));
    assert!(diffs[0].contains("throttle_events 9 != golden 1"));

    // A missing cell is its own diff line.
    let diffs = diff_cells(&base, &base[..1]);
    assert!(diffs.iter().any(|d| d.contains("cell count")));
    assert!(diffs.iter().any(|d| d.contains("cell missing from this run")));
}
