//! The parallel suite runner's contract: running the benchmark matrix on
//! a worker pool with a shared compile cache must be *bit-identical* to a
//! serial loop of fresh compiles — parallelism and caching are pure
//! performance optimisations, invisible in every score.

use mlperf_mobile::harness::{
    run_benchmark, run_benchmark_scenarios, run_benchmark_with, RunRules, ScenarioMix,
};
use mlperf_mobile::metrics::TraceCollector;
use mlperf_mobile::runner::{CompileCache, RunSpec, SuiteRunner};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::registry::create;
use soc_sim::catalog::ChipId;
use std::sync::Arc;

/// A 2-chip x 2-task matrix with distinct vendors, backends and models —
/// small enough to run at smoke scale, varied enough that any cross-run
/// state leakage or ordering bug would desynchronize at least one score.
/// Classification cells run all four scenarios (offline plus the server
/// and multi-stream searches), so every determinism check in this file
/// also covers the discrete-event executor.
fn matrix() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for chip in [ChipId::Dimensity1100, ChipId::Snapdragon888] {
        for def in suite(SuiteVersion::V1_0) {
            if matches!(def.task, Task::ImageClassification | Task::ImageSegmentation) {
                specs.push(RunSpec {
                    chip,
                    backend: mlperf_mobile::app::submission_backend(
                        chip,
                        SuiteVersion::V1_0,
                        def.task,
                    ),
                    mix: if def.task == Task::ImageClassification {
                        ScenarioMix::all()
                    } else {
                        ScenarioMix::offline_only(false)
                    },
                    def,
                    tuner: None,
                });
            }
        }
    }
    assert_eq!(specs.len(), 4);
    specs
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_loop() {
    let specs = matrix();
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(48);

    // Serial reference: fresh compile per run, no cache, no threads.
    let serial: Vec<String> = specs
        .iter()
        .map(|spec| {
            let score = run_benchmark_scenarios(
                spec.chip,
                create(spec.backend).as_ref(),
                &spec.def,
                &rules,
                scale,
                spec.mix,
            )
            .expect("matrix spec compiles");
            serde_json::to_string(&score).expect("score serializes")
        })
        .collect();

    // Parallel: more workers than specs, shared cache, dynamic scheduling.
    let runner = SuiteRunner::with_threads(8);
    let parallel: Vec<String> = runner
        .run(&specs, &rules, scale)
        .into_iter()
        .map(|r| serde_json::to_string(&r.expect("matrix spec compiles")).unwrap())
        .collect();

    assert_eq!(serial, parallel, "parallel sweep must be bit-identical to the serial loop");
}

#[test]
fn tracing_does_not_perturb_scores() {
    // Attaching a trace sink is purely observational: every score from a
    // traced sweep must be bit-identical to the untraced sweep, while the
    // sink fills with one valid trace per spec.
    let specs = matrix();
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(48);

    let untraced: Vec<String> = SuiteRunner::with_threads(8)
        .run(&specs, &rules, scale)
        .into_iter()
        .map(|r| serde_json::to_string(&r.expect("matrix spec compiles")).unwrap())
        .collect();

    let sink = Arc::new(TraceCollector::new());
    let traced: Vec<String> = SuiteRunner::with_threads(8)
        .with_trace(Arc::clone(&sink))
        .run(&specs, &rules, scale)
        .into_iter()
        .map(|r| serde_json::to_string(&r.expect("matrix spec compiles")).unwrap())
        .collect();

    assert_eq!(untraced, traced, "tracing must be invisible in every score");

    let traces = sink.drain();
    assert_eq!(traces.len(), specs.len(), "one trace per spec");
    for trace in &traces {
        trace.validate().expect("trace invariants hold");
        assert!(trace.single_stream.span_count() > 0);
        // Classification cells ran the full scenario mix: the server and
        // multi-stream probe timelines ride along and validate, and the
        // server probe never exceeds the scenario's concurrency bound.
        if trace.task == Task::ImageClassification {
            let server = trace.server.as_ref().expect("server trace for classification");
            assert!(server.span_count() > 0);
            assert!(server.max_concurrent() <= rules.settings.server_concurrency);
            let ms = trace.multi_stream.as_ref().expect("multi-stream trace");
            assert!(ms.span_count() > 0);
        } else {
            assert!(trace.server.is_none() && trace.multi_stream.is_none());
        }
    }
    assert!(sink.is_empty(), "drain empties the sink");

    // The traces themselves are deterministic too: a second traced sweep
    // reproduces them bit-for-bit (span timings, telemetry and all).
    let sink2 = Arc::new(TraceCollector::new());
    let _ = SuiteRunner::with_threads(4)
        .with_trace(Arc::clone(&sink2))
        .run(&specs, &rules, scale);
    let again = sink2.drain();
    assert_eq!(
        serde_json::to_string(&traces).unwrap(),
        serde_json::to_string(&again).unwrap(),
        "traced sweeps must reproduce identical traces"
    );

    // Profiling those traces is just as deterministic: the Perfetto
    // timeline and the rendered profile report come out byte-identical
    // across repeated profiled sweeps.
    assert_eq!(
        mlperf_mobile::profile::benchmark_perfetto_json(&traces),
        mlperf_mobile::profile::benchmark_perfetto_json(&again),
        "repeated profiled sweeps must export byte-identical Perfetto timelines"
    );
    assert_eq!(
        mlperf_mobile::profile::profile_report(&traces),
        mlperf_mobile::profile::profile_report(&again),
        "repeated profiled sweeps must render byte-identical profile reports"
    );
}

#[test]
fn repeated_parallel_sweeps_are_stable() {
    // Thread scheduling varies run to run; scores must not.
    let specs = matrix();
    let rules = RunRules::smoke_test();
    let sweep = || {
        SuiteRunner::with_threads(4)
            .run(&specs, &rules, DatasetScale::Reduced(32))
            .into_iter()
            .map(|r| serde_json::to_string(&r.unwrap()).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(sweep(), sweep());
}

#[test]
fn cache_hit_scores_match_fresh_compile_scores() {
    // A cache *hit* must hand back a deployment indistinguishable from a
    // fresh compile — checked end-to-end through a benchmark run.
    let def = suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .unwrap();
    let chip = ChipId::Exynos2100;
    let backend = mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
    let rules = RunRules::smoke_test();

    let cache = CompileCache::new();
    let _warm = cache.deployment(chip, backend, def.model).expect("compiles");
    let hit = cache.deployment(chip, backend, def.model).expect("compiles");
    assert_eq!(cache.hits(), 1, "second lookup must hit");

    let fresh = create(backend)
        .compile(&def.model.build(), &cache.soc(chip))
        .expect("compiles");
    assert_eq!(hit.scheme, fresh.scheme);
    assert_eq!(hit.offline_streams.len(), fresh.offline_streams.len());
    let soc = cache.soc(chip);
    assert!((hit.estimate_ms(&soc) - fresh.estimate_ms(&soc)).abs() < f64::EPSILON);

    let from_hit = run_benchmark_with(
        chip,
        soc,
        hit,
        &def,
        &rules,
        DatasetScale::Reduced(48),
        false,
    );
    let from_fresh =
        run_benchmark(chip, create(backend).as_ref(), &def, &rules, DatasetScale::Reduced(48), false)
            .expect("compiles");
    assert_eq!(
        serde_json::to_string(&from_hit).unwrap(),
        serde_json::to_string(&from_fresh).unwrap(),
        "a cached deployment must score identically to a fresh compile"
    );
}

#[test]
fn planned_runs_match_fresh_compiles_bit_identically() {
    // Three routes into the same benchmark — a fresh compile (plans built
    // inside the harness), an explicitly pre-planned deployment, and a
    // plan-cache hit — must produce bit-identical scores. Compiled query
    // plans are a pure performance optimisation, invisible in every score.
    use mlperf_mobile::harness::run_benchmark_planned_scenarios;
    use mlperf_mobile::sut_impl::PlannedDeployment;

    let specs = matrix();
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(48);
    let cache = CompileCache::new();

    for spec in &specs {
        let fresh = run_benchmark_scenarios(
            spec.chip,
            create(spec.backend).as_ref(),
            &spec.def,
            &rules,
            scale,
            spec.mix,
        )
        .expect("matrix spec compiles");

        // Hand-built plan, bypassing the cache entirely.
        let soc = cache.soc(spec.chip);
        let deployment = create(spec.backend)
            .compile(&spec.def.model.build(), &soc)
            .expect("matrix spec compiles");
        let hand_planned = PlannedDeployment::compile(&soc, Arc::new(deployment));
        let planned = run_benchmark_planned_scenarios(
            spec.chip,
            Arc::clone(&soc),
            hand_planned,
            &spec.def,
            &rules,
            scale,
            spec.mix,
        );

        // Cached plan: second lookup of the same triple is a hit.
        let cached_plan = cache.planned(spec.chip, spec.backend, spec.def.model).unwrap();
        let from_cache = run_benchmark_planned_scenarios(
            spec.chip,
            soc,
            cached_plan,
            &spec.def,
            &rules,
            scale,
            spec.mix,
        );

        let want = serde_json::to_string(&fresh).unwrap();
        assert_eq!(want, serde_json::to_string(&planned).unwrap(), "{:?}", spec.chip);
        assert_eq!(want, serde_json::to_string(&from_cache).unwrap(), "{:?}", spec.chip);
    }
    assert_eq!(cache.plan_misses(), specs.len(), "one plan compilation per distinct triple");
}

#[test]
fn fast_forwarded_hot_loop_matches_unmemoized_walk() {
    // The production single-stream hot loop fast-forwards steady-state
    // queries through a DVFS-keyed memo ([`DeviceSut`] ->
    // `QueryPlan::execute_memo`). Driving the loadgen loop over the
    // identical compiled plan *without* the memo must reproduce the exact
    // PerformanceResult and the exact final device state — which, chained
    // with `planned_runs_match_fresh_compiles_bit_identically` above,
    // closes the planned == fresh == fast-forwarded identity.
    use loadgen::{run_single_stream, RunLog, SystemUnderTest};
    use mlperf_mobile::sut_impl::DeviceSut;
    use soc_sim::plan::QueryPlan;
    use soc_sim::soc::SocState;
    use soc_sim::time::SimDuration;

    struct UnmemoizedSut {
        plan: Arc<QueryPlan>,
        state: SocState,
        desc: String,
    }
    impl SystemUnderTest for UnmemoizedSut {
        type Response = ();
        fn issue_query(&mut self, _sample_index: usize) -> (SimDuration, ()) {
            (self.plan.execute(&mut self.state).latency, ())
        }
        fn description(&self) -> String {
            self.desc.clone()
        }
    }

    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(48);
    let cache = CompileCache::new();
    for spec in matrix() {
        let soc = cache.soc(spec.chip);
        let planned = cache.planned(spec.chip, spec.backend, spec.def.model).unwrap();
        let mut device = DeviceSut::with_plans(
            Arc::clone(&soc),
            planned.clone(),
            &spec.def,
            scale,
            rules.settings.seed,
            22.0,
        );
        let mut oracle = UnmemoizedSut {
            plan: Arc::clone(&planned.query),
            state: soc.new_state(22.0),
            desc: device.description(),
        };

        let mut device_log = RunLog::new();
        let fast = run_single_stream(&mut device, 48, &rules.settings, &mut device_log);
        let mut oracle_log = RunLog::new();
        let walked = run_single_stream(&mut oracle, 48, &rules.settings, &mut oracle_log);

        assert_eq!(
            format!("{fast:?}"),
            format!("{walked:?}"),
            "{:?}: fast-forwarded result must match the unmemoized walk",
            spec.chip
        );
        assert_eq!(
            device.state, oracle.state,
            "{:?}: device state must stay in lockstep",
            spec.chip
        );
        // Every query is accounted for as a memo replay or a first-visit
        // recording walk, and steady state actually engaged the memo.
        assert_eq!(
            device.fast_forward_hits() + device.fast_forward_operating_points() as u64,
            fast.queries,
            "{:?}",
            spec.chip
        );
        assert!(
            device.fast_forward_hits() > 0,
            "{:?}: steady-state queries must replay from the memo",
            spec.chip
        );
    }
}

#[test]
fn self_observability_is_bit_invisible_to_scores_logs_and_traces() {
    // The harness self-observability layer — wall-clock span recording,
    // pool telemetry, and the live /metrics endpoint under concurrent
    // scraping — is purely host-side. A suite run with all of it switched
    // on must be byte-identical (scores, logs, device traces) to one with
    // none of it.
    use mlperf_mobile::obs;
    use std::io::{Read, Write as _};
    use std::sync::atomic::{AtomicBool, Ordering};

    let specs = matrix();
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(48);
    let sweep = |sink: &Arc<TraceCollector>| -> Vec<String> {
        SuiteRunner::with_threads(8)
            .with_trace(Arc::clone(sink))
            .run(&specs, &rules, scale)
            .into_iter()
            .map(|r| serde_json::to_string(&r.expect("matrix spec compiles")).unwrap())
            .collect()
    };

    // Baseline: spans off, no server.
    let baseline_sink = Arc::new(TraceCollector::new());
    let baseline_scores = sweep(&baseline_sink);
    let baseline_traces = serde_json::to_string(&baseline_sink.drain()).unwrap();

    // Observed: span recording on, endpoint live, and a scraper hammering
    // every route for the duration of the sweep.
    obs::set_enabled(true);
    let mut server = obs::ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    let done = AtomicBool::new(false);
    let (observed_scores, observed_traces) = std::thread::scope(|scope| {
        let done = &done;
        let scraper = scope.spawn(move || {
            let mut scrapes = 0u32;
            while !done.load(Ordering::Relaxed) {
                for path in ["/metrics", "/runs", "/healthz"] {
                    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                        .expect("send");
                    let mut response = String::new();
                    stream.read_to_string(&mut response).expect("read");
                    assert!(response.starts_with("HTTP/1.1 200"), "{path}: {response}");
                    scrapes += 1;
                }
            }
            scrapes
        });
        let observed_sink = Arc::new(TraceCollector::new());
        let scores = sweep(&observed_sink);
        let traces = serde_json::to_string(&observed_sink.drain()).unwrap();
        done.store(true, Ordering::Relaxed);
        assert!(scraper.join().expect("scraper thread") > 0, "the endpoint was scraped mid-run");
        (scores, traces)
    });
    server.stop();
    obs::set_enabled(false);
    let profile = obs::drain();

    assert_eq!(
        baseline_scores, observed_scores,
        "self-profiling + live scraping must be invisible in every score"
    );
    assert_eq!(
        baseline_traces, observed_traces,
        "self-profiling + live scraping must be invisible in every device trace"
    );

    // The observability layer did observe the sweep: one cell span per
    // spec (at least — concurrent tests may add more), with calibrate and
    // execute phases inside.
    assert!(
        profile.phase_spans(obs::Phase::Cell).count() >= specs.len(),
        "expected >= {} cell spans, got {:?}",
        specs.len(),
        profile.phase_spans(obs::Phase::Cell).count()
    );
    assert!(profile.phase_spans(obs::Phase::Calibrate).count() >= specs.len());
    assert!(profile.phase_spans(obs::Phase::Execute).count() >= specs.len());
    assert!(
        profile.phase_spans(obs::Phase::SearchProbe).count() >= 2,
        "classification cells ran server + multi-stream searches"
    );
}

#[test]
fn fleet_sweep_is_bit_identical_across_worker_counts() {
    // The fleet executor holds the same contract as the suite runner:
    // worker count is a pure wall-clock knob. The same seed must
    // reproduce the byte-identical population report — serialized
    // scores AND rendered text — whether the shards run serially or on
    // a contended pool, and a uniform sub-population must fast-forward
    // through the unit memo without perturbing that identity.
    use mlperf_mobile::fleet::{render_fleet_report, run_fleet, FleetConfig};
    use soc_sim::fleet::{sample_unit, FleetProfile};

    let cache = CompileCache::new();
    let config_for = |threads: usize| {
        let mut config = FleetConfig::new(600, 11);
        config.threads = threads;
        config.shard_devices = 128;
        config.chips = vec![ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888];
        config
    };

    // Sampling itself is a pure function of (seed, index) — spot-check
    // before comparing whole runs, so a regression points at the
    // generator rather than the executor.
    let profile = FleetProfile::default();
    for index in [0u64, 1, 127, 128, 599] {
        assert_eq!(
            sample_unit(11, index, &profile),
            sample_unit(11, index, &profile),
            "unit {index} must resample identically"
        );
    }

    let serial = run_fleet(&cache, &config_for(1)).expect("fleet compiles");
    let pooled = run_fleet(&cache, &config_for(8)).expect("fleet compiles");
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&pooled).unwrap(),
        "fleet report must serialize byte-identically across worker counts"
    );
    assert_eq!(
        render_fleet_report(&serial),
        render_fleet_report(&pooled),
        "rendered fleet report must be byte-identical across worker counts"
    );
    // Re-running on the shared cache reuses the sweeps without drift.
    let again = run_fleet(&cache, &config_for(4)).expect("fleet compiles");
    assert_eq!(serial, again, "repeated fleet sweeps must be stable");

    // Uniform sub-population: every unit is bit-equal, so all devices
    // after the first wave replay from the memo — and the determinism
    // contract still holds.
    let uniform_for = |threads: usize| {
        let mut config = config_for(threads);
        config.chips = vec![ChipId::Exynos2100];
        config.profile = FleetProfile::uniform(24.0);
        config
    };
    let uniform_serial = run_fleet(&cache, &uniform_for(1)).expect("fleet compiles");
    let uniform_pooled = run_fleet(&cache, &uniform_for(8)).expect("fleet compiles");
    assert_eq!(uniform_serial, uniform_pooled);
    assert!(
        uniform_serial.memo_hits > 0,
        "bit-equal units must fast-forward through the unit memo"
    );
}

#[test]
fn tuning_report_is_bit_identical_across_worker_counts() {
    // The gap table holds the same contract as every other artifact:
    // `threads` is a pure wall-clock knob. The same config must produce
    // the byte-identical report — serialized cells AND rendered text —
    // serially or on a contended pool, from a cold or a warm tuned
    // cache. This is the in-process form of the `make tune` byte-diff
    // across MLPERF_WORKERS settings.
    use mlperf_mobile::tuning::{render_tuning_report, run_tuning, TuningConfig};

    let config_for = |threads: usize| {
        let mut config = TuningConfig::new();
        config.chips = vec![ChipId::Exynos990, ChipId::Snapdragon888];
        config.threads = threads;
        config
    };
    let serial = run_tuning(&CompileCache::new(), &config_for(1)).expect("cells compile");
    let cache = CompileCache::new();
    let pooled = run_tuning(&cache, &config_for(8)).expect("cells compile");
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "tuning report must serialize byte-identically across worker counts"
    );
    assert_eq!(
        render_tuning_report(&serial),
        render_tuning_report(&pooled),
        "rendered gap table must be byte-identical across worker counts"
    );
    // A warm tuned cache replays the memoized searches without drift.
    let again = run_tuning(&cache, &config_for(4)).expect("cells compile");
    assert_eq!(pooled, again, "repeated tuning sweeps must be stable");
    assert!(
        serial.cells.iter().any(|c| c.improved && c.gap_pct > 0.0),
        "the searched chips must show a real scheduling gap"
    );
}

#[test]
fn sweep_matches_per_chip_suite_reports() {
    // The cross-chip sweep parallelizes over the flat matrix but must
    // regroup into exactly the reports a chip-by-chip loop produces.
    let config = mlperf_mobile::app::AppConfig {
        rules: RunRules::smoke_test(),
        offline_classification: false,
        scenario_matrix: false,
        tuner: None,
    };
    let chips = [ChipId::Dimensity1100, ChipId::Exynos2100];
    let swept = SuiteRunner::new()
        .sweep(&chips, SuiteVersion::V1_0, &config, DatasetScale::Reduced(32))
        .expect("sweep compiles");
    for (chip, report) in chips.iter().zip(&swept) {
        let solo = SuiteRunner::new()
            .suite_report(*chip, SuiteVersion::V1_0, &config, DatasetScale::Reduced(32))
            .expect("suite compiles");
        assert_eq!(
            serde_json::to_string(report).unwrap(),
            serde_json::to_string(&solo).unwrap(),
            "{chip:?}"
        );
    }
}
