//! Reproduction assertions: the paper's quantitative claims hold in the
//! simulation, within stated tolerances (see EXPERIMENTS.md).

use mobile_backend::backend::Backend;
use mobile_backend::backends::{Enn, Neuron, Nnapi, OpenVino, Snpe, TfliteGpu};
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::engine::EngineKind;
use soc_sim::executor::run_offline;

fn vendor_latency_ms(chip: ChipId, model: ModelId) -> f64 {
    let soc = chip.build();
    let backend = create(vendor_backend(&soc).unwrap());
    backend.compile(&model.build(), &soc).unwrap().estimate_ms(&soc)
}

fn nlp_latency_ms(chip: ChipId) -> f64 {
    // Phones run MobileBERT through the TFLite GPU delegate (Table 2),
    // except Samsung (ENN drives the GPU directly).
    let soc = chip.build();
    let reference = ModelId::MobileBert.build();
    let dep = if soc.vendor == "Samsung" {
        Enn.compile(&reference, &soc).unwrap()
    } else {
        TfliteGpu.compile(&reference, &soc).unwrap()
    };
    dep.estimate_ms(&soc)
}

/// Paper Table 3: Dimensity 1100, NNAPI vs Neuron delegate.
#[test]
fn table3_neuron_vs_nnapi() {
    let soc = ChipId::Dimensity1100.build();
    // (model, neuron_ms, nnapi_ms, improvement_pct) from the paper.
    let rows = [
        (ModelId::MobileNetEdgeTpu, 2.23, 2.48, 10.08),
        (ModelId::MobileDetSsd, 4.77, 5.05, 5.54),
        (ModelId::DeepLabV3Plus, 20.02, 20.56, 2.70),
    ];
    for (model, paper_neuron, paper_nnapi, paper_pct) in rows {
        let reference = model.build();
        let neuron = Neuron.compile(&reference, &soc).unwrap().estimate_ms(&soc);
        let nnapi = Nnapi::default().compile(&reference, &soc).unwrap().estimate_ms(&soc);
        // Absolute latencies within 10% of the published values.
        assert!(
            (neuron / paper_neuron - 1.0).abs() < 0.10,
            "{model:?} neuron {neuron:.2} vs paper {paper_neuron}"
        );
        assert!(
            (nnapi / paper_nnapi - 1.0).abs() < 0.10,
            "{model:?} nnapi {nnapi:.2} vs paper {paper_nnapi}"
        );
        // And the NNAPI penalty within 4 percentage points.
        let pct = (nnapi / neuron - 1.0) * 100.0;
        assert!(
            (pct - paper_pct).abs() < 4.0,
            "{model:?} improvement {pct:.2}% vs paper {paper_pct}%"
        );
        assert!(nnapi > neuron, "{model:?}: vendor delegate must win");
    }
}

/// Paper Figure 7 orderings (v0.7 single-stream).
#[test]
fn figure7_orderings() {
    let dim = ChipId::Dimensity820;
    let exy = ChipId::Exynos990;
    let sd = ChipId::Snapdragon865Plus;

    // Exynos achieves the best classification score.
    let cls: Vec<f64> = [exy, dim, sd]
        .iter()
        .map(|&c| vendor_latency_ms(c, ModelId::MobileNetEdgeTpu))
        .collect();
    assert!(cls[0] < cls[1] && cls[0] < cls[2], "Exynos must win classification: {cls:?}");

    // MediaTek scores highest in detection and segmentation throughput.
    let det: Vec<f64> = [dim, exy, sd]
        .iter()
        .map(|&c| vendor_latency_ms(c, ModelId::SsdMobileNetV2))
        .collect();
    assert!(det[0] < det[1] && det[0] < det[2], "Dimensity must win detection: {det:?}");

    let seg: Vec<f64> = [dim, exy, sd]
        .iter()
        .map(|&c| vendor_latency_ms(c, ModelId::DeepLabV3Plus))
        .collect();
    assert!(seg[0] < seg[1] && seg[0] < seg[2], "Dimensity must win segmentation: {seg:?}");

    // Exynos wins NLP; Snapdragon is competitive (second).
    let nlp: Vec<f64> = [exy, sd, dim].iter().map(|&c| nlp_latency_ms(c)).collect();
    assert!(nlp[0] < nlp[1] && nlp[1] < nlp[2], "NLP ordering Exynos < SD < Dim: {nlp:?}");
}

/// Paper Section 7.1: Exynos 2100 outperforms the 990 by 12.7x on
/// segmentation; overall v0.7 -> v1.0 improvement averages ~2x.
#[test]
fn figure6_generational_improvement() {
    let seg_990 = vendor_latency_ms(ChipId::Exynos990, ModelId::DeepLabV3Plus);
    let seg_2100 = vendor_latency_ms(ChipId::Exynos2100, ModelId::DeepLabV3Plus);
    let ratio = seg_990 / seg_2100;
    assert!(
        (10.0..16.0).contains(&ratio),
        "Exynos seg uplift {ratio:.1} should be ~12.7"
    );

    // Average latency improvement across smartphone families and tasks ~2x
    // (paper: "latency improved by 2x on average and by 12x in one case").
    let pairs = [
        (ChipId::Dimensity820, ChipId::Dimensity1100),
        (ChipId::Exynos990, ChipId::Exynos2100),
        (ChipId::Snapdragon865Plus, ChipId::Snapdragon888),
    ];
    let mut ratios = Vec::new();
    for (old, new) in pairs {
        // Classification and segmentation keep the same model across
        // versions; detection upgrades SSD-MNv2 -> MobileDets.
        ratios.push(
            vendor_latency_ms(old, ModelId::MobileNetEdgeTpu)
                / vendor_latency_ms(new, ModelId::MobileNetEdgeTpu),
        );
        ratios.push(
            vendor_latency_ms(old, ModelId::SsdMobileNetV2)
                / vendor_latency_ms(new, ModelId::MobileDetSsd),
        );
        ratios.push(
            vendor_latency_ms(old, ModelId::DeepLabV3Plus)
                / vendor_latency_ms(new, ModelId::DeepLabV3Plus),
        );
        ratios.push(nlp_latency_ms(old) / nlp_latency_ms(new));
    }
    for (i, r) in ratios.iter().enumerate() {
        assert!(*r > 1.0, "every task must improve generationally (pair {i}: {r:.2})");
    }
    let geo_mean =
        (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        (1.5..3.2).contains(&geo_mean),
        "average improvement {geo_mean:.2} should be ~2x"
    );
}

/// Paper Section 7.2: offline classification — Exynos 674.4 FPS,
/// Snapdragon 605.37 FPS.
#[test]
fn offline_classification_fps() {
    let cases = [
        (ChipId::Exynos990, 674.4),
        (ChipId::Snapdragon865Plus, 605.37),
    ];
    for (chip, paper_fps) in cases {
        let soc = chip.build();
        let backend = create(vendor_backend(&soc).unwrap());
        let dep = backend.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
        assert!(dep.offline_streams.len() >= 2, "{chip:?} offline must use ALP");
        let mut state = soc.new_state(22.0);
        let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 24_576, 32);
        let dev = (r.throughput_fps / paper_fps - 1.0).abs();
        assert!(
            dev < 0.10,
            "{chip:?}: {:.1} FPS vs paper {paper_fps} ({:+.1}%)",
            r.throughput_fps,
            dev * 100.0
        );
    }
}

/// Paper Sections 7.1/7.4: laptop engine selection and generational gains.
#[test]
fn laptop_behaviour() {
    let old = ChipId::CoreI7_1165G7.build();
    let new = ChipId::CoreI7_11375H.build();
    // Engine choice: classification + detection on CPU, segmentation + NLP
    // on the iGPU (v0.7).
    for (model, kind) in [
        (ModelId::MobileNetEdgeTpu, EngineKind::CpuLaptop),
        (ModelId::SsdMobileNetV2, EngineKind::CpuLaptop),
        (ModelId::DeepLabV3Plus, EngineKind::IntegratedGpu),
        (ModelId::MobileBert, EngineKind::IntegratedGpu),
    ] {
        let dep = OpenVino.compile(&model.build(), &old).unwrap();
        assert_eq!(old.engine(dep.schedule.stages[0].engine).kind, kind, "{model:?}");
    }
    // CPU-bound tasks gain ~1.1x from the CPU frequency bump.
    let cls_gain = {
        let a = OpenVino.compile(&ModelId::MobileNetEdgeTpu.build(), &old).unwrap().estimate_ms(&old);
        let b = OpenVino.compile(&ModelId::MobileNetEdgeTpu.build(), &new).unwrap().estimate_ms(&new);
        a / b
    };
    assert!((1.02..1.2).contains(&cls_gain), "classification gain {cls_gain:.3} ~ 1.1x");
    // NLP gains much more (quantized GPU kernel); segmentation only
    // marginally.
    let nlp_gain = {
        let a = OpenVino.compile(&ModelId::MobileBert.build(), &old).unwrap().estimate_ms(&old);
        let b = OpenVino.compile(&ModelId::MobileBert.build(), &new).unwrap().estimate_ms(&new);
        a / b
    };
    let seg_gain = {
        let a = OpenVino.compile(&ModelId::DeepLabV3Plus.build(), &old).unwrap().estimate_ms(&old);
        let b = OpenVino.compile(&ModelId::DeepLabV3Plus.build(), &new).unwrap().estimate_ms(&new);
        a / b
    };
    assert!(nlp_gain > 2.0, "NLP gain {nlp_gain:.2} should be large");
    assert!(seg_gain < 1.2, "segmentation gain {seg_gain:.2} should be marginal");
}

/// Paper related work / Buch et al.: buggy NNAPI op support can make the
/// generic path several times slower than the vendor path.
#[test]
fn buggy_nnapi_multiplier() {
    let soc = ChipId::Dimensity1100.build();
    let reference = ModelId::MobileNetEdgeTpu.build();
    let vendor = Neuron.compile(&reference, &soc).unwrap().estimate_ms(&soc);
    let buggy = Nnapi::buggy(vec![nn_graph::OpClass::DepthwiseConv])
        .compile(&reference, &soc)
        .unwrap()
        .estimate_ms(&soc);
    let ratio = buggy / vendor;
    assert!(ratio > 2.0, "buggy NNAPI ratio {ratio:.1} should be large");
}

/// Insight 3: offline ALP (multiple concurrent accelerators) beats any
/// single stream.
#[test]
fn alp_beats_single_stream_throughput() {
    let soc = ChipId::Snapdragon865Plus.build();
    let dep = Snpe.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
    let mut s1 = soc.new_state(22.0);
    let solo = run_offline(&soc, &dep.graph, &dep.offline_streams[..1], &mut s1, 8192, 32);
    let mut s2 = soc.new_state(22.0);
    let alp = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut s2, 8192, 32);
    assert!(
        alp.throughput_fps > solo.throughput_fps * 1.3,
        "AIP (HTA+HVX) {:.0} fps should clearly beat HTA alone {:.0} fps",
        alp.throughput_fps,
        solo.throughput_fps
    );
}
