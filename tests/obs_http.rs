//! End-to-end checks on the live observability endpoint: the hand-rolled
//! HTTP server serves `/metrics`, `/healthz` and `/runs` while a suite is
//! actually running, and a mid-run scrape is *streaming-consistent* with
//! the end-of-run snapshot — every scraped counter is monotone
//! non-decreasing and never overtakes what the registry finally reports.

use mlperf_mobile::harness::{RunRules, ScenarioMix};
use mlperf_mobile::metrics::metrics;
use mlperf_mobile::obs::ObsServer;
use mlperf_mobile::runner::{RunSpec, SuiteRunner};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use soc_sim::catalog::ChipId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One raw HTTP GET — no client library, mirroring what `curl` sends.
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs-test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_owned();
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Extracts the value of an unlabelled counter sample from an exposition.
fn counter(body: &str, name: &str) -> u64 {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {name} in:\n{body}"))
}

fn smoke_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for chip in [ChipId::Dimensity1100, ChipId::Snapdragon888] {
        for def in suite(SuiteVersion::V1_0) {
            if def.task == Task::ImageClassification {
                specs.push(RunSpec {
                    chip,
                    backend: mlperf_mobile::app::submission_backend(
                        chip,
                        SuiteVersion::V1_0,
                        def.task,
                    ),
                    mix: ScenarioMix::offline_only(true),
                    def,
                    tuner: None,
                });
            }
        }
    }
    specs
}

#[test]
fn endpoint_serves_all_routes_with_curl_shaped_requests() {
    let mut server = ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(body, "ok\n");

    let (status, body) = get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    for family in [
        "mlperf_runs_completed_total",
        "mlperf_compile_cache_hits_total",
        "mlperf_pool_par_map_calls_total",
        "mlperf_pool_queue_depth",
        "mlperf_run_wall_ns",
        "mlperf_obs_requests_total",
    ] {
        assert!(body.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
    }
    // The run-wall summary always carries its count sample.
    assert!(body.contains("mlperf_run_wall_ns_count "));

    let (status, body) = get(addr, "/runs");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body.contains("\"total\"") && body.contains("\"runs\""));

    let (status, _) = get(addr, "/definitely-not-a-route");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");

    server.stop();
}

#[test]
fn live_scrapes_during_a_suite_are_consistent_with_the_final_snapshot() {
    let server = ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    let specs = smoke_specs();
    let rules = RunRules::smoke_test();

    let before_runs = metrics().snapshot().runs_completed;
    let done = std::sync::atomic::AtomicBool::new(false);
    let (scrapes, results) = std::thread::scope(|scope| {
        let done = &done;
        let scraper = scope.spawn(move || {
            let mut scrapes: Vec<u64> = Vec::new();
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = get(addr, "/metrics");
                assert!(status.starts_with("HTTP/1.1 200"), "{status}");
                scrapes.push(counter(&body, "mlperf_runs_completed_total"));
            }
            // One final scrape strictly after the suite finished.
            let (_, body) = get(addr, "/metrics");
            scrapes.push(counter(&body, "mlperf_runs_completed_total"));
            scrapes
        });
        let results = SuiteRunner::with_threads(4).run(&specs, &rules, DatasetScale::Reduced(48));
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        (scraper.join().expect("scraper thread"), results)
    });
    let after_runs = metrics().snapshot().runs_completed;

    assert!(results.iter().all(Result::is_ok), "suite runs under live scraping");
    assert_eq!(after_runs - before_runs, specs.len(), "every spec recorded a completed run");

    // Streaming consistency: scraped counters never decrease, never run
    // ahead of the final registry snapshot, and the post-suite scrape has
    // caught up with every run this suite completed. (Other tests in this
    // binary may bump the shared registry concurrently, so bounds — not
    // exact equality — are the contract.)
    assert!(!scrapes.is_empty());
    assert!(scrapes.windows(2).all(|w| w[0] <= w[1]), "scrapes must be monotone: {scrapes:?}");
    let last = *scrapes.last().unwrap();
    assert!(
        last >= before_runs as u64 + specs.len() as u64,
        "final scrape {last} must include all {} suite runs (baseline {before_runs})",
        specs.len()
    );
    assert!(
        last <= after_runs as u64,
        "scrape {last} cannot overtake the registry snapshot {after_runs}"
    );

    // The /runs board saw the same cells the suite ran.
    let (_, runs_body) = get(addr, "/runs");
    assert!(runs_body.contains("ImageClassification"), "{runs_body}");
}
