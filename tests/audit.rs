//! The result-validation / audit flow end-to-end (paper Section 6.2):
//! honest submissions reproduce within 5%; various classes of cheating are
//! caught.

use mlperf_mobile::audit::{audit, AuditFinding, SubmissionPackage};
use mlperf_mobile::harness::{run_benchmark, RunRules};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::registry::create;
use mlperf_mobile::app::submission_backend;
use mobile_data::calibration_set::approved_calibration_indices;
use soc_sim::catalog::ChipId;

fn build_submission(chip: ChipId, task: Task) -> (SubmissionPackage, RunRules, DatasetScale) {
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(96);
    let version = SuiteVersion::V1_0;
    let def = suite(version).into_iter().find(|d| d.task == task).unwrap();
    let backend_id = submission_backend(chip, version, task);
    let backend = create(backend_id);
    let score = run_benchmark(chip, backend.as_ref(), &def, &rules, scale, false).unwrap();
    let deployment = backend.compile(&def.model.build(), &chip.build()).unwrap();
    let package = SubmissionPackage {
        chip,
        version,
        task,
        backend: backend_id,
        claimed_latency_ms: score.latency_ms(),
        claimed_offline_fps: score.offline.as_ref().map(|o| o.throughput_fps),
        claimed_accuracy: score.accuracy,
        log: score.log,
        deployed_graph: deployment.graph,
        calibration_indices: approved_calibration_indices(rules.settings.seed, 50_000, 500),
        calibration_dataset_len: 50_000,
    };
    (package, rules, scale)
}

#[test]
fn honest_submissions_pass_across_vendors() {
    for chip in [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888] {
        let (package, rules, scale) = build_submission(chip, Task::ImageClassification);
        let report = audit(&package, &rules, scale);
        assert!(report.is_valid(), "{chip:?}: {:?}", report.findings);
        // The auditor reproduced within the 5% window.
        let dev = (package.claimed_latency_ms - report.reproduced_latency_ms).abs()
            / report.reproduced_latency_ms;
        assert!(dev <= 0.05, "{chip:?}: deviation {dev:.3}");
    }
}

#[test]
fn offline_throughput_verified() {
    // Submit with offline; an inflated FPS claim is caught, an honest one
    // reproduces.
    let rules = RunRules::smoke_test();
    let scale = DatasetScale::Reduced(96);
    let version = SuiteVersion::V1_0;
    let def = suite(version)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .unwrap();
    let backend_id = submission_backend(ChipId::Exynos2100, version, Task::ImageClassification);
    let backend = create(backend_id);
    let score = run_benchmark(ChipId::Exynos2100, backend.as_ref(), &def, &rules, scale, true)
        .unwrap();
    let deployment = backend.compile(&def.model.build(), &ChipId::Exynos2100.build()).unwrap();
    let mut package = SubmissionPackage {
        chip: ChipId::Exynos2100,
        version,
        task: Task::ImageClassification,
        backend: backend_id,
        claimed_latency_ms: score.latency_ms(),
        claimed_offline_fps: score.offline.as_ref().map(|o| o.throughput_fps),
        claimed_accuracy: score.accuracy,
        log: score.log,
        deployed_graph: deployment.graph,
        calibration_indices: approved_calibration_indices(rules.settings.seed, 50_000, 500),
        calibration_dataset_len: 50_000,
    };
    let honest = audit(&package, &rules, scale);
    assert!(honest.is_valid(), "{:?}", honest.findings);
    package.claimed_offline_fps = package.claimed_offline_fps.map(|f| f * 1.5);
    let inflated = audit(&package, &rules, scale);
    assert!(inflated
        .findings
        .iter()
        .any(|f| matches!(f, AuditFinding::ThroughputMismatch { .. })));
}

#[test]
fn latency_inflation_caught() {
    let (mut package, rules, scale) = build_submission(ChipId::Snapdragon888, Task::ImageClassification);
    package.claimed_latency_ms *= 0.7; // claim 30% faster
    let report = audit(&package, &rules, scale);
    assert!(report.findings.iter().any(|f| matches!(f, AuditFinding::LatencyMismatch { .. })));
}

#[test]
fn accuracy_inflation_caught() {
    let (mut package, rules, scale) = build_submission(ChipId::Dimensity1100, Task::ImageClassification);
    package.claimed_accuracy = 0.999; // impossible quantized accuracy
    let report = audit(&package, &rules, scale);
    assert!(report.findings.iter().any(|f| matches!(f, AuditFinding::AccuracyMismatch { .. })));
}

#[test]
fn below_target_submission_rejected() {
    let (mut package, rules, scale) = build_submission(ChipId::Dimensity1100, Task::ImageClassification);
    // Claim an accuracy below the 74.66% gate (and pretend it's honest).
    package.claimed_accuracy = 0.70;
    let report = audit(&package, &rules, scale);
    assert!(report.findings.iter().any(|f| matches!(f, AuditFinding::QualityGateFailed { .. })));
}

#[test]
fn pruned_deployment_caught() {
    let (mut package, rules, scale) = build_submission(ChipId::Exynos2100, Task::ImageClassification);
    // Ship a thinned graph as the "deployed model".
    package.deployed_graph = nn_graph::models::ModelId::DeepLabV3Plus.build();
    let report = audit(&package, &rules, scale);
    assert!(report.findings.iter().any(|f| matches!(f, AuditFinding::ModelNotEquivalent(_))));
}

#[test]
fn cherry_picked_calibration_caught() {
    let (mut package, rules, scale) = build_submission(ChipId::Dimensity1100, Task::ImageClassification);
    package.calibration_indices = (1000..1500).collect();
    let report = audit(&package, &rules, scale);
    assert!(report.findings.contains(&AuditFinding::UnapprovedCalibration));
}

#[test]
fn tampered_log_caught() {
    use loadgen::log::RunLog;
    let (mut package, rules, scale) = build_submission(ChipId::Dimensity1100, Task::ImageClassification);
    // Drop everything but the first record ("edited" log).
    let text = package.log.to_json_lines();
    let first_line = text.lines().next().unwrap().to_owned();
    package.log = RunLog::from_json_lines(&first_line).unwrap();
    let report = audit(&package, &rules, scale);
    assert!(report.findings.iter().any(|f| matches!(f, AuditFinding::LogViolation(_))));
}
