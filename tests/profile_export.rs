//! Schema validation and determinism guards for the trace export layer.
//!
//! 1. Perfetto trace-event JSON from real traced runs parses and every
//!    event carries the required `ph`/`ts`/`pid`/`tid`/`name` fields with
//!    `ts` monotone non-decreasing per `(pid, tid)` track,
//! 2. exporting the same cell repeatedly yields byte-identical output
//!    (deterministic serialization — no map-iteration-order leaks),
//! 3. the `ArtifactTrace` bundle (what `reproduce --trace/--profile`
//!    writes and `explain` reads) round-trips through JSON with its runs
//!    intact and renders every report section.

use mlperf_mobile::harness::{run_benchmark_with_trace, BenchmarkTrace, RunRules};
use mlperf_mobile::metrics::MetricsSnapshot;
use mlperf_mobile::profile::{benchmark_perfetto_json, ArtifactTrace, CellProfile};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::registry::create;
use serde::Value;
use soc_sim::catalog::ChipId;
use std::sync::Arc;

/// One traced smoke-scale run of `task` on `chip`.
fn traced_cell(chip: ChipId, task: Task, with_offline: bool) -> BenchmarkTrace {
    let def = suite(SuiteVersion::V1_0).into_iter().find(|d| d.task == task).unwrap();
    let backend = mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, task);
    let soc = Arc::new(chip.build());
    let deployment =
        Arc::new(create(backend).compile(&def.model.build(), &soc).expect("compiles"));
    let (_, trace) = run_benchmark_with_trace(
        chip,
        soc,
        deployment,
        &def,
        &RunRules::smoke_test(),
        DatasetScale::Reduced(48),
        with_offline,
    );
    trace
}

fn as_number(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

fn field<'a>(event: &'a Value, name: &str) -> &'a Value {
    event
        .as_object()
        .unwrap_or_else(|| panic!("event is not an object: {event:?}"))
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("event missing required field {name}: {event:?}"))
}

/// Validates the exported JSON against the trace-event schema and returns
/// the number of events checked.
fn validate_perfetto(json: &str) -> usize {
    let root: Value = serde_json::from_str(json).expect("export parses as JSON");
    let events = root
        .as_object()
        .expect("root is an object")
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("root has a traceEvents array");
    assert!(!events.is_empty(), "export has events");

    // ts monotone non-decreasing per (pid, tid), in emission order.
    let mut last_ts: Vec<((f64, f64), f64)> = Vec::new();
    for event in events {
        let ph = field(event, "ph").as_str().expect("ph is a string");
        assert!(
            ["M", "X", "C", "i"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        let ts = as_number(field(event, "ts"));
        let pid = as_number(field(event, "pid"));
        let tid = as_number(field(event, "tid"));
        assert!(field(event, "name").as_str().is_some(), "name is a string");
        if ph == "X" {
            assert!(as_number(field(event, "dur")) >= 0.0, "slices carry a duration");
        }
        if ph == "M" {
            continue; // metadata is pinned to ts 0
        }
        match last_ts.iter_mut().find(|(track, _)| *track == (pid, tid)) {
            Some((_, last)) => {
                assert!(
                    ts >= *last,
                    "ts {ts} < previous {last} on track (pid {pid}, tid {tid})"
                );
                *last = ts;
            }
            None => last_ts.push(((pid, tid), ts)),
        }
    }
    events.len()
}

#[test]
fn perfetto_export_validates_against_schema() {
    let traces = vec![
        traced_cell(ChipId::Dimensity1100, Task::ImageClassification, true),
        traced_cell(ChipId::Snapdragon888, Task::ImageSegmentation, false),
    ];
    let json = benchmark_perfetto_json(&traces);
    let checked = validate_perfetto(&json);
    // Both cells contribute: per-query slices, counters, engine metadata,
    // and the offline burst of the first cell.
    assert!(checked > 100, "only {checked} events for two traced cells");
    assert!(json.contains("offline burst"));
    assert!(json.contains("freq_factor"));
    assert!(json.contains("energy_j"));
    assert!(json.contains("temperature_c"));
}

#[test]
fn perfetto_export_is_byte_identical_across_runs() {
    // Golden-suite guard: the exporter output for one fixed cell is a pure
    // function of the (deterministic) run — repeated traced runs produce
    // byte-identical exports.
    let a = traced_cell(ChipId::Dimensity1100, Task::ImageClassification, true);
    let b = traced_cell(ChipId::Dimensity1100, Task::ImageClassification, true);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "repeated traced runs reproduce the same trace"
    );
    let export_a = benchmark_perfetto_json(&[a]);
    let export_b = benchmark_perfetto_json(&[b]);
    assert_eq!(export_a, export_b, "exports are byte-identical");
    // And re-exporting the same in-memory trace is stable too.
    assert_eq!(export_a, export_a.clone());
}

#[test]
fn artifact_bundle_round_trips_and_renders() {
    let runs = vec![traced_cell(ChipId::Dimensity1100, Task::ImageClassification, false)];
    let bundle = ArtifactTrace {
        artifact: "profile_export_test".into(),
        wall_ms: 42.0,
        metrics: MetricsSnapshot { runs_completed: 1, queries_issued: 32, ..Default::default() },
        spec_timings: Vec::new(),
        pool: loadgen::par::PoolSnapshot {
            workers: vec![loadgen::par::WorkerStats { worker: 0, tasks: 1, busy_ns: 42_000_000, steals: 0 }],
            calls: 1,
            queue_depth: 0,
            max_queue_depth: 1,
        },
        runs,
    };
    let parsed = ArtifactTrace::from_json(&bundle.to_json()).expect("bundle parses back");
    assert_eq!(parsed, bundle, "ArtifactTrace round-trips through JSON");

    // The explain path renders from the parsed bundle alone.
    let text = parsed.render();
    assert!(text.contains("profile_export_test"));
    assert!(text.contains("profile:"));
    assert!(text.contains("engine"));
    assert!(text.contains("dvfs residency"));
    assert!(text.contains("mlperf_queries_issued_total 32"));
    // The pool report rides along in the rendered bundle.
    assert!(text.contains("pool report"));
    assert!(text.contains("worker-0"));
    assert!(text.contains("cache layers:"));
}

#[test]
fn profile_energy_ties_to_trace_meter_totals() {
    // The analyzed profile surfaces the trace's energy accounting
    // unmodified — bit-for-bit the meter totals the harness captured.
    let trace = traced_cell(ChipId::Snapdragon888, Task::ImageClassification, false);
    let profile = CellProfile::from_trace(&trace);
    assert_eq!(
        profile.energy.total_joules.to_bits(),
        trace.energy.total_joules.to_bits()
    );
    assert!(profile.energy.single_stream_joules > 0.0);
    assert!(!profile.energy.engines.is_empty());
    assert_eq!(profile.latency.count(), trace.single_stream.span_count());
    // Histogram percentiles bracket the exact span latencies.
    let mut latencies: Vec<u64> =
        trace.single_stream.spans.iter().map(|s| s.latency_ns).collect();
    latencies.sort_unstable();
    let exact_p90 = mobile_metrics::latency::percentile_nearest_rank(&latencies, 90.0);
    let approx_p90 = profile.latency.value_at_percentile(90.0);
    assert!(approx_p90 >= exact_p90);
    assert!(
        approx_p90 as f64 <= exact_p90 as f64 * (1.0 + mobile_metrics::hist::MAX_RELATIVE_ERROR) + 1.0
    );
}
