//! Custom silicon: evaluate a hypothetical SoC before it exists — the
//! "model designer / OEM" use case from paper Appendix B.
//!
//! Builds a fictional chipset with the public API, runs the v1.0 vision
//! models against catalog flagships, and shows where it would land.
//!
//! ```sh
//! cargo run --release --example custom_soc
//! ```

use mobile_backend::backend::Backend;
use mobile_backend::backends::Nnapi;
use nn_graph::models::ModelId;
use nn_graph::OpClass;
use soc_sim::catalog::ChipId;
use soc_sim::engine::{EngineKind, EngineSpecBuilder};
use soc_sim::soc::{InterconnectSpec, Soc};
use soc_sim::thermal::ThermalSpec;

const ALL_CLASSES: &[OpClass] = &[
    OpClass::Conv,
    OpClass::DepthwiseConv,
    OpClass::FullyConnected,
    OpClass::MatMul,
    OpClass::Pool,
    OpClass::Softmax,
    OpClass::LayerNorm,
    OpClass::Eltwise,
    OpClass::Concat,
    OpClass::Shape,
    OpClass::Resize,
    OpClass::Embedding,
    OpClass::Nms,
    OpClass::BoxDecode,
];

fn hypothetical_soc() -> Soc {
    Soc {
        name: "Falcon X1 (hypothetical)".into(),
        vendor: "Acme Silicon".into(),
        engines: vec![
            EngineSpecBuilder::new("big CPU x4", EngineKind::CpuBig, 140.0, 80.0, 60.0)
                .bandwidth(14.0)
                .launch_us(20.0)
                .per_op_us(1.0)
                .power_w(2.6)
                .eff_all(ALL_CLASSES, 0.35)
                .build(),
            EngineSpecBuilder::new("GPU", EngineKind::Gpu, 1600.0, 1800.0, 900.0)
                .bandwidth(20.0)
                .launch_us(140.0)
                .power_w(2.3)
                .eff(OpClass::Conv, 0.25)
                .eff(OpClass::FullyConnected, 0.3)
                .eff(OpClass::MatMul, 0.22)
                .eff(OpClass::Resize, 0.3)
                .eff(OpClass::Nms, 0.0)
                .eff(OpClass::BoxDecode, 0.0)
                .build(),
            // A big NPU with unusually good depthwise support.
            EngineSpecBuilder::new("TurboNPU", EngineKind::Npu, 8000.0, 3200.0, 0.0)
                .bandwidth(40.0)
                .launch_us(200.0)
                .per_op_us(4.0)
                .power_w(2.4)
                .eff(OpClass::Conv, 0.14)
                .eff(OpClass::FullyConnected, 0.14)
                .eff(OpClass::DepthwiseConv, 0.12)
                .eff_all(
                    &[OpClass::Pool, OpClass::Softmax, OpClass::Eltwise, OpClass::Concat, OpClass::Shape],
                    0.1,
                )
                .eff_all(
                    &[
                        OpClass::MatMul,
                        OpClass::LayerNorm,
                        OpClass::Resize,
                        OpClass::Embedding,
                        OpClass::Nms,
                        OpClass::BoxDecode,
                    ],
                    0.0,
                )
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 12.0, handoff_latency_us: 100.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn main() {
    let falcon = hypothetical_soc();
    let rivals = [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888];

    println!("hypothetical {} vs the v1.0 flagships (NNAPI path, estimates)\n", falcon.name);
    for model in [ModelId::MobileNetEdgeTpu, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus] {
        let reference = model.build();
        println!("{model}:");
        let dep = Nnapi::default().compile(&reference, &falcon).expect("falcon compiles");
        println!(
            "  {:18} {:8.2} ms on {}",
            "Falcon X1",
            dep.estimate_ms(&falcon),
            dep.accelerator_summary(&falcon)
        );
        for chip in rivals {
            let soc = chip.build();
            let dep = Nnapi::default().compile(&reference, &soc).expect("catalog compiles");
            println!(
                "  {:18} {:8.2} ms on {}",
                chip.to_string(),
                dep.estimate_ms(&soc),
                dep.accelerator_summary(&soc)
            );
        }
        println!();
    }
}
