//! Quickstart: run the full MLPerf Mobile suite on one device and print
//! the results — the headless equivalent of tapping "Go" in the app.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlperf_mobile::app::{run_suite, AppConfig};
use mlperf_mobile::report::format_report;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::SuiteVersion;
use soc_sim::catalog::ChipId;

fn main() {
    // Pick a device; every platform from the paper's two rounds is in the
    // catalog.
    let chip = ChipId::Dimensity1100;
    let config = AppConfig::default();

    println!("running MLPerf Mobile {} on {} ...", SuiteVersion::V1_0, chip);
    let report = run_suite(
        chip,
        SuiteVersion::V1_0,
        &config,
        // Reduced datasets keep the example snappy; DatasetScale::Full
        // reproduces the paper-sized validation splits.
        DatasetScale::Reduced(512),
    )
    .expect("suite runs on catalog devices");

    println!("{}", format_report(&report));

    // Each score carries the full decomposition.
    for s in &report.scores {
        println!(
            "{:22} {:6} queries, {:>9} total, {:.2} mJ/query",
            s.def.task.to_string(),
            s.single_stream.queries,
            s.single_stream.duration.to_string(),
            s.joules_per_query * 1e3,
        );
    }
}
