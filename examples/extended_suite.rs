//! The extended suite (paper Appendix E): run the four published tasks
//! plus speech recognition and super-resolution, then file the results
//! into a rolling-submission registry.
//!
//! ```sh
//! cargo run --release --example extended_suite
//! ```

use mlperf_mobile::extensions::extended_suite;
use mlperf_mobile::harness::{run_benchmark, RunRules};
use mlperf_mobile::report::score_line;
use mlperf_mobile::submission::{Date, SubmissionEntry, SubmissionRegistry};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::SuiteVersion;
use mobile_backend::registry::create;
use soc_sim::catalog::ChipId;

fn main() {
    let chip = ChipId::Exynos2100;
    let version = SuiteVersion::V1_0;
    let rules = RunRules::default();
    let mut registry = SubmissionRegistry::new();

    println!("extended MLPerf Mobile suite on {chip} (6 tasks)\n");
    for def in extended_suite(version) {
        let backend = create(mlperf_mobile::app::submission_backend(chip, version, def.task));
        let score = run_benchmark(
            chip,
            backend.as_ref(),
            &def,
            &rules,
            DatasetScale::Reduced(256),
            false,
        )
        .expect("benchmark runs");
        println!("{}", score_line(&score));

        // Rolling submission (Appendix E): file the result immediately
        // instead of waiting for the next formal round.
        let entry =
            SubmissionEntry::from_score(Date::new(2021, 9, 14), "example-org", version, &score);
        match registry.submit(entry) {
            Ok(()) => {}
            Err(reason) => println!("  -> registry refused: {reason}"),
        }
    }

    println!("\nrolling registry now holds {} entries:", registry.entries().len());
    let board = registry.leaderboard(version, Date::new(2021, 12, 31));
    for (task, e) in &board {
        println!("  {task:30} {:8.2} ms  ({} via {})", e.latency_ms, e.chip, e.backend);
    }
    println!("\nregistry JSON export:\n{}", &registry.to_json()[..400.min(registry.to_json().len())]);
}
