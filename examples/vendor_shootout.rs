//! Vendor shootout: the same model on the same silicon through every
//! available code path (paper Figure 1 / Insight 4).
//!
//! Shows why "state-of-the-art should compare against vendor backends":
//! the generic NNAPI route pays HAL overhead, and a buggy driver can be
//! several times slower than the vendor delegate.
//!
//! ```sh
//! cargo run --release --example vendor_shootout
//! ```

use mobile_backend::backend::Backend;
use mobile_backend::backends::{Neuron, Nnapi, TfliteCpu, TfliteGpu};
use mobile_backend::registry::available_backends;
use nn_graph::models::ModelId;
use nn_graph::OpClass;
use soc_sim::catalog::ChipId;

fn main() {
    let chip = ChipId::Dimensity1100;
    let soc = chip.build();
    println!("code paths available on {}: ", chip);
    for b in available_backends(&soc) {
        println!("  - {b}");
    }
    println!();

    for model in [ModelId::MobileNetEdgeTpu, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus] {
        let reference = model.build();
        println!("{model} ({:.2} GMACs):", reference.gmacs());
        let backends: Vec<(&str, Box<dyn Backend>)> = vec![
            ("TFLite CPU", Box::new(TfliteCpu)),
            ("TFLite GPU delegate", Box::new(TfliteGpu)),
            ("NNAPI", Box::new(Nnapi::default())),
            ("NNAPI (buggy dwconv driver)", Box::new(Nnapi::buggy(vec![OpClass::DepthwiseConv]))),
            ("Neuron delegate (vendor)", Box::new(Neuron)),
        ];
        let mut rows: Vec<(String, f64)> = Vec::new();
        for (name, backend) in backends {
            match backend.compile(&reference, &soc) {
                Ok(dep) => rows.push((
                    format!(
                        "{name} [{} on {}]",
                        dep.scheme,
                        dep.accelerator_summary(&soc)
                    ),
                    dep.estimate_ms(&soc),
                )),
                Err(e) => println!("  {name:45} unavailable: {e}"),
            }
        }
        let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        for (name, ms) in rows {
            println!("  {name:55} {ms:8.2} ms  ({:>5.2}x of best)", ms / best);
        }
        println!();
    }
}
