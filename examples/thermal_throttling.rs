//! Thermal throttling: why the run rules demand 20-25 degC ambient, an air
//! gap, and cooldown intervals (paper Section 6.1).
//!
//! Hammers a phone with sustained segmentation inference, plots the
//! temperature/frequency/latency trajectory, then shows a cooldown
//! restoring performance — and what a hot ambient does to scores.
//!
//! ```sh
//! cargo run --release --example thermal_throttling
//! ```

use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::Backend;
use mobile_backend::backends::Snpe;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_query;
use soc_sim::time::SimDuration;

fn main() {
    let chip = ChipId::Snapdragon888;
    let soc = chip.build();
    let def = suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageSegmentation)
        .expect("segmentation is in the suite");
    let deployment = Snpe.compile(&def.model.build(), &soc).expect("SNPE targets Snapdragon");

    for ambient in [22.0, 38.0] {
        println!("=== sustained segmentation on {chip}, ambient {ambient:.0} degC ===");
        println!("{:>8} {:>10} {:>8} {:>12}", "time", "temp degC", "freq", "latency ms");
        let mut state = soc.new_state(ambient);
        let mut elapsed = SimDuration::ZERO;
        let mut next_print = SimDuration::ZERO;
        // Ten simulated minutes of back-to-back inference.
        while elapsed < SimDuration::from_secs(600) {
            let r = run_query(&soc, &deployment.graph, &deployment.schedule, &mut state);
            elapsed += r.latency;
            if elapsed >= next_print {
                println!(
                    "{:>8} {:>10.1} {:>8.2} {:>12.2}",
                    format!("{:.0}s", elapsed.as_secs_f64()),
                    state.thermal.temperature_c(),
                    r.freq_factor,
                    r.latency.as_millis_f64(),
                );
                next_print += SimDuration::from_secs(60);
            }
        }
        // The rules allow a 0-5 minute cooldown between tests.
        println!("-- 5 minute cooldown --");
        state.thermal.cooldown(SimDuration::from_secs(300));
        let r = run_query(&soc, &deployment.graph, &deployment.schedule, &mut state);
        println!(
            "after cooldown: temp {:.1} degC, freq {:.2}, latency {:.2} ms",
            state.thermal.temperature_c(),
            r.freq_factor,
            r.latency.as_millis_f64(),
        );
        println!();
    }
}
