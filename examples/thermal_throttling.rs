//! Thermal throttling: why the run rules demand 20-25 degC ambient, an air
//! gap, and cooldown intervals (paper Section 6.1).
//!
//! Hammers a phone with sustained segmentation inference, plots the
//! temperature/frequency/latency trajectory, then shows a cooldown
//! restoring performance — and what a hot ambient does to scores. Each
//! sustained run is also recorded as a span timeline and exported as a
//! Perfetto trace (`out/thermal_<ambient>c.perfetto.json`) — open it in
//! `ui.perfetto.dev` to scrub through the throttling onset: the
//! `freq_factor` counter stepping down, `temperature_c` climbing, and the
//! query slices stretching.
//!
//! ```sh
//! cargo run --release --example thermal_throttling
//! ```

use loadgen::trace::{QuerySpan, RunTrace};
use mlperf_mobile::profile::run_perfetto_json;
use mlperf_mobile::sut_impl::query_telemetry;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::Backend;
use mobile_backend::backends::Snpe;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_query;
use soc_sim::time::SimDuration;

fn main() {
    let chip = ChipId::Snapdragon888;
    let soc = chip.build();
    let def = suite(SuiteVersion::V1_0)
        .into_iter()
        .find(|d| d.task == Task::ImageSegmentation)
        .expect("segmentation is in the suite");
    let deployment = Snpe.compile(&def.model.build(), &soc).expect("SNPE targets Snapdragon");

    for ambient in [22.0, 38.0] {
        println!("=== sustained segmentation on {chip}, ambient {ambient:.0} degC ===");
        println!("{:>8} {:>10} {:>8} {:>12}", "time", "temp degC", "freq", "latency ms");
        let mut state = soc.new_state(ambient);
        let mut elapsed = SimDuration::ZERO;
        let mut next_print = SimDuration::ZERO;
        let mut trace = RunTrace::new();
        trace.begin(
            loadgen::scenario::Scenario::SingleStream,
            loadgen::scenario::TestMode::Performance,
            0,
            format!("sustained segmentation, ambient {ambient:.0} degC"),
        );
        let mut query_index = 0u64;
        // Ten simulated minutes of back-to-back inference.
        while elapsed < SimDuration::from_secs(600) {
            let r = run_query(&soc, &deployment.graph, &deployment.schedule, &mut state);
            let issue_ns = elapsed.as_nanos();
            elapsed += r.latency;
            trace.record_span(QuerySpan {
                query_index,
                sample_index: 0,
                issue_ns,
                dispatch_ns: issue_ns,
                complete_ns: elapsed.as_nanos(),
                latency_ns: r.latency.as_nanos(),
                telemetry: Some(query_telemetry(&soc, &r)),
            });
            query_index += 1;
            if elapsed >= next_print {
                println!(
                    "{:>8} {:>10.1} {:>8.2} {:>12.2}",
                    format!("{:.0}s", elapsed.as_secs_f64()),
                    state.thermal.temperature_c(),
                    r.freq_factor,
                    r.latency.as_millis_f64(),
                );
                next_print += SimDuration::from_secs(60);
            }
        }
        trace.validate().expect("hand-built trace holds its invariants");
        println!(
            "-- {} queries, {} throttled ({} throttle events), peak {:.1} degC --",
            trace.span_count(),
            trace.throttled_queries(),
            trace.throttle_events(),
            trace.peak_temperature_c().unwrap_or(0.0),
        );

        // Export the throttled run as a Perfetto timeline.
        let name = format!("thermal {chip}, ambient {ambient:.0} degC");
        let path = format!("out/thermal_{ambient:.0}c.perfetto.json");
        if let Err(e) = std::fs::create_dir_all("out")
            .and_then(|()| std::fs::write(&path, run_perfetto_json(&name, &trace)))
        {
            eprintln!("could not write {path}: {e}");
        } else {
            println!("wrote {path} — open in ui.perfetto.dev");
        }

        // The rules allow a 0-5 minute cooldown between tests.
        println!("-- 5 minute cooldown --");
        state.thermal.cooldown(SimDuration::from_secs(300));
        let r = run_query(&soc, &deployment.graph, &deployment.schedule, &mut state);
        println!(
            "after cooldown: temp {:.1} degC, freq {:.2}, latency {:.2} ms",
            state.thermal.temperature_c(),
            r.freq_factor,
            r.latency.as_millis_f64(),
        );
        println!();
    }
}
