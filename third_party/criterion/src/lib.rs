//! Vendored minimal `criterion` stand-in for offline builds.
//!
//! Keeps the macro/API surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups, [`Bencher::iter`],
//! [`BenchmarkId`]) and reports a median time per iteration on stdout.
//! No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and records elapsed time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how long does one call take?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~2ms per sample, clamped to keep cheap routines bounded.
        let iters = (2_000_000 / once.as_nanos().max(1)).clamp(1, 100_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(id: &str, bencher: &mut Bencher) {
    println!("{id:<56} time: {:>12.3?}", bencher.median());
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        report(&id.id, &mut bencher);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &mut bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
    }
}
