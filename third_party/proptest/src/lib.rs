//! Vendored minimal `proptest` stand-in for offline builds.
//!
//! Runs each property N times against deterministically seeded random
//! inputs — no shrinking, no persistence. Surface: the [`proptest!`] macro
//! with `pat in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! [`prop_assert!`]/[`prop_assert_eq!`], range strategies, and
//! [`collection::vec`].

/// A source of sampled values for property inputs.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut rng::StdRng) -> Self::Value;
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;

    fn sample(&self, rng: &mut rng::StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<T: Clone> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut rng::StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut rng::StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: length uniform in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut super::rng::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` sampled inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Re-exports used by macro expansions in crates that do not themselves
/// depend on `rand`.
pub mod rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Runs `body` once per configured case with a deterministically seeded
/// RNG (macro implementation detail).
#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut rng::StdRng)>(cfg: &test_runner::ProptestConfig, mut body: F) {
    use rng::SeedableRng;
    for case in 0..u64::from(cfg.cases) {
        // Distinct, reproducible seed per case.
        let seed = 0x5EED_CA5E_0000_0000u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = rng::StdRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// Types with a default whole-domain strategy, used for `name: Type`
/// parameters in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value of `Self`.
    fn arbitrary(rng: &mut rng::StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rng::StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rng::StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut rng::StdRng) -> Self {
        use rand::Rng;
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut rng::StdRng) -> Self {
        use rand::Rng;
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

/// Binds one `proptest!` parameter per arm (macro implementation detail):
/// either `pat in strategy` (sampled) or `name: Type` ([`Arbitrary`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Declares property tests: each `pat in strategy` (or `name: Type`)
/// argument is sampled per case and the body runs as a normal `#[test]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::__run_cases(&__cfg, |__rng| {
                    $crate::__proptest_bind!(__rng; $($args)*);
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($args)*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body (alias of `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Common imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<usize> = Vec::new();
        super::__run_cases(&ProptestConfig::with_cases(8), |rng| {
            first.push(Strategy::sample(&(0usize..1000), rng));
        });
        let mut second: Vec<usize> = Vec::new();
        super::__run_cases(&ProptestConfig::with_cases(8), |rng| {
            second.push(Strategy::sample(&(0usize..1000), rng));
        });
        assert_eq!(first, second);
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
