//! Vendored minimal `serde` stand-in for offline builds.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries this API-compatible subset: a JSON-shaped [`Value`] data model,
//! [`Serialize`]/[`Deserialize`] traits over it, and re-exported derive
//! macros (`#[derive(Serialize, Deserialize)]`).
//!
//! Supported shapes: named/tuple/unit structs and enums with unit, tuple
//! and struct variants (externally tagged — `#[serde(...)]` attributes are
//! accepted but ignored). No generics or lifetimes on derived types.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the single data model everything serializes into.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map), so
/// serialization is deterministic and follows declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Value to use when an object field is absent. `Option<T>` overrides
    /// this to `None`; everything else errors.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] by default (field required).
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

/// Looks up `name` in an object's fields and deserializes it (derive
/// helper). Missing fields defer to [`Deserialize::from_missing`].
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing(name),
    }
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new("unsigned value out of range"))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| DeError::new("isize out of range")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = u64::from(*self);
                match i64::try_from(n) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(n),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| DeError::new("negative value for unsigned"))?,
                    Value::UInt(n) => *n,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| DeError::new("usize out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // serde_json serializes non-finite floats as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Only used for small fixed-table types; the leak is bounded.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map key must serialize to a string, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| {
                    Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
