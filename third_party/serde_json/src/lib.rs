//! Vendored minimal `serde_json` stand-in for offline builds.
//!
//! Supports the workspace's surface: [`to_string`], [`to_string_pretty`],
//! [`from_str`] and [`Error`], over the stub `serde` data model.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// A JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the stub data model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty (2-space indented) JSON.
///
/// # Errors
///
/// Never fails for the stub data model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------------

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Shortest round-trip float formatting, with a `.0` suffix for integral
/// values (matching serde_json's "floats stay floats" convention).
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_shapes() {
        let v = Value::Object(vec![
            ("a".to_owned(), Value::Int(-3)),
            ("b".to_owned(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".to_owned(), Value::Float(1.5)),
            ("d".to_owned(), Value::Str("x\"y\\z\n".to_owned())),
            ("e".to_owned(), Value::UInt(u64::MAX)),
        ]);
        let text = to_string(&v).unwrap();
        let parsed: Value = from_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_prints_indented() {
        let v = Value::Object(vec![("k".to_owned(), Value::Array(vec![Value::Int(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 674.372_901, 1e-12, -2.5e300] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{not json}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }
}
