//! Vendored minimal `serde_derive` stand-in for offline builds.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) covering
//! the shapes this workspace derives on: named/tuple/unit structs and
//! enums with unit, tuple and struct variants. Representation is always
//! externally tagged; `#[serde(...)]` attributes are accepted and ignored.
//! Generics, lifetimes and where-clauses are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum ItemKind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the stub `serde::Serialize` (see `third_party/serde`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    gen_serialize(&name, &kind).parse().expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize` (see `third_party/serde`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    gen_deserialize(&name, &kind).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from the token iterator position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> (String, ItemKind) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => (name, ItemKind::UnitStruct),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, ItemKind::UnitStruct),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(&g.stream()).len();
                (name, ItemKind::TupleStruct(arity))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, ItemKind::NamedStruct(parse_named_fields(&g.stream())))
            }
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, ItemKind::Enum(parse_variants(&g.stream())))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items (generics are unsupported)"),
    }
}

/// Splits a token stream on commas that are not nested inside `<...>`
/// (groups are atomic trees, so only angle brackets need depth tracking).
fn split_top_level(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream.clone() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let i = skip_attrs_and_vis(&part, 0);
            match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let i = skip_attrs_and_vis(&part, 0);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, got {other}"),
            };
            let fields = match part.get(i + 1) {
                None => VariantFields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(split_top_level(&g.stream()).len())
                }
                other => panic!("unsupported variant shape: {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(name: &str, kind: &ItemKind) -> String {
    let body = match kind {
        ItemKind::UnitStruct => "::serde::Value::Null".to_owned(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::NamedStruct(fields) => obj_expr(fields, "self."),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_owned()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), {})]),",
                                obj_expr(fields, "")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Value::Object(vec![("f", to_value(&prefix f)), ...])`.
fn obj_expr(fields: &[String], prefix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_owned(), ::serde::Serialize::to_value(&{prefix}{f}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(name: &str, kind: &ItemKind) -> String {
    let body = match kind {
        ItemKind::UnitStruct => format!("Ok({name})"),
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                items.join(" ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let a = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                                     if a.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                items.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                         let (tag, inner) = &o[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::new(format!(\"expected {name}, got {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let _ = v;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
