//! Vendored minimal `rand` stand-in for offline builds.
//!
//! [`rngs::StdRng`] is a deterministic xoshiro256++ generator seeded via
//! SplitMix64 — the exact stream differs from upstream `rand`, but all the
//! workspace needs is a seeded, reproducible, statistically reasonable
//! source. Surface: [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom`].

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample types for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply with a
/// rejection pass to remove modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for all [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
