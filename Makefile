# Developer entry points. `make check` is the full local gate: it must be
# green before every push (the same bar CI holds).

CARGO ?= cargo

.PHONY: check build test clippy golden bless scenarios trace profile bench reproduce clean

## Full gate: release build, tests, warning-free clippy, the
## golden-trace regression suite (plus the examples it ships with), and
## the four-scenario smoke run.
check: build test clippy golden scenarios

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

## Golden-trace regression suite: every v1.0 suite cell locked at 0 ULPs
## against tests/golden/, and every example still builds.
golden:
	$(CARGO) test --release --test golden_suite
	$(CARGO) build --examples

## Re-bless the goldens after an intentional scoring change.
bless:
	BLESS=1 $(CARGO) test --release --test golden_suite

## Smoke-run all four LoadGen scenarios (single-stream, offline, server,
## multi-stream) end to end through the reproduce CLI.
scenarios:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- scenarios

## Regenerate every artifact with per-query tracing; one JSON trace per
## artifact lands in out/trace/.
trace:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- all --trace out/trace

## Tracing plus analysis: per artifact, a Perfetto timeline
## (out/profile/<artifact>.perfetto.json — open in ui.perfetto.dev) and a
## profile report (engine utilization, DVFS residency, energy split).
profile:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- all --profile out/profile

## Serial-vs-parallel suite sweep, the planned-vs-unplanned query hot
## loop, the serial-vs-sweep ablation artifact, the batched lockstep
## executor lane sweep, and the BENCH_query.json / BENCH_ablations.json /
## BENCH_batch.json speedup reports.
bench:
	$(CARGO) bench -p mlperf-bench --bench suite_sweep
	$(CARGO) bench -p mlperf-bench --bench query_hot_loop
	$(CARGO) bench -p mlperf-bench --bench ablation_sweep
	$(CARGO) bench -p mlperf-bench --bench batch_lanes
	$(CARGO) run --release -p mlperf-bench --bin bench_query
	$(CARGO) run --release -p mlperf-bench --bin bench_ablations
	$(CARGO) run --release -p mlperf-bench --bin bench_batch

## Regenerate every paper artifact; writes BENCH_suite.json with
## per-table wall-clock and compile-cache counters.
reproduce:
	$(CARGO) run --release -p mlperf-bench --bin reproduce

clean:
	$(CARGO) clean
