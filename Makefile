# Developer entry points. `make check` is the full local gate: it must be
# green before every push (the same bar CI holds).

CARGO ?= cargo

.PHONY: check build test clippy golden bless scenarios serve-metrics fleet tune trace profile bench reproduce clean

## Full gate: release build, tests, warning-free clippy, the
## golden-trace regression suite (plus the examples it ships with), the
## four-scenario smoke run, the live-/metrics endpoint smoke, and the
## fleet and tuning determinism smokes.
check: build test clippy golden scenarios serve-metrics fleet tune

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

## Golden-trace regression suite: every v1.0 suite cell locked at 0 ULPs
## against tests/golden/, and every example still builds.
golden:
	$(CARGO) test --release --test golden_suite
	$(CARGO) build --examples

## Re-bless the goldens after an intentional scoring change.
bless:
	BLESS=1 $(CARGO) test --release --test golden_suite

## Smoke-run all four LoadGen scenarios (single-stream, offline, server,
## multi-stream) end to end through the reproduce CLI.
scenarios:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- scenarios

## Smoke the live observability endpoint: run the scenario artifact with
## the HTTP server on an ephemeral port, then curl /healthz and /metrics
## and assert the run and pool metric families are being exported.
serve-metrics: build
	@rm -rf out/obs && mkdir -p out/obs
	@target/release/reproduce scenarios \
		--serve 127.0.0.1:0 --serve-addr-file out/obs/addr \
		--serve-hold-ms 5000 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s out/obs/addr ] && break; sleep 0.1; done; \
	if ! [ -s out/obs/addr ]; then echo "serve-metrics: endpoint never bound"; kill $$pid 2>/dev/null; exit 1; fi; \
	addr=$$(cat out/obs/addr); \
	health=$$(curl -fsS --max-time 5 "http://$$addr/healthz") || { echo "serve-metrics: /healthz failed"; kill $$pid 2>/dev/null; exit 1; }; \
	[ "$$health" = "ok" ] || { echo "serve-metrics: unexpected /healthz body: $$health"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS --max-time 5 "http://$$addr/metrics" > out/obs/metrics.prom || { echo "serve-metrics: /metrics failed"; kill $$pid 2>/dev/null; exit 1; }; \
	for family in mlperf_runs_completed_total mlperf_queries_issued_total mlperf_pool_par_map_calls_total mlperf_run_wall_ns mlperf_obs_requests_total; do \
		grep -q "^# TYPE $$family " out/obs/metrics.prom || { echo "serve-metrics: family $$family missing from /metrics"; kill $$pid 2>/dev/null; exit 1; }; \
	done; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	echo "serve-metrics: /healthz + /metrics OK ($$addr)"

## Fleet determinism smoke: run the field-population sweep artifact once
## on one worker and once on the full pool, and hold the bit-reproducibility
## contract as a byte diff — same seed, same report, any worker count.
fleet: build
	@rm -rf out/fleet && mkdir -p out/fleet
	@MLPERF_WORKERS=1 target/release/reproduce fleet > out/fleet/report-w1.txt
	@MLPERF_WORKERS=7 target/release/reproduce fleet > out/fleet/report-w7.txt
	@cmp out/fleet/report-w1.txt out/fleet/report-w7.txt || { echo "fleet: report differs across worker counts"; exit 1; }
	@echo "fleet: report byte-identical across MLPERF_WORKERS=1 and 7"

## Tuning determinism smoke: run the heuristic-vs-optimal gap-table
## artifact once on one worker and once on the full pool, and hold the
## bit-reproducibility contract as a byte diff — every cell is a pure
## function of (chip, backend, model, tuner config).
tune: build
	@rm -rf out/tune && mkdir -p out/tune
	@MLPERF_WORKERS=1 target/release/reproduce tuning > out/tune/report-w1.txt
	@MLPERF_WORKERS=7 target/release/reproduce tuning > out/tune/report-w7.txt
	@cmp out/tune/report-w1.txt out/tune/report-w7.txt || { echo "tune: report differs across worker counts"; exit 1; }
	@echo "tune: report byte-identical across MLPERF_WORKERS=1 and 7"

## Regenerate every artifact with per-query tracing; one JSON trace per
## artifact lands in out/trace/.
trace:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- all --trace out/trace

## Tracing plus analysis: per artifact, a Perfetto timeline
## (out/profile/<artifact>.perfetto.json — open in ui.perfetto.dev) and a
## profile report (engine utilization, DVFS residency, energy split).
profile:
	$(CARGO) run --release -p mlperf-bench --bin reproduce -- all --profile out/profile

## Serial-vs-parallel suite sweep, the planned-vs-unplanned query hot
## loop, the serial-vs-sweep ablation artifact, the batched lockstep
## executor lane sweep, the fleet population sweep, the auto-tuner
## candidate-evaluation and search benches, and the BENCH_query.json /
## BENCH_ablations.json / BENCH_batch.json / BENCH_fleet.json /
## BENCH_tune.json speedup reports.
bench:
	$(CARGO) bench -p mlperf-bench --bench suite_sweep
	$(CARGO) bench -p mlperf-bench --bench query_hot_loop
	$(CARGO) bench -p mlperf-bench --bench ablation_sweep
	$(CARGO) bench -p mlperf-bench --bench batch_lanes
	$(CARGO) bench -p mlperf-bench --bench fleet_throughput
	$(CARGO) bench -p mlperf-bench --bench tune_search
	$(CARGO) run --release -p mlperf-bench --bin bench_query
	$(CARGO) run --release -p mlperf-bench --bin bench_ablations
	$(CARGO) run --release -p mlperf-bench --bin bench_batch
	$(CARGO) run --release -p mlperf-bench --bin bench_fleet
	$(CARGO) run --release -p mlperf-bench --bin bench_tune

## Regenerate every paper artifact; writes BENCH_suite.json with
## per-table wall-clock and compile-cache counters.
reproduce:
	$(CARGO) run --release -p mlperf-bench --bin reproduce

clean:
	$(CARGO) clean
