# Developer entry points. `make check` is the full local gate: it must be
# green before every push (the same bar CI holds).

CARGO ?= cargo

.PHONY: check build test clippy bench reproduce clean

## Full gate: release build, tests, and warning-free clippy.
check: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

## Serial-vs-parallel suite sweep plus the library micro-benches.
bench:
	$(CARGO) bench -p mlperf-bench --bench suite_sweep

## Regenerate every paper artifact; writes BENCH_suite.json with
## per-table wall-clock and compile-cache counters.
reproduce:
	$(CARGO) run --release -p mlperf-bench --bin reproduce

clean:
	$(CARGO) clean
