//! The benchmark harness: runs one (chip, backend, task) combination under
//! the run rules — accuracy mode first, then performance mode, with
//! cooldown intervals — and scores it.

use crate::metrics::metrics;
use crate::sut_impl::{DatasetScale, DeviceSut, Prediction, TaskData};
use crate::task::{BenchmarkDef, Task};
use loadgen::checker::{check_log, Violation};
use loadgen::log::RunLog;
use loadgen::run::{
    run_accuracy, run_offline_scenario_traced, run_single_stream_traced, PerformanceResult,
};
use loadgen::scenario::TestSettings;
use loadgen::trace::RunTrace;
use mobile_backend::backend::{Backend, BackendId, CompileError, Deployment};

use serde::{Deserialize, Serialize};
use soc_sim::battery::{BatterySpec, BatteryState};
use soc_sim::catalog::ChipId;
use soc_sim::soc::Soc;
use soc_sim::time::SimDuration;
use std::sync::Arc;

/// Run-rule environment (paper Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRules {
    /// Room temperature; rules require 20-25 °C.
    pub ambient_c: f64,
    /// Cooldown break between individual tests (rules allow 0-5 minutes).
    pub cooldown: SimDuration,
    /// LoadGen settings (counts, durations, seed).
    pub settings: TestSettings,
    /// Initial battery state of charge, `None` for mains power. The rules
    /// run phones on battery and recommend a full charge "to avoid
    /// entering power-saving mode".
    pub battery_soc: Option<f64>,
}

impl Default for RunRules {
    fn default() -> Self {
        RunRules {
            ambient_c: 22.0,
            cooldown: SimDuration::from_secs(120),
            settings: TestSettings::default(),
            battery_soc: Some(1.0),
        }
    }
}

impl RunRules {
    /// Whether the ambient temperature complies with the rules (20-25 °C).
    #[must_use]
    pub fn ambient_compliant(&self) -> bool {
        (20.0..=25.0).contains(&self.ambient_c)
    }

    /// Scaled-down rules for fast tests (non-compliant by design).
    #[must_use]
    pub fn smoke_test() -> Self {
        RunRules {
            ambient_c: 22.0,
            cooldown: SimDuration::from_secs(10),
            settings: TestSettings::smoke_test(),
            battery_soc: Some(1.0),
        }
    }
}

/// Complete scored result of one benchmark run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkScore {
    /// Benchmark definition (Table 1 row).
    pub def: BenchmarkDef,
    /// Platform.
    pub chip: ChipId,
    /// Code path used.
    pub backend: BackendId,
    /// Numerics of the deployment (Table 2 cell, top).
    pub scheme: quant::Scheme,
    /// Accelerator summary (Table 2 cell, bottom).
    pub accelerator: String,
    /// Measured quality (metric units).
    pub accuracy: f64,
    /// Required minimum quality.
    pub quality_target: f64,
    /// Whether the quality gate passed.
    pub accuracy_passed: bool,
    /// Single-stream performance.
    pub single_stream: PerformanceResult,
    /// Offline performance (when run).
    pub offline: Option<PerformanceResult>,
    /// Run-rule violations found by the submission checker.
    pub violations: Vec<Violation>,
    /// Whether the ambient temperature was rule-compliant.
    pub ambient_compliant: bool,
    /// Energy per single-stream query (joules).
    pub joules_per_query: f64,
    /// Whether the device entered battery power-saving mode during the
    /// run (the hazard the full-charge recommendation avoids).
    pub power_saving_entered: bool,
    /// The unedited performance-run log (shipped with submissions).
    pub log: RunLog,
}

impl BenchmarkScore {
    /// Whether this would be a valid submission (quality gate + rules).
    #[must_use]
    pub fn is_valid_submission(&self) -> bool {
        self.accuracy_passed && self.violations.is_empty() && self.ambient_compliant
    }

    /// Headline single-stream latency in milliseconds (p90).
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.single_stream.score()
    }
}

/// Per-query observability record of one benchmark run: the single-stream
/// span timeline (with per-query SoC telemetry) plus the offline burst
/// when that scenario ran.
///
/// Produced by [`run_benchmark_with_trace`]; purely observational — a
/// traced run scores bit-identically to an untraced one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkTrace {
    /// Platform the run executed on.
    pub chip: ChipId,
    /// Benchmark task (Table 1 row).
    pub task: Task,
    /// Code path used.
    pub backend: BackendId,
    /// Span timeline of the single-stream performance run.
    pub single_stream: RunTrace,
    /// Burst record of the offline run, when one ran.
    pub offline: Option<RunTrace>,
}

impl BenchmarkTrace {
    /// `chip/task/backend` label identifying the benchmark-matrix cell.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{:?}/{}", self.chip, self.task, self.backend)
    }

    /// Queries dispatched while the device was throttled.
    #[must_use]
    pub fn throttled_queries(&self) -> u64 {
        self.single_stream.throttled_queries()
    }

    /// Transitions into throttling along the single-stream timeline.
    #[must_use]
    pub fn throttle_events(&self) -> u64 {
        self.single_stream.throttle_events()
    }

    /// Hottest die temperature observed at any query dispatch.
    #[must_use]
    pub fn peak_temperature_c(&self) -> Option<f64> {
        self.single_stream.peak_temperature_c()
    }

    /// Checks the structural invariants of both contained traces.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, prefixed with the cell label.
    pub fn validate(&self) -> Result<(), String> {
        self.single_stream
            .validate()
            .map_err(|e| format!("{}: single-stream: {e}", self.label()))?;
        if let Some(offline) = &self.offline {
            offline.validate().map_err(|e| format!("{}: offline: {e}", self.label()))?;
        }
        Ok(())
    }
}

/// Scores accuracy-mode predictions with the real metric implementations.
///
/// Predictions are scored *by reference*: the metric entry points are
/// generic over borrowed inputs, so no detection list, label map,
/// transcript, or reconstructed image is cloned on this path. At full
/// dataset scale the prediction buffers run to tens of megabytes per
/// benchmark, and the old clone-per-sample scoring dominated accuracy-mode
/// allocation.
#[must_use]
pub fn score_accuracy(data: &TaskData, predictions: &[(usize, Prediction)]) -> f64 {
    match data {
        TaskData::Classification(d) => {
            let gt: Vec<u32> = predictions.iter().map(|(i, _)| d.label(*i)).collect();
            let pred: Vec<u32> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Class(c) => *c,
                    other => panic!("expected class prediction, got {other:?}"),
                })
                .collect();
            mobile_metrics::accuracy::top1_accuracy(&gt, &pred)
        }
        TaskData::Detection(d) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.objects(*i)).collect();
            let preds: Vec<&Vec<_>> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Detections(v) => v,
                    other => panic!("expected detections, got {other:?}"),
                })
                .collect();
            mobile_metrics::map::coco_map(&gts, &preds)
        }
        TaskData::Segmentation(d, _) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.label_map(*i)).collect();
            let preds: Vec<&_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Map(m) => m,
                    other => panic!("expected label map, got {other:?}"),
                })
                .collect();
            mobile_metrics::miou::benchmark_miou(&gts, &preds)
        }
        TaskData::Qa(d) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.sample(*i).answer).collect();
            let preds: Vec<_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Span(s) => *s,
                    other => panic!("expected answer span, got {other:?}"),
                })
                .collect();
            mobile_metrics::accuracy::squad_scores(&gts, &preds).0
        }
        TaskData::Speech(d) => {
            let gts: Vec<Vec<u32>> =
                predictions.iter().map(|(i, _)| d.utterance(*i).transcript).collect();
            let preds: Vec<&Vec<u32>> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Transcript(t) => t,
                    other => panic!("expected transcript, got {other:?}"),
                })
                .collect();
            1.0 - mobile_metrics::wer::corpus_wer(&gts, &preds)
        }
        TaskData::SuperRes(d, _) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.high_res(*i)).collect();
            let preds: Vec<&_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Reconstruction(img) => img,
                    other => panic!("expected reconstruction, got {other:?}"),
                })
                .collect();
            mobile_metrics::psnr::mean_psnr_db(&gts, &preds, 1.0)
        }
    }
}

/// Runs one benchmark end-to-end: compile, accuracy mode, cooldown,
/// single-stream performance, optional offline — per the test-control
/// order of paper Section 6.1 ("the model runs on the validation set to
/// calculate the accuracy; performance mode follows").
///
/// # Examples
///
/// ```no_run
/// use mlperf_mobile::harness::{run_benchmark, RunRules};
/// use mlperf_mobile::sut_impl::DatasetScale;
/// use mlperf_mobile::task::{suite, SuiteVersion};
/// use mobile_backend::backends::Snpe;
/// use soc_sim::catalog::ChipId;
///
/// let def = &suite(SuiteVersion::V1_0)[0]; // classification
/// let score = run_benchmark(
///     ChipId::Snapdragon888,
///     &Snpe,
///     def,
///     &RunRules::default(),
///     DatasetScale::Full,
///     true,
/// )?;
/// println!("p90 {:.2} ms, accuracy {:.4}", score.latency_ms(), score.accuracy);
/// # Ok::<(), mobile_backend::backend::CompileError>(())
/// ```
///
/// # Errors
///
/// Propagates backend compilation failures.
pub fn run_benchmark(
    chip: ChipId,
    backend: &dyn Backend,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> Result<BenchmarkScore, CompileError> {
    let soc = Arc::new(chip.build());
    let deployment = Arc::new(backend.compile(&def.model.build(), &soc)?);
    Ok(run_benchmark_with(chip, soc, deployment, def, rules, scale, with_offline))
}

/// Runs one benchmark on an already-compiled deployment.
///
/// This is [`run_benchmark`] minus the compile step: the suite runner's
/// compilation cache hands the same `Arc<Deployment>` to every run of a
/// `(chip, backend, model)` triple, so compilation happens once per triple
/// instead of once per run. All mutable state (thermal, energy, battery)
/// is created fresh inside this function and the simulated inference is
/// seeded from `rules.settings.seed`, so a run over a cached deployment is
/// bit-identical to one over a freshly compiled deployment.
#[must_use]
pub fn run_benchmark_with(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> BenchmarkScore {
    run_benchmark_inner(chip, soc, deployment, def, rules, scale, with_offline, false).0
}

/// Runs one benchmark on an already-compiled deployment with per-query
/// tracing enabled, returning the score together with the run trace.
///
/// Tracing is purely observational: the returned score is bit-identical
/// to what [`run_benchmark_with`] produces for the same inputs (the
/// golden suite and the determinism tests both lock this down).
#[must_use]
pub fn run_benchmark_with_trace(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> (BenchmarkScore, BenchmarkTrace) {
    let (score, trace) =
        run_benchmark_inner(chip, soc, deployment, def, rules, scale, with_offline, true);
    (score, trace.expect("traced run always yields a trace"))
}

#[allow(clippy::too_many_arguments)]
fn run_benchmark_inner(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
    traced: bool,
) -> (BenchmarkScore, Option<BenchmarkTrace>) {
    let backend_id = deployment.backend;
    let scheme = deployment.scheme;
    let accelerator = deployment.accelerator_summary(&soc);
    let mut sut = DeviceSut::new(soc, deployment, def, scale, rules.settings.seed, rules.ambient_c);
    if let Some(soc_level) = rules.battery_soc {
        sut.state.battery = Some(BatteryState::new(BatterySpec::default(), soc_level));
    }
    let dataset_len = sut.data.len();

    // 1. Accuracy mode over the whole validation set.
    let mut accuracy_log = RunLog::new();
    let acc = run_accuracy(&mut sut, dataset_len, &rules.settings, &mut accuracy_log);
    let accuracy = score_accuracy(&sut.data, &acc.predictions);

    // 2. Cooldown before the performance run.
    sut.state.thermal.cooldown(rules.cooldown);

    // 3. Single-stream performance.
    let mut log = RunLog::new();
    let energy_before = sut.state.energy.total_joules();
    let mut ss_trace = RunTrace::new();
    let single_stream = run_single_stream_traced(
        &mut sut,
        dataset_len,
        &rules.settings,
        &mut log,
        traced.then_some(&mut ss_trace),
    );
    let joules_per_query =
        (sut.state.energy.total_joules() - energy_before) / single_stream.queries as f64;

    // 4. Offline, after another cooldown.
    let mut offline_trace = RunTrace::new();
    let offline = if with_offline {
        sut.state.thermal.cooldown(rules.cooldown);
        Some(run_offline_scenario_traced(
            &mut sut,
            dataset_len,
            &rules.settings,
            &mut log,
            traced.then_some(&mut offline_trace),
        ))
    } else {
        None
    };

    metrics().record_run(single_stream.queries);
    let trace = if traced {
        let trace = BenchmarkTrace {
            chip,
            task: def.task,
            backend: backend_id,
            single_stream: ss_trace,
            offline: with_offline.then_some(offline_trace),
        };
        metrics().record_throttling(trace.throttled_queries(), trace.throttle_events());
        Some(trace)
    } else {
        None
    };

    let violations = check_log(&log, &rules.settings);
    let power_saving_entered = sut
        .state
        .battery
        .as_ref()
        .is_some_and(soc_sim::battery::BatteryState::power_saving);
    let quality_target = def.quality_target();
    let score = BenchmarkScore {
        def: def.clone(),
        chip,
        backend: backend_id,
        scheme,
        accelerator,
        accuracy,
        quality_target,
        accuracy_passed: accuracy >= quality_target,
        single_stream,
        offline,
        violations,
        ambient_compliant: rules.ambient_compliant(),
        joules_per_query,
        power_saving_entered,
        log,
    };
    (score, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{suite, SuiteVersion};
    use mobile_backend::backends::Neuron;

    #[test]
    fn classification_benchmark_end_to_end() {
        let def = &suite(SuiteVersion::V1_0)[0];
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(256),
            true,
        )
        .unwrap();
        assert!(score.accuracy_passed, "accuracy {} vs target {}", score.accuracy, score.quality_target);
        assert!(score.latency_ms() > 1.0 && score.latency_ms() < 10.0);
        assert!(score.offline.unwrap().throughput_fps > 100.0);
        assert!(score.joules_per_query > 0.0);
    }

    #[test]
    fn hot_ambient_flagged() {
        let def = &suite(SuiteVersion::V1_0)[0];
        let mut rules = RunRules::smoke_test();
        rules.ambient_c = 40.0; // out of the 20-25 °C window
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &rules,
            DatasetScale::Reduced(64),
            false,
        )
        .unwrap();
        assert!(!score.ambient_compliant);
        assert!(!score.is_valid_submission());
    }

    #[test]
    fn smoke_runs_fail_real_rules() {
        // Smoke-scale runs violate query-count/duration rules — the
        // checker must notice, so nobody can submit shortened runs.
        let def = &suite(SuiteVersion::V1_0)[0];
        let mut rules = RunRules::smoke_test();
        rules.settings = TestSettings::default();
        rules.settings.min_query_count = 1024;
        // Deliberately cut the duration requirement into the run settings
        // mismatch: run with smoke settings but check against defaults.
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(64),
            false,
        )
        .unwrap();
        let violations = check_log(&score.log, &rules.settings);
        assert!(!violations.is_empty());
    }
}
