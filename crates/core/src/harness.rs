//! The benchmark harness: runs one (chip, backend, task) combination under
//! the run rules — accuracy mode first, then performance mode, with
//! cooldown intervals — and scores it.

use crate::metrics::metrics;
use crate::sut_impl::{
    DatasetScale, DeviceSut, PerfDeviceSut, PlannedDeployment, Prediction, TaskData,
};
use crate::task::{BenchmarkDef, Task};
use loadgen::checker::{check_log, Violation};
use loadgen::log::RunLog;
use loadgen::run::{
    find_max_qps, find_max_streams, run_accuracy_advance, run_accuracy_parallel,
    run_multi_stream_traced, run_offline_scenario_traced, run_server_traced,
    run_single_stream_traced, PerformanceResult,
};
use loadgen::scenario::TestSettings;
use loadgen::trace::RunTrace;
use mobile_backend::backend::{Backend, BackendId, CompileError, Deployment};

use serde::{Deserialize, Serialize};
use soc_sim::battery::{BatterySpec, BatteryState};
use soc_sim::catalog::ChipId;
use soc_sim::soc::Soc;
use soc_sim::time::SimDuration;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Run-rule environment (paper Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRules {
    /// Room temperature; rules require 20-25 °C.
    pub ambient_c: f64,
    /// Cooldown break between individual tests (rules allow 0-5 minutes).
    pub cooldown: SimDuration,
    /// LoadGen settings (counts, durations, seed).
    pub settings: TestSettings,
    /// Initial battery state of charge, `None` for mains power. The rules
    /// run phones on battery and recommend a full charge "to avoid
    /// entering power-saving mode".
    pub battery_soc: Option<f64>,
}

impl Default for RunRules {
    fn default() -> Self {
        RunRules {
            ambient_c: 22.0,
            cooldown: SimDuration::from_secs(120),
            settings: TestSettings::default(),
            battery_soc: Some(1.0),
        }
    }
}

impl RunRules {
    /// Whether the ambient temperature complies with the rules (20-25 °C).
    #[must_use]
    pub fn ambient_compliant(&self) -> bool {
        (20.0..=25.0).contains(&self.ambient_c)
    }

    /// Scaled-down rules for fast tests (non-compliant by design).
    #[must_use]
    pub fn smoke_test() -> Self {
        RunRules {
            ambient_c: 22.0,
            cooldown: SimDuration::from_secs(10),
            settings: TestSettings::smoke_test(),
            battery_soc: Some(1.0),
        }
    }
}

/// Which performance scenarios run after the mandatory single-stream leg
/// (paper Section 4: single-stream always runs; offline, server, and
/// multi-stream are per-benchmark options).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioMix {
    /// Run the offline throughput scenario.
    pub offline: bool,
    /// Run the server scenario: binary-search the maximum Poisson offered
    /// load whose p90 latency stays under the per-model bound.
    pub server: bool,
    /// Run the multi-stream scenario: search the widest frame that still
    /// fits the fixed frame interval.
    pub multi_stream: bool,
}

impl ScenarioMix {
    /// The historical two-scenario mix: single-stream plus optionally
    /// offline.
    #[must_use]
    pub const fn offline_only(offline: bool) -> Self {
        ScenarioMix { offline, server: false, multi_stream: false }
    }

    /// All four scenarios.
    #[must_use]
    pub const fn all() -> Self {
        ScenarioMix { offline: true, server: true, multi_stream: true }
    }
}

/// The server scenario's latency bound as a multiple of the measured
/// single-stream p90: a device meets the bound while queueing delay stays
/// within two extra service times of the knee.
pub const SERVER_LATENCY_BOUND_X: u64 = 3;

/// How far past the device's zero-queueing capacity the QPS search
/// brackets: the knee always lies below `capacity x this factor`.
const SERVER_SEARCH_HEADROOM: f64 = 2.0;

/// Scored outcome of the server scenario's offered-load search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerScore {
    /// Headline: the largest offered load (queries/s) whose p90 latency
    /// met the bound; `0.0` if even the lightest probe missed it.
    pub max_qps: f64,
    /// The per-model latency bound the search held probes to (ns) —
    /// [`SERVER_LATENCY_BOUND_X`] times the measured single-stream p90.
    pub target_latency_ns: u64,
    /// Probe runs the bisection executed.
    pub probes: u64,
    /// The winning probe's full performance result (arrival-to-completion
    /// latency statistics, queueing included).
    pub result: PerformanceResult,
}

/// Scored outcome of the multi-stream scenario's stream-count search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStreamScore {
    /// Headline: the widest frame (streams per frame) whose p90 frame
    /// latency fits the frame interval; `0` if one stream already misses.
    pub streams: u64,
    /// The fixed frame interval the search held probes to (ns).
    pub interval_ns: u64,
    /// Probe runs the search executed.
    pub probes: u64,
    /// The winning probe's full performance result (frame-latency
    /// statistics: each frame scores the max over its lanes).
    pub result: PerformanceResult,
}

/// Complete scored result of one benchmark run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkScore {
    /// Benchmark definition (Table 1 row).
    pub def: BenchmarkDef,
    /// Platform.
    pub chip: ChipId,
    /// Code path used.
    pub backend: BackendId,
    /// Numerics of the deployment (Table 2 cell, top).
    pub scheme: quant::Scheme,
    /// Accelerator summary (Table 2 cell, bottom).
    pub accelerator: String,
    /// Measured quality (metric units).
    pub accuracy: f64,
    /// Required minimum quality.
    pub quality_target: f64,
    /// Whether the quality gate passed.
    pub accuracy_passed: bool,
    /// Single-stream performance.
    pub single_stream: PerformanceResult,
    /// Offline performance (when run).
    pub offline: Option<PerformanceResult>,
    /// Server-scenario search outcome (when run).
    pub server: Option<ServerScore>,
    /// Multi-stream-scenario search outcome (when run).
    pub multi_stream: Option<MultiStreamScore>,
    /// Run-rule violations found by the submission checker.
    pub violations: Vec<Violation>,
    /// Whether the ambient temperature was rule-compliant.
    pub ambient_compliant: bool,
    /// Energy per single-stream query (joules).
    pub joules_per_query: f64,
    /// Average device power over the single-stream performance run
    /// (watts): the energy-meter delta across the run divided by the
    /// run's simulated duration.
    pub average_power_w: f64,
    /// Whether the device entered battery power-saving mode during the
    /// run (the hazard the full-charge recommendation avoids).
    pub power_saving_entered: bool,
    /// The unedited performance-run log (shipped with submissions).
    pub log: RunLog,
}

impl BenchmarkScore {
    /// Whether this would be a valid submission (quality gate + rules).
    #[must_use]
    pub fn is_valid_submission(&self) -> bool {
        self.accuracy_passed && self.violations.is_empty() && self.ambient_compliant
    }

    /// Headline single-stream latency in milliseconds (p90).
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.single_stream.score()
    }

    /// Headline server metric: max passing offered load (queries/s), when
    /// the scenario ran.
    #[must_use]
    pub fn server_qps(&self) -> Option<f64> {
        self.server.as_ref().map(|s| s.max_qps)
    }

    /// Headline multi-stream metric: max passing stream count, when the
    /// scenario ran.
    #[must_use]
    pub fn multi_stream_streams(&self) -> Option<u64> {
        self.multi_stream.as_ref().map(|s| s.streams)
    }
}

/// One engine's share of a run's activity, attributed from the per-stage
/// telemetry in the single-stream span timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineActivity {
    /// Engine name ("npu0", "gpu", ...).
    pub engine: String,
    /// The engine's active power while computing (watts).
    pub active_power_w: f64,
    /// Total time the engine spent computing across the run (ns).
    pub busy_ns: u64,
    /// `busy_ns` over the run's simulated duration.
    pub busy_fraction: f64,
    /// Energy attributed to this engine: active power x busy time (J).
    pub joules: f64,
}

/// Run-end energy accounting stamped into a [`BenchmarkTrace`]: the
/// [`soc_sim::power::EnergyMeter`] totals surfaced per run, plus a
/// per-engine attribution derived from the span timeline.
///
/// `total_joules` is the meter's exact accumulator at run end (a unit test
/// ties it to [`soc_sim::power::EnergyMeter::total_joules`] at 0 ULPs);
/// the per-engine joules are a decomposition of the *active* energy only —
/// rail/idle power and inter-engine transfer time belong to no single
/// engine and are not attributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEnergy {
    /// The energy meter's total at run end (accuracy + performance +
    /// offline), in joules — exactly `EnergyMeter::total_joules`.
    pub total_joules: f64,
    /// The meter's recorded busy time at run end (ns).
    pub busy_ns: u64,
    /// Energy-meter delta across the single-stream performance run (J).
    pub single_stream_joules: f64,
    /// Energy per single-stream query (J) — same value as
    /// [`BenchmarkScore::joules_per_query`].
    pub joules_per_query: f64,
    /// Average power over the single-stream run (W) — same value as
    /// [`BenchmarkScore::average_power_w`].
    pub average_power_w: f64,
    /// Per-engine activity attribution over the single-stream run, in
    /// first-appearance order along the timeline.
    pub engines: Vec<EngineActivity>,
}

impl RunEnergy {
    /// Captures run-end energy accounting from the device state and the
    /// single-stream span timeline.
    ///
    /// `ss_joules` and `ss_duration` describe the single-stream
    /// performance window; `state` is read at run end, so `total_joules`
    /// is the meter's accumulator verbatim.
    #[must_use]
    pub fn capture(
        soc: &Soc,
        state: &soc_sim::soc::SocState,
        ss_trace: &RunTrace,
        ss_joules: f64,
        ss_duration: SimDuration,
        queries: u64,
    ) -> RunEnergy {
        let duration_ns = ss_duration.as_nanos();
        // Aggregate per-engine busy time from the per-stage telemetry, in
        // first-appearance order (deterministic — no map iteration).
        let mut names: Vec<&str> = Vec::new();
        let mut busy: Vec<u64> = Vec::new();
        for span in &ss_trace.spans {
            let Some(t) = &span.telemetry else { continue };
            for stage in &t.stages {
                match names.iter().position(|n| *n == stage.engine.as_str()) {
                    Some(i) => busy[i] += stage.compute_ns,
                    None => {
                        names.push(&stage.engine);
                        busy.push(stage.compute_ns);
                    }
                }
            }
        }
        let engines = names
            .iter()
            .zip(&busy)
            .map(|(name, &busy_ns)| {
                let active_power_w = soc
                    .engines
                    .iter()
                    .find(|e| e.name == **name)
                    .map_or(0.0, |e| e.active_power_w);
                EngineActivity {
                    engine: (*name).to_owned(),
                    active_power_w,
                    busy_ns,
                    busy_fraction: if duration_ns > 0 {
                        busy_ns as f64 / duration_ns as f64
                    } else {
                        0.0
                    },
                    joules: active_power_w * (busy_ns as f64 / 1e9),
                }
            })
            .collect();
        RunEnergy {
            total_joules: state.energy.total_joules(),
            busy_ns: state.energy.busy_time().as_nanos(),
            single_stream_joules: ss_joules,
            joules_per_query: if queries > 0 { ss_joules / queries as f64 } else { 0.0 },
            average_power_w: if duration_ns > 0 {
                ss_joules / ss_duration.as_secs_f64()
            } else {
                0.0
            },
            engines,
        }
    }
}

/// Per-query observability record of one benchmark run: the single-stream
/// span timeline (with per-query SoC telemetry) plus the offline burst
/// when that scenario ran.
///
/// Produced by [`run_benchmark_with_trace`]; purely observational — a
/// traced run scores bit-identically to an untraced one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkTrace {
    /// Platform the run executed on.
    pub chip: ChipId,
    /// Benchmark task (Table 1 row).
    pub task: Task,
    /// Code path used.
    pub backend: BackendId,
    /// Span timeline of the single-stream performance run.
    pub single_stream: RunTrace,
    /// Burst record of the offline run, when one ran.
    pub offline: Option<RunTrace>,
    /// Span timeline of the server scenario's winning probe (overlapping
    /// spans; dispatch may lag arrival), when the scenario ran.
    pub server: Option<RunTrace>,
    /// Span timeline of the multi-stream scenario's winning probe, when
    /// the scenario ran.
    pub multi_stream: Option<RunTrace>,
    /// Run-end energy accounting (meter totals + per-engine attribution).
    pub energy: RunEnergy,
}

impl BenchmarkTrace {
    /// `chip/task/backend` label identifying the benchmark-matrix cell.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{:?}/{}", self.chip, self.task, self.backend)
    }

    /// Queries dispatched while the device was throttled.
    #[must_use]
    pub fn throttled_queries(&self) -> u64 {
        self.single_stream.throttled_queries()
    }

    /// Transitions into throttling along the single-stream timeline.
    #[must_use]
    pub fn throttle_events(&self) -> u64 {
        self.single_stream.throttle_events()
    }

    /// Hottest die temperature observed at any query dispatch.
    #[must_use]
    pub fn peak_temperature_c(&self) -> Option<f64> {
        self.single_stream.peak_temperature_c()
    }

    /// Checks the structural invariants of both contained traces.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, prefixed with the cell label.
    pub fn validate(&self) -> Result<(), String> {
        self.single_stream
            .validate()
            .map_err(|e| format!("{}: single-stream: {e}", self.label()))?;
        if let Some(offline) = &self.offline {
            offline.validate().map_err(|e| format!("{}: offline: {e}", self.label()))?;
        }
        if let Some(server) = &self.server {
            server.validate().map_err(|e| format!("{}: server: {e}", self.label()))?;
        }
        if let Some(ms) = &self.multi_stream {
            ms.validate().map_err(|e| format!("{}: multi-stream: {e}", self.label()))?;
        }
        Ok(())
    }
}

/// Scores accuracy-mode predictions with the real metric implementations.
///
/// Predictions are scored *by reference*: the metric entry points are
/// generic over borrowed inputs, so no detection list, label map,
/// transcript, or reconstructed image is cloned on this path. At full
/// dataset scale the prediction buffers run to tens of megabytes per
/// benchmark, and the old clone-per-sample scoring dominated accuracy-mode
/// allocation.
#[must_use]
pub fn score_accuracy(data: &TaskData, predictions: &[(usize, Prediction)]) -> f64 {
    match data {
        TaskData::Classification(d) => {
            let gt: Vec<u32> = predictions.iter().map(|(i, _)| d.label(*i)).collect();
            let pred: Vec<u32> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Class(c) => *c,
                    other => panic!("expected class prediction, got {other:?}"),
                })
                .collect();
            mobile_metrics::accuracy::top1_accuracy(&gt, &pred)
        }
        TaskData::Detection(d) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.objects(*i)).collect();
            let preds: Vec<&Vec<_>> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Detections(v) => v,
                    other => panic!("expected detections, got {other:?}"),
                })
                .collect();
            mobile_metrics::map::coco_map(&gts, &preds)
        }
        TaskData::Segmentation(d, _) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.label_map(*i)).collect();
            let preds: Vec<&_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Map(m) => m,
                    other => panic!("expected label map, got {other:?}"),
                })
                .collect();
            mobile_metrics::miou::benchmark_miou(&gts, &preds)
        }
        TaskData::Qa(d) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.sample(*i).answer).collect();
            let preds: Vec<_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Span(s) => *s,
                    other => panic!("expected answer span, got {other:?}"),
                })
                .collect();
            mobile_metrics::accuracy::squad_scores(&gts, &preds).0
        }
        TaskData::Speech(d) => {
            let gts: Vec<Vec<u32>> =
                predictions.iter().map(|(i, _)| d.utterance(*i).transcript).collect();
            let preds: Vec<&Vec<u32>> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Transcript(t) => t,
                    other => panic!("expected transcript, got {other:?}"),
                })
                .collect();
            1.0 - mobile_metrics::wer::corpus_wer(&gts, &preds)
        }
        TaskData::SuperRes(d, _) => {
            let gts: Vec<_> = predictions.iter().map(|(i, _)| d.high_res(*i)).collect();
            let preds: Vec<&_> = predictions
                .iter()
                .map(|(_, p)| match p {
                    Prediction::Reconstruction(img) => img,
                    other => panic!("expected reconstruction, got {other:?}"),
                })
                .collect();
            mobile_metrics::psnr::mean_psnr_db(&gts, &preds, 1.0)
        }
    }
}

/// Runs one benchmark end-to-end: compile, accuracy mode, cooldown,
/// single-stream performance, optional offline — per the test-control
/// order of paper Section 6.1 ("the model runs on the validation set to
/// calculate the accuracy; performance mode follows").
///
/// # Examples
///
/// ```no_run
/// use mlperf_mobile::harness::{run_benchmark, RunRules};
/// use mlperf_mobile::sut_impl::DatasetScale;
/// use mlperf_mobile::task::{suite, SuiteVersion};
/// use mobile_backend::backends::Snpe;
/// use soc_sim::catalog::ChipId;
///
/// let def = &suite(SuiteVersion::V1_0)[0]; // classification
/// let score = run_benchmark(
///     ChipId::Snapdragon888,
///     &Snpe,
///     def,
///     &RunRules::default(),
///     DatasetScale::Full,
///     true,
/// )?;
/// println!("p90 {:.2} ms, accuracy {:.4}", score.latency_ms(), score.accuracy);
/// # Ok::<(), mobile_backend::backend::CompileError>(())
/// ```
///
/// # Errors
///
/// Propagates backend compilation failures.
pub fn run_benchmark(
    chip: ChipId,
    backend: &dyn Backend,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> Result<BenchmarkScore, CompileError> {
    run_benchmark_scenarios(chip, backend, def, rules, scale, ScenarioMix::offline_only(with_offline))
}

/// [`run_benchmark`] with an explicit scenario mix: any combination of
/// offline, server, and multi-stream after the mandatory single-stream
/// leg.
///
/// # Errors
///
/// Propagates backend compilation failures.
pub fn run_benchmark_scenarios(
    chip: ChipId,
    backend: &dyn Backend,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    mix: ScenarioMix,
) -> Result<BenchmarkScore, CompileError> {
    let soc = Arc::new(chip.build());
    let deployment = Arc::new(backend.compile(&def.model.build(), &soc)?);
    let planned = PlannedDeployment::compile(&soc, deployment);
    Ok(run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, false).0)
}

/// Runs one benchmark on an already-compiled deployment.
///
/// This is [`run_benchmark`] minus the compile step: the suite runner's
/// compilation cache hands the same `Arc<Deployment>` to every run of a
/// `(chip, backend, model)` triple, so compilation happens once per triple
/// instead of once per run. All mutable state (thermal, energy, battery)
/// is created fresh inside this function and the simulated inference is
/// seeded from `rules.settings.seed`, so a run over a cached deployment is
/// bit-identical to one over a freshly compiled deployment.
#[must_use]
pub fn run_benchmark_with(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> BenchmarkScore {
    let planned = PlannedDeployment::compile(&soc, deployment);
    let mix = ScenarioMix::offline_only(with_offline);
    run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, false).0
}

/// Runs one benchmark on an already-planned deployment — the fastest
/// path: compilation *and* query-plan lowering both happened earlier (the
/// suite runner's caches), so this function goes straight to execution.
///
/// Planning is invisible in results: scores are bit-identical to
/// [`run_benchmark_with`] and [`run_benchmark`] for the same inputs
/// (`tests/parallel_determinism.rs` proves planned == unplanned ==
/// serial).
#[must_use]
pub fn run_benchmark_planned(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> BenchmarkScore {
    let mix = ScenarioMix::offline_only(with_offline);
    run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, false).0
}

/// [`run_benchmark_planned`] with an explicit scenario mix.
#[must_use]
pub fn run_benchmark_planned_scenarios(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    mix: ScenarioMix,
) -> BenchmarkScore {
    run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, false).0
}

/// [`run_benchmark_planned_scenarios`] with per-query tracing enabled,
/// returning the score together with the run trace (which carries one
/// [`RunTrace`] per scenario that ran).
#[must_use]
pub fn run_benchmark_planned_scenarios_with_trace(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    mix: ScenarioMix,
) -> (BenchmarkScore, BenchmarkTrace) {
    let (score, trace) = run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, true);
    (score, trace.expect("traced run always yields a trace"))
}

/// [`run_benchmark_planned`] with per-query tracing enabled, returning
/// the score together with the run trace.
#[must_use]
pub fn run_benchmark_planned_with_trace(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> (BenchmarkScore, BenchmarkTrace) {
    let mix = ScenarioMix::offline_only(with_offline);
    let (score, trace) = run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, true);
    (score, trace.expect("traced run always yields a trace"))
}

/// Runs one benchmark on an already-compiled deployment with per-query
/// tracing enabled, returning the score together with the run trace.
///
/// Tracing is purely observational: the returned score is bit-identical
/// to what [`run_benchmark_with`] produces for the same inputs (the
/// golden suite and the determinism tests both lock this down).
#[must_use]
pub fn run_benchmark_with_trace(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> (BenchmarkScore, BenchmarkTrace) {
    let planned = PlannedDeployment::compile(&soc, deployment);
    let mix = ScenarioMix::offline_only(with_offline);
    let (score, trace) = run_benchmark_inner(chip, soc, planned, def, rules, scale, mix, true);
    (score, trace.expect("traced run always yields a trace"))
}

/// Runs the single-stream performance scenario over K lockstep device
/// lanes of one deployment, returning one [`PerformanceResult`] per lane.
///
/// This is the batched counterpart of the single-stream leg of
/// [`run_benchmark_planned`]: one pass over the compiled op arrays
/// advances every in-flight lane per query step
/// ([`soc_sim::plan_batch::BatchPlan`]), which is what makes fleet-scale
/// population sweeps tractable. Lane `k`'s result and log are
/// byte-identical to a scalar [`loadgen::run::run_single_stream`] over
/// the equivalent [`DeviceSut`] (the `batch_smoke` golden test diffs the
/// bytes). Records the `plan_batch_runs` / `plan_batch_lanes_executed`
/// counters in the [`metrics`] registry.
///
/// # Panics
///
/// Panics if the dataset is empty or `logs` does not provide one log per
/// lane.
pub fn run_single_stream_lanes(
    sut: &mut crate::sut_impl::BatchDeviceSut,
    dataset_len: usize,
    settings: &TestSettings,
    logs: &mut [RunLog],
) -> Vec<PerformanceResult> {
    let before = sut.lanes_executed();
    let results = loadgen::run::run_single_stream_batched(sut, dataset_len, settings, logs);
    metrics().record_plan_batch_run(sut.lanes_executed() - before);
    results
}

/// Accuracy-mode scores keyed by everything the prediction + scoring
/// pipeline reads, shared process-wide across chips and backends.
static ACCURACY_SCORES: OnceLock<Mutex<HashMap<String, f64>>> = OnceLock::new();

/// Produces the accuracy score for this run, reusing a previously
/// computed one when the whole prediction pipeline's input is identical.
///
/// The returned score, the device-state evolution, and the log records
/// are all byte-identical to [`loadgen::run::run_accuracy`] +
/// [`score_accuracy`]: a hit
/// replays only the stateful advance half ([`run_accuracy_advance`]), a
/// miss synthesizes predictions across threads with order-preserving
/// assembly ([`run_accuracy_parallel`]). Hits and misses feed the
/// sweep-cache counters in the [`metrics`] registry.
fn cached_accuracy_score(
    sut: &mut DeviceSut,
    def: &BenchmarkDef,
    scale: DatasetScale,
    dataset_len: usize,
    rules: &RunRules,
    log: &mut RunLog,
) -> f64 {
    // The scale discriminator is part of the key even though the length
    // already is: super-resolution datasets change *resolution* (not just
    // length) between Full and Reduced, so equal lengths can still mean
    // different data.
    let key = format!(
        "{:?}|{:?}|{:?}|{dataset_len}|{}|{:016x}",
        def.task,
        def.model,
        scale,
        rules.settings.seed,
        sut.target_quality.to_bits()
    );
    let cache = ACCURACY_SCORES.get_or_init(|| Mutex::new(HashMap::new()));
    let cached = cache.lock().unwrap().get(&key).copied();
    if let Some(score) = cached {
        metrics().record_sweep_hit();
        let _ = run_accuracy_advance(sut, dataset_len, &rules.settings, log);
        return score;
    }
    metrics().record_sweep_miss();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let acc = run_accuracy_parallel(sut, dataset_len, &rules.settings, log, threads);
    let score = score_accuracy(&sut.data, &acc.predictions);
    cache.lock().unwrap().insert(key, score);
    score
}

#[allow(clippy::too_many_arguments)]
fn run_benchmark_inner(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    mix: ScenarioMix,
    traced: bool,
) -> (BenchmarkScore, Option<BenchmarkTrace>) {
    let backend_id = planned.deployment.backend;
    let scheme = planned.deployment.scheme;
    let accelerator = planned.deployment.accelerator_summary(&soc);
    // Host-side self-observability: the cell label feeds the `/runs`
    // board either way, the span only materializes while recording is on.
    // None of this touches simulated time or scores.
    let run_started = std::time::Instant::now();
    let cell_label = format!("{chip}/{:?}/{backend_id}", def.task);
    let _cell_span = crate::obs::span::span(crate::obs::span::Phase::Cell, || cell_label.clone());
    // The searches mint fresh probe devices from the shared plans; keep a
    // handle before the planned deployment moves into the device SUT
    // (clone = a few `Arc` bumps).
    let probe_plans = planned.clone();
    let probe_soc = Arc::clone(&soc);
    let mut sut =
        DeviceSut::with_plans(soc, planned, def, scale, rules.settings.seed, rules.ambient_c);
    if let Some(soc_level) = rules.battery_soc {
        sut.state.battery = Some(BatteryState::new(BatterySpec::default(), soc_level));
    }
    let dataset_len = sut.data.len();

    // 1. Accuracy mode over the whole validation set. The prediction and
    // scoring half is a pure function of (task, model, scale, dataset
    // length, seed, quality target) — notably *not* of the chip or
    // backend — so a process-wide sweep cache shares the score across
    // deployments while the device-state half still advances every query
    // (thermals must carry into the cooldown and performance phases
    // exactly as in an uncached run).
    let mut accuracy_log = RunLog::new();
    let accuracy = {
        let _span =
            crate::obs::span::span(crate::obs::span::Phase::Calibrate, || cell_label.clone());
        cached_accuracy_score(&mut sut, def, scale, dataset_len, rules, &mut accuracy_log)
    };

    // 2. Cooldown before the performance run.
    sut.state.thermal.cooldown(rules.cooldown);

    // 3. Single-stream performance.
    let exec_span =
        crate::obs::span::span(crate::obs::span::Phase::Execute, || cell_label.clone());
    let mut log = RunLog::new();
    let energy_before = sut.state.energy.total_joules();
    let mut ss_trace = RunTrace::new();
    let single_stream = run_single_stream_traced(
        &mut sut,
        dataset_len,
        &rules.settings,
        &mut log,
        traced.then_some(&mut ss_trace),
    );
    let ss_joules = sut.state.energy.total_joules() - energy_before;
    let joules_per_query = ss_joules / single_stream.queries as f64;
    let average_power_w = ss_joules / single_stream.duration.as_secs_f64();

    // 4. Offline, after another cooldown.
    let mut offline_trace = RunTrace::new();
    let offline = if mix.offline {
        sut.state.thermal.cooldown(rules.cooldown);
        Some(run_offline_scenario_traced(
            &mut sut,
            dataset_len,
            &rules.settings,
            &mut log,
            traced.then_some(&mut offline_trace),
        ))
    } else {
        None
    };
    drop(exec_span);

    // 5. Server: bisect the maximum Poisson offered load whose p90
    // arrival-to-completion latency meets the per-model bound (3x the
    // single-stream p90 just measured). Every probe runs on a fresh
    // device so one candidate's thermal history cannot leak into the
    // next; the winning probe's log is spliced into the submission log so
    // the checker validates that segment alongside the others.
    let ss_p90_ns = single_stream.latency.as_ref().map_or(0, |l| l.p90_ns).max(1);
    let mut server_trace = None;
    let server = if mix.server {
        let _span = crate::obs::span::span(crate::obs::span::Phase::SearchProbe, || {
            format!("server {cell_label}")
        });
        let target = SimDuration::from_nanos(ss_p90_ns.saturating_mul(SERVER_LATENCY_BOUND_X));
        // Zero-queueing capacity of the device: concurrency lanes each
        // retiring a query per p90. The knee sits below it; bracket past
        // it so the bisection always straddles.
        let capacity =
            rules.settings.server_concurrency.max(1) as f64 / (ss_p90_ns as f64 / 1e9);
        let search = find_max_qps(
            || PerfDeviceSut::new(Arc::clone(&probe_soc), &probe_plans, rules.ambient_c),
            dataset_len,
            &rules.settings,
            target,
            capacity * SERVER_SEARCH_HEADROOM,
        );
        log.append(&search.log);
        if traced {
            // Re-run the winning probe traced: same seed, same fresh
            // device, so the result must reproduce exactly.
            let mut t = RunTrace::new();
            let mut probe = PerfDeviceSut::new(Arc::clone(&probe_soc), &probe_plans, rules.ambient_c);
            let mut probe_log = RunLog::new();
            let replay = run_server_traced(
                &mut probe,
                dataset_len,
                search.result.offered_qps.expect("server result carries its offered load"),
                &rules.settings,
                &mut probe_log,
                Some(&mut t),
            );
            assert_eq!(replay, search.result, "traced server replay must be bit-identical");
            server_trace = Some(t);
        }
        Some(ServerScore {
            max_qps: search.max_passing_qps,
            target_latency_ns: search.target_latency.as_nanos(),
            probes: search.probes,
            result: search.result,
        })
    } else {
        None
    };

    // 6. Multi-stream: search the widest frame whose p90 frame latency
    // fits the fixed frame interval, again on fresh probe devices.
    let mut multi_stream_trace = None;
    let multi_stream = if mix.multi_stream {
        let _span = crate::obs::span::span(crate::obs::span::Phase::SearchProbe, || {
            format!("multi-stream {cell_label}")
        });
        let search = find_max_streams(
            || PerfDeviceSut::new(Arc::clone(&probe_soc), &probe_plans, rules.ambient_c),
            dataset_len,
            &rules.settings,
        );
        log.append(&search.log);
        if traced {
            let mut t = RunTrace::new();
            let mut probe = PerfDeviceSut::new(Arc::clone(&probe_soc), &probe_plans, rules.ambient_c);
            let mut probe_log = RunLog::new();
            let replay = run_multi_stream_traced(
                &mut probe,
                dataset_len,
                search.result.streams.expect("multi-stream result carries its width"),
                &rules.settings,
                &mut probe_log,
                Some(&mut t),
            );
            assert_eq!(replay, search.result, "traced multi-stream replay must be bit-identical");
            multi_stream_trace = Some(t);
        }
        Some(MultiStreamScore {
            streams: search.streams,
            interval_ns: search.interval.as_nanos(),
            probes: search.probes,
            result: search.result,
        })
    } else {
        None
    };

    metrics().record_run(single_stream.queries);
    let run_wall = run_started.elapsed();
    crate::obs::pool::run_wall_hist()
        .record(run_wall.as_nanos().min(u128::from(u64::MAX)) as u64);
    crate::obs::pool::runs_board().push(crate::obs::pool::RunEntry {
        label: cell_label,
        wall_ms: run_wall.as_secs_f64() * 1e3,
        queries: single_stream.queries,
    });
    let trace = if traced {
        let energy = RunEnergy::capture(
            &sut.soc,
            &sut.state,
            &ss_trace,
            ss_joules,
            single_stream.duration,
            single_stream.queries,
        );
        let trace = BenchmarkTrace {
            chip,
            task: def.task,
            backend: backend_id,
            single_stream: ss_trace,
            offline: mix.offline.then_some(offline_trace),
            server: server_trace,
            multi_stream: multi_stream_trace,
            energy,
        };
        metrics().record_throttling(trace.throttled_queries(), trace.throttle_events());
        Some(trace)
    } else {
        None
    };

    let violations = check_log(&log, &rules.settings);
    let power_saving_entered = sut
        .state
        .battery
        .as_ref()
        .is_some_and(soc_sim::battery::BatteryState::power_saving);
    let quality_target = def.quality_target();
    let score = BenchmarkScore {
        def: def.clone(),
        chip,
        backend: backend_id,
        scheme,
        accelerator,
        accuracy,
        quality_target,
        accuracy_passed: accuracy >= quality_target,
        single_stream,
        offline,
        server,
        multi_stream,
        violations,
        ambient_compliant: rules.ambient_compliant(),
        joules_per_query,
        average_power_w,
        power_saving_entered,
        log,
    };
    (score, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{suite, SuiteVersion};
    use mobile_backend::backends::Neuron;

    #[test]
    fn classification_benchmark_end_to_end() {
        let def = &suite(SuiteVersion::V1_0)[0];
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(256),
            true,
        )
        .unwrap();
        assert!(score.accuracy_passed, "accuracy {} vs target {}", score.accuracy, score.quality_target);
        assert!(score.latency_ms() > 1.0 && score.latency_ms() < 10.0);
        assert!(score.offline.unwrap().throughput_fps > 100.0);
        assert!(score.joules_per_query > 0.0);
    }

    #[test]
    fn hot_ambient_flagged() {
        let def = &suite(SuiteVersion::V1_0)[0];
        let mut rules = RunRules::smoke_test();
        rules.ambient_c = 40.0; // out of the 20-25 °C window
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &rules,
            DatasetScale::Reduced(64),
            false,
        )
        .unwrap();
        assert!(!score.ambient_compliant);
        assert!(!score.is_valid_submission());
    }

    #[test]
    fn trace_energy_matches_meter_exactly() {
        // The trace's energy accounting is the meter's accumulator
        // verbatim — 0 ULPs — and the per-engine attribution is sane.
        let def = &suite(SuiteVersion::V1_0)[0];
        let soc = Arc::new(ChipId::Dimensity1100.build());
        let deployment =
            Arc::new(Neuron.compile(&def.model.build(), &soc).unwrap());
        let rules = RunRules::smoke_test();
        let mut sut = DeviceSut::new(
            Arc::clone(&soc),
            Arc::clone(&deployment),
            def,
            DatasetScale::Reduced(64),
            rules.settings.seed,
            rules.ambient_c,
        );
        let mut log = RunLog::new();
        let mut ss_trace = RunTrace::new();
        let before = sut.state.energy.total_joules();
        let dataset_len = sut.data.len();
        let perf = run_single_stream_traced(
            &mut sut,
            dataset_len,
            &rules.settings,
            &mut log,
            Some(&mut ss_trace),
        );
        let ss_joules = sut.state.energy.total_joules() - before;
        let energy = RunEnergy::capture(
            &sut.soc,
            &sut.state,
            &ss_trace,
            ss_joules,
            perf.duration,
            perf.queries,
        );
        assert_eq!(
            energy.total_joules.to_bits(),
            sut.state.energy.total_joules().to_bits(),
            "trace energy must be the meter accumulator verbatim"
        );
        assert_eq!(energy.busy_ns, sut.state.energy.busy_time().as_nanos());
        assert!(energy.single_stream_joules > 0.0);
        assert!(!energy.engines.is_empty());
        for e in &energy.engines {
            assert!(e.busy_fraction > 0.0 && e.busy_fraction <= 1.0, "{e:?}");
            assert!(e.joules >= 0.0);
        }
        // Attributed active energy never exceeds the metered single-stream
        // total (rail/idle/transfer power belongs to no engine).
        let attributed: f64 = energy.engines.iter().map(|e| e.joules).sum();
        assert!(attributed <= energy.single_stream_joules * (1.0 + 1e-9));
    }

    #[test]
    fn smoke_runs_fail_real_rules() {
        // Smoke-scale runs violate query-count/duration rules — the
        // checker must notice, so nobody can submit shortened runs.
        let def = &suite(SuiteVersion::V1_0)[0];
        let mut rules = RunRules::smoke_test();
        rules.settings = TestSettings::default();
        rules.settings.min_query_count = 1024;
        // Deliberately cut the duration requirement into the run settings
        // mismatch: run with smoke settings but check against defaults.
        let score = run_benchmark(
            ChipId::Dimensity1100,
            &Neuron,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(64),
            false,
        )
        .unwrap();
        let violations = check_log(&score.log, &rules.settings);
        assert!(!violations.is_empty());
    }
}
