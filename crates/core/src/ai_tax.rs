//! End-to-end measurement: the "AI tax" of pre- and post-processing.
//!
//! Paper Appendix E: "user-perceived latency includes often includes pre-
//! and post-processing overheads, and it has been shown to be
//! non-negligible (Buch et al., 2021a). In the future, we may consider
//! extending the scope of measurements." This module implements that
//! extension: a cost model for the stages *outside* the model graph
//! (image decode/resize/normalize, tokenization, output formatting),
//! always executed by the CPU, plus a SUT wrapper that folds them into
//! every query.

use crate::sut_impl::{DeviceSut, Prediction};
use crate::task::Task;
use loadgen::sut::SystemUnderTest;
use serde::{Deserialize, Serialize};
use soc_sim::soc::Soc;
use soc_sim::time::SimDuration;

/// Estimated CPU work (flops-equivalent) of the host-side stages per task.
///
/// Derived from the reference preprocessing pipelines (paper Section 4.1):
/// bilinear resize ~ 12 ops/output value, crop/copy ~ 2, normalize ~ 2,
/// JPEG-ish decode ~ 25 ops/pixel; tokenization ~ 2k ops/token;
/// post-processing covers argmax/top-k or output assembly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostStages {
    /// Pre-processing work in flops-equivalent.
    pub preprocess_flops: u64,
    /// Post-processing work in flops-equivalent.
    pub postprocess_flops: u64,
}

/// Host-stage cost model per task.
#[must_use]
pub fn host_stages(task: Task) -> HostStages {
    let px = |h: usize, w: usize| (h * w * 3) as u64;
    match task {
        Task::ImageClassification => HostStages {
            // Decode + resize(256) + crop(224) + normalize.
            preprocess_flops: px(256, 256) * 25 + px(224, 224) * 16,
            // Top-1 over 1001 logits.
            postprocess_flops: 2 * 1001,
        },
        Task::ObjectDetection => HostStages {
            preprocess_flops: px(480, 640) * 25 + px(320, 320) * 14,
            // Box list formatting (NMS itself is in the graph).
            postprocess_flops: 100 * 64,
        },
        Task::ImageSegmentation => HostStages {
            preprocess_flops: px(512, 683) * 25 + px(512, 512) * 14,
            // Per-pixel argmax over 32 classes.
            postprocess_flops: (512 * 512 * 32) as u64,
        },
        Task::QuestionAnswering => HostStages {
            // WordPiece tokenization of the passage + question.
            preprocess_flops: 384 * 2_000,
            // Span argmax + detokenization.
            postprocess_flops: 384 * 64,
        },
        Task::SpeechRecognition => HostStages {
            // Log-mel feature extraction: FFT-ish ~ 5k ops per frame.
            preprocess_flops: 300 * 5_000,
            postprocess_flops: 25 * 2_000, // decode lattice to words
        },
        Task::SuperResolution => HostStages {
            preprocess_flops: px(360, 640) * 25,
            // Clamp + format the 720p output.
            postprocess_flops: px(720, 1280) * 4,
        },
    }
}

/// Simulated duration of the host stages on the SoC's CPU.
///
/// Host code is scalar-ish: we charge it at the CPU's FP32 rate with the
/// CPU's generic efficiency.
#[must_use]
pub fn host_stage_time(task: Task, soc: &Soc) -> (SimDuration, SimDuration) {
    let cpu = soc.engine(soc.cpu());
    let rate = cpu.peak_ops(nn_graph::DataType::F32) * 0.25;
    let stages = host_stages(task);
    (
        SimDuration::from_secs_f64(stages.preprocess_flops as f64 / rate),
        SimDuration::from_secs_f64(stages.postprocess_flops as f64 / rate),
    )
}

/// A SUT wrapper measuring end-to-end latency: host pre-processing + model
/// inference + host post-processing per query.
#[derive(Debug)]
pub struct EndToEndSut {
    inner: DeviceSut,
    task: Task,
    preprocess: SimDuration,
    postprocess: SimDuration,
}

impl EndToEndSut {
    /// Wraps a device SUT for the given task.
    #[must_use]
    pub fn new(inner: DeviceSut, task: Task) -> Self {
        let (preprocess, postprocess) = host_stage_time(task, &inner.soc);
        EndToEndSut { inner, task, preprocess, postprocess }
    }

    /// The wrapped device SUT.
    #[must_use]
    pub fn inner(&self) -> &DeviceSut {
        &self.inner
    }

    /// Host overhead added to every query.
    #[must_use]
    pub fn host_overhead(&self) -> SimDuration {
        self.preprocess + self.postprocess
    }

    /// The fraction of end-to-end latency spent outside the model for a
    /// given model-only latency.
    #[must_use]
    pub fn tax_fraction(&self, model_latency: SimDuration) -> f64 {
        let host = self.host_overhead().as_secs_f64();
        host / (host + model_latency.as_secs_f64())
    }
}

impl SystemUnderTest for EndToEndSut {
    type Response = Prediction;

    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, Prediction) {
        let (model, response) = self.inner.issue_query(sample_index);
        (self.preprocess + model + self.postprocess, response)
    }

    fn description(&self) -> String {
        format!("{} (end-to-end, {})", self.inner.description(), self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut_impl::DatasetScale;
    use crate::task::{suite, SuiteVersion};
    use mobile_backend::backend::Backend;
    use mobile_backend::backends::Neuron;
    use soc_sim::catalog::ChipId;

    fn e2e(task_index: usize) -> (EndToEndSut, SimDuration) {
        let soc = ChipId::Dimensity1100.build();
        let def = &suite(SuiteVersion::V1_0)[task_index];
        let deployment = Neuron.compile(&def.model.build(), &soc).unwrap();
        let mut inner =
            DeviceSut::new(soc, deployment, def, DatasetScale::Reduced(32), 1, 22.0);
        let (model_latency, _) = inner.issue_query(0);
        (EndToEndSut::new(inner, def.task), model_latency)
    }

    #[test]
    fn end_to_end_exceeds_model_only() {
        let (mut sut, model_latency) = e2e(0);
        let (total, _) = sut.issue_query(0);
        assert!(total > model_latency);
        assert_eq!(total, model_latency + sut.host_overhead());
    }

    #[test]
    fn classification_tax_is_non_negligible() {
        // Buch et al. (cited by the paper): the AI tax is non-negligible —
        // for a ~2 ms classifier, host stages are several percent.
        let (sut, model_latency) = e2e(0);
        let tax = sut.tax_fraction(model_latency);
        assert!(
            (0.02..0.60).contains(&tax),
            "classification tax {tax:.3} should be a visible fraction"
        );
    }

    #[test]
    fn tax_shrinks_for_heavy_models() {
        let (cls_sut, cls_lat) = e2e(0);
        let (seg_sut, seg_lat) = e2e(2);
        assert!(
            cls_sut.tax_fraction(cls_lat) > seg_sut.tax_fraction(seg_lat),
            "relative tax must fall as model time grows"
        );
    }

    #[test]
    fn every_task_has_host_stages() {
        let soc = ChipId::Snapdragon888.build();
        for task in Task::ALL.into_iter().chain(Task::EXTENSIONS) {
            let (pre, post) = host_stage_time(task, &soc);
            assert!(pre > SimDuration::ZERO, "{task} preprocess");
            assert!(post > SimDuration::ZERO, "{task} postprocess");
        }
    }
}
