//! Result validation and audit (paper Section 6.2).
//!
//! "Post submission, all of the results are independently audited... To
//! verify results, we build the vendor-specific app, install it on the
//! device (in the factory-reset state), and reproduce the latency and/or
//! throughput numbers, along with accuracy. The results are valid if our
//! numbers are within 5% of the submitted scores."

use crate::harness::{run_benchmark, RunRules};
use crate::sut_impl::DatasetScale;
use crate::task::{suite, SuiteVersion, Task};
use loadgen::checker::check_log;
use loadgen::log::RunLog;
use mobile_backend::backend::BackendId;
use mobile_backend::registry::create;
use mobile_data::calibration_set::is_approved_set;
use nn_graph::Graph;
use quant::equivalence::check_equivalence;
use serde::{Deserialize, Serialize};
use soc_sim::catalog::ChipId;
use std::fmt;

/// Tolerance of the reproduction check.
pub const AUDIT_TOLERANCE: f64 = 0.05;

/// Everything a submitter ships for one benchmark entry.
#[derive(Debug, Clone)]
pub struct SubmissionPackage {
    /// Platform the result was measured on.
    pub chip: ChipId,
    /// Suite version.
    pub version: SuiteVersion,
    /// Task submitted.
    pub task: Task,
    /// Code path used.
    pub backend: BackendId,
    /// Claimed single-stream p90 latency (ms).
    pub claimed_latency_ms: f64,
    /// Claimed offline throughput (FPS), when the submission includes the
    /// offline scenario.
    pub claimed_offline_fps: Option<f64>,
    /// Claimed accuracy (metric units).
    pub claimed_accuracy: f64,
    /// The unedited performance log.
    pub log: RunLog,
    /// The deployed (possibly optimized) model graph, for equivalence
    /// review.
    pub deployed_graph: Graph,
    /// Calibration sample indices the submitter claims to have used.
    pub calibration_indices: Vec<usize>,
    /// Size of the dataset the calibration set was drawn from.
    pub calibration_dataset_len: usize,
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditFinding {
    /// The run log violates the rules.
    LogViolation(String),
    /// The deployed model is not equivalent to the reference.
    ModelNotEquivalent(String),
    /// A non-approved calibration set was used.
    UnapprovedCalibration,
    /// Reproduced latency deviates more than the tolerance.
    LatencyMismatch {
        /// Claimed score (ms).
        claimed_ms: f64,
        /// Reproduced score (ms).
        reproduced_ms: f64,
    },
    /// Reproduced accuracy deviates more than the tolerance.
    AccuracyMismatch {
        /// Claimed accuracy.
        claimed: f64,
        /// Reproduced accuracy.
        reproduced: f64,
    },
    /// Reproduced offline throughput deviates more than the tolerance.
    ThroughputMismatch {
        /// Claimed FPS.
        claimed_fps: f64,
        /// Reproduced FPS.
        reproduced_fps: f64,
    },
    /// The claimed accuracy is below the quality target.
    QualityGateFailed {
        /// Claimed accuracy.
        claimed: f64,
        /// Required target.
        target: f64,
    },
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::LogViolation(v) => write!(f, "log violation: {v}"),
            AuditFinding::ModelNotEquivalent(e) => write!(f, "model equivalence: {e}"),
            AuditFinding::UnapprovedCalibration => write!(f, "unapproved calibration set"),
            AuditFinding::LatencyMismatch { claimed_ms, reproduced_ms } => write!(
                f,
                "latency {claimed_ms:.2}ms not reproduced (got {reproduced_ms:.2}ms)"
            ),
            AuditFinding::AccuracyMismatch { claimed, reproduced } => {
                write!(f, "accuracy {claimed:.4} not reproduced (got {reproduced:.4})")
            }
            AuditFinding::ThroughputMismatch { claimed_fps, reproduced_fps } => write!(
                f,
                "offline {claimed_fps:.1} FPS not reproduced (got {reproduced_fps:.1} FPS)"
            ),
            AuditFinding::QualityGateFailed { claimed, target } => {
                write!(f, "accuracy {claimed:.4} below target {target:.4}")
            }
        }
    }
}

/// Outcome of auditing one submission.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Findings (empty = clean).
    pub findings: Vec<AuditFinding>,
    /// The auditor's reproduced latency (ms).
    pub reproduced_latency_ms: f64,
    /// The auditor's reproduced accuracy.
    pub reproduced_accuracy: f64,
}

impl AuditReport {
    /// Whether the submission is valid.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audits a submission: log compliance, model equivalence, calibration-set
/// legality, and independent reproduction on a factory-reset device.
///
/// `rules`/`scale` configure the auditor's reproduction run and must match
/// the submitter's environment (the published run rules).
#[must_use]
pub fn audit(package: &SubmissionPackage, rules: &RunRules, scale: DatasetScale) -> AuditReport {
    let mut findings = Vec::new();

    // 1. Log compliance.
    for v in check_log(&package.log, &rules.settings) {
        findings.push(AuditFinding::LogViolation(v.to_string()));
    }

    // 2. Model equivalence against the frozen reference.
    let def = suite(package.version)
        .into_iter()
        .find(|d| d.task == package.task)
        .expect("every task has a definition");
    let reference = def.model.build();
    if let Err(e) = check_equivalence(&reference, &package.deployed_graph) {
        findings.push(AuditFinding::ModelNotEquivalent(e.to_string()));
    }

    // 3. Calibration-set legality.
    if !package.calibration_indices.is_empty()
        && !is_approved_set(
            rules.settings.seed,
            package.calibration_dataset_len,
            &package.calibration_indices,
        )
    {
        findings.push(AuditFinding::UnapprovedCalibration);
    }

    // 4. Independent reproduction (factory-reset device = fresh state),
    // including the offline scenario when the submission claims one.
    let backend = create(package.backend);
    let with_offline = package.claimed_offline_fps.is_some();
    let (reproduced_latency_ms, reproduced_accuracy, reproduced_fps) =
        match run_benchmark(package.chip, backend.as_ref(), &def, rules, scale, with_offline) {
            Ok(score) => (
                score.latency_ms(),
                score.accuracy,
                score.offline.as_ref().map(|o| o.throughput_fps),
            ),
            Err(e) => {
                findings.push(AuditFinding::ModelNotEquivalent(format!(
                    "reproduction failed to compile: {e}"
                )));
                (f64::NAN, f64::NAN, None)
            }
        };
    if let (Some(claimed_fps), Some(got_fps)) = (package.claimed_offline_fps, reproduced_fps) {
        let dev = (claimed_fps - got_fps).abs() / got_fps.max(1e-9);
        if dev > AUDIT_TOLERANCE {
            findings.push(AuditFinding::ThroughputMismatch {
                claimed_fps,
                reproduced_fps: got_fps,
            });
        }
    }

    if reproduced_latency_ms.is_finite() {
        let dev = (package.claimed_latency_ms - reproduced_latency_ms).abs()
            / reproduced_latency_ms.max(1e-9);
        if dev > AUDIT_TOLERANCE {
            findings.push(AuditFinding::LatencyMismatch {
                claimed_ms: package.claimed_latency_ms,
                reproduced_ms: reproduced_latency_ms,
            });
        }
        let acc_dev = (package.claimed_accuracy - reproduced_accuracy).abs()
            / reproduced_accuracy.max(1e-9);
        if acc_dev > AUDIT_TOLERANCE {
            findings.push(AuditFinding::AccuracyMismatch {
                claimed: package.claimed_accuracy,
                reproduced: reproduced_accuracy,
            });
        }
    }

    if package.claimed_accuracy < def.quality_target() {
        findings.push(AuditFinding::QualityGateFailed {
            claimed: package.claimed_accuracy,
            target: def.quality_target(),
        });
    }

    AuditReport { findings, reproduced_latency_ms, reproduced_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::submission_backend;
    use mobile_data::calibration_set::approved_calibration_indices;

    fn honest_package() -> (SubmissionPackage, RunRules, DatasetScale) {
        let rules = RunRules::smoke_test();
        let scale = DatasetScale::Reduced(128);
        let chip = ChipId::Dimensity1100;
        let version = SuiteVersion::V1_0;
        let task = Task::ImageClassification;
        let def = suite(version).into_iter().find(|d| d.task == task).unwrap();
        let backend_id = submission_backend(chip, version, task);
        let backend = create(backend_id);
        let score = run_benchmark(chip, backend.as_ref(), &def, &rules, scale, false).unwrap();
        let deployment = backend.compile(&def.model.build(), &chip.build()).unwrap();
        let package = SubmissionPackage {
            chip,
            version,
            task,
            backend: backend_id,
            claimed_latency_ms: score.latency_ms(),
            claimed_offline_fps: None,
            claimed_accuracy: score.accuracy,
            log: score.log.clone(),
            deployed_graph: deployment.graph,
            calibration_indices: approved_calibration_indices(rules.settings.seed, 50_000, 500),
            calibration_dataset_len: 50_000,
        };
        (package, rules, scale)
    }

    #[test]
    fn honest_submission_passes_audit() {
        let (package, rules, scale) = honest_package();
        let report = audit(&package, &rules, scale);
        assert!(report.is_valid(), "findings: {:?}", report.findings);
    }

    #[test]
    fn inflated_latency_caught() {
        let (mut package, rules, scale) = honest_package();
        package.claimed_latency_ms *= 0.5; // claim 2x faster than reality
        let report = audit(&package, &rules, scale);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::LatencyMismatch { .. })));
    }

    #[test]
    fn pruned_model_caught() {
        let (mut package, rules, scale) = honest_package();
        // Swap in a *different* (smaller) deployed model.
        package.deployed_graph =
            nn_graph::models::ModelId::MobileDetSsd.build();
        let report = audit(&package, &rules, scale);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::ModelNotEquivalent(_))));
    }

    #[test]
    fn rogue_calibration_caught() {
        let (mut package, rules, scale) = honest_package();
        package.calibration_indices = (0..500).collect(); // hand-picked set
        let report = audit(&package, &rules, scale);
        assert!(report.findings.contains(&AuditFinding::UnapprovedCalibration));
    }
}
