//! Suite extensions (paper Appendix E): speech recognition and
//! super-resolution.
//!
//! "Expanding the benchmark suite is an obvious area of improvement...
//! Examples include additional vision tasks, such as super-resolution, as
//! well as on-device speech recognition. Speech RNN-T is in the works."
//! These tasks are implemented end-to-end with the same machinery as the
//! core suite — model, dataset, metric, quality gate, harness — but kept
//! out of [`crate::task::suite`] so the published Table 1 stays faithful.

use crate::task::{suite, BenchmarkDef, SuiteVersion, Task};
use nn_graph::models::ModelId;

/// The extension benchmark definitions.
///
/// Quality gates follow the paper's accuracy-first philosophy (targets are
/// fractions of the FP32 reference, all >= 93%):
/// - speech: FP32 word accuracy 92.5% (7.5% WER), gate 93% of FP32;
/// - super-resolution: FP32 PSNR 34 dB, gate 97% of FP32 (33 dB).
#[must_use]
pub fn extension_defs() -> Vec<BenchmarkDef> {
    vec![
        BenchmarkDef {
            task: Task::SpeechRecognition,
            model: ModelId::MobileRnnt,
            dataset: "LibriSpeech dev (synthetic)".to_owned(),
            fp32_quality: 0.925,
            target_fraction: 0.93,
        },
        BenchmarkDef {
            task: Task::SuperResolution,
            model: ModelId::EdsrMobile,
            dataset: "DIV2K x2 (synthetic)".to_owned(),
            fp32_quality: 34.0,
            target_fraction: 0.97,
        },
    ]
}

/// The extended suite: the published version-specific suite plus the two
/// extension tasks — what a future round might run.
#[must_use]
pub fn extended_suite(version: SuiteVersion) -> Vec<BenchmarkDef> {
    let mut defs = suite(version);
    defs.extend(extension_defs());
    defs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark, RunRules};
    use crate::sut_impl::DatasetScale;
    use mobile_backend::backends::{Enn, Snpe};
    use soc_sim::catalog::ChipId;

    #[test]
    fn extended_suite_has_six_tasks() {
        let s = extended_suite(SuiteVersion::V1_0);
        assert_eq!(s.len(), 6);
        assert!(s.iter().any(|d| d.task == Task::SpeechRecognition));
        assert!(s.iter().any(|d| d.task == Task::SuperResolution));
        // Extension gates respect the accuracy-first rule (>= 93% FP32).
        for d in extension_defs() {
            assert!(d.target_fraction >= 0.93, "{:?}", d.task);
        }
    }

    #[test]
    fn speech_benchmark_end_to_end() {
        let def = &extension_defs()[0];
        let score = run_benchmark(
            ChipId::Exynos2100,
            &Enn,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(200),
            false,
        )
        .unwrap();
        assert!(
            score.accuracy_passed,
            "word accuracy {:.4} vs target {:.4}",
            score.accuracy, score.quality_target
        );
        // LSTMs are unsupported on the NPU: like MobileBERT, speech lands
        // on the GPU at FP16 (the Insight 5 mechanism).
        assert_eq!(score.scheme, quant::Scheme::Fp16, "speech should be FP16");
        assert!(score.accelerator.contains("GPU"), "on {}", score.accelerator);
        // Heavy model: latency in the tens of ms.
        assert!(score.latency_ms() > 10.0, "{:.1} ms", score.latency_ms());
    }

    #[test]
    fn super_resolution_benchmark_end_to_end() {
        let def = &extension_defs()[1];
        let score = run_benchmark(
            ChipId::Snapdragon888,
            &Snpe,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(24),
            false,
        )
        .unwrap();
        assert!(
            score.accuracy_passed,
            "PSNR {:.2} dB vs target {:.2} dB",
            score.accuracy, score.quality_target
        );
        // Conv-dominated: stays INT8 on the accelerator...
        assert!(score.scheme.is_quantized());
        assert!(score.accelerator.contains("HTA"), "on {}", score.accelerator);
        // ...and is the heaviest workload in the repo.
        let seg = run_benchmark(
            ChipId::Snapdragon888,
            &Snpe,
            &suite(SuiteVersion::V1_0)[2],
            &RunRules::smoke_test(),
            DatasetScale::Reduced(24),
            false,
        )
        .unwrap();
        assert!(score.latency_ms() > seg.latency_ms(), "SR must out-weigh segmentation");
    }

    #[test]
    fn speech_quality_gate_behaves_like_nlp() {
        // INT8 PTQ on the recurrent model is borderline; FP16 is safe —
        // the extension reproduces the Insight 5 pattern.
        use quant::{nominal_retention, Scheme, Sensitivity};
        let def = &extension_defs()[0];
        let s = Sensitivity::for_model(def.model);
        let int8 = def.fp32_quality
            * nominal_retention(Scheme::ptq_default(nn_graph::DataType::I8), s);
        let fp16 = def.fp32_quality * nominal_retention(Scheme::Fp16, s);
        assert!(fp16 >= def.quality_target());
        // INT8 clears the gate but with a thin margin (< 2 points).
        assert!(int8 - def.quality_target() < 0.02);
    }
}
