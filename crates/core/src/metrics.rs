//! Process-wide metrics registry and trace collection.
//!
//! Every layer of the measurement stack reports here: the
//! [`CompileCache`][crate::runner::CompileCache] reports hit/miss
//! counters, the [`SuiteRunner`][crate::runner::SuiteRunner] reports
//! per-spec wall-clock, and the harness reports run/query counts plus
//! thermal-throttle statistics extracted from run traces. A
//! [`MetricsSnapshot`] taken before and after a workload yields the delta
//! attributable to it — the `reproduce --trace` flag uses exactly this to
//! annotate each artifact.
//!
//! Recording is lock-free for counters (relaxed atomics) and never feeds
//! back into the simulation, so instrumented runs stay bit-identical to
//! uninstrumented ones.

use crate::harness::BenchmarkTrace;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Wall-clock spent executing one run spec (one benchmark-matrix cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecTiming {
    /// `chip/task/backend` label of the spec.
    pub label: String,
    /// Host wall-clock the run took, in milliseconds.
    pub wall_ms: f64,
}

/// A point-in-time copy of every registry counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Deployment lookups answered from a compile cache.
    pub compile_hits: usize,
    /// Deployment lookups that triggered a compile.
    pub compile_misses: usize,
    /// Query-plan lookups answered from a plan cache.
    pub plan_hits: usize,
    /// Query-plan lookups that triggered a plan compilation.
    pub plan_misses: usize,
    /// Batched single-stream runs completed through the lockstep plan
    /// executor.
    pub plan_batch_runs: usize,
    /// Lane-queries executed by the batched plan executor (K lanes per
    /// step count K).
    pub plan_batch_lanes_executed: u64,
    /// Fleet devices fully simulated (sampled, executed or replayed,
    /// and scored) by the fleet executor.
    pub fleet_devices_simulated: u64,
    /// Fleet lane-queries that shared another lane's op-array walk
    /// (dispatch-frequency bits deduplicated within a wave step).
    pub fleet_lanes_deduped: u64,
    /// Sweep-engine lookups (accuracy scores, delta re-lowerings,
    /// steady-state replays) answered from a sweep cache.
    pub sweep_hits: usize,
    /// Sweep-engine lookups that had to do the full computation.
    pub sweep_misses: usize,
    /// Benchmark runs completed (accuracy + performance flows).
    pub runs_completed: usize,
    /// Performance queries issued across all runs.
    pub queries_issued: u64,
    /// Queries dispatched while the device was throttled (traced runs
    /// only — untraced runs don't observe per-query DVFS state).
    pub throttled_queries: u64,
    /// Transitions into throttling along traced span timelines.
    pub throttle_events: u64,
    /// Tuned-schedule lookups answered from the tuned compile cache.
    pub tuned_hits: usize,
    /// Tuned-schedule lookups that ran the auto-tuner search.
    pub tuned_misses: usize,
    /// Complete schedule candidates exactly evaluated by the auto-tuner.
    pub tuner_candidates: u64,
    /// Partial assignments eliminated by the tuner's admissible bound.
    pub tuner_pruned: u64,
}

impl MetricsSnapshot {
    /// The counter deltas accumulated since `earlier` was taken.
    ///
    /// Uses saturating arithmetic so a stale baseline can never underflow.
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            compile_hits: self.compile_hits.saturating_sub(earlier.compile_hits),
            compile_misses: self.compile_misses.saturating_sub(earlier.compile_misses),
            plan_hits: self.plan_hits.saturating_sub(earlier.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(earlier.plan_misses),
            plan_batch_runs: self.plan_batch_runs.saturating_sub(earlier.plan_batch_runs),
            plan_batch_lanes_executed: self
                .plan_batch_lanes_executed
                .saturating_sub(earlier.plan_batch_lanes_executed),
            fleet_devices_simulated: self
                .fleet_devices_simulated
                .saturating_sub(earlier.fleet_devices_simulated),
            fleet_lanes_deduped: self.fleet_lanes_deduped.saturating_sub(earlier.fleet_lanes_deduped),
            sweep_hits: self.sweep_hits.saturating_sub(earlier.sweep_hits),
            sweep_misses: self.sweep_misses.saturating_sub(earlier.sweep_misses),
            runs_completed: self.runs_completed.saturating_sub(earlier.runs_completed),
            queries_issued: self.queries_issued.saturating_sub(earlier.queries_issued),
            throttled_queries: self.throttled_queries.saturating_sub(earlier.throttled_queries),
            throttle_events: self.throttle_events.saturating_sub(earlier.throttle_events),
            tuned_hits: self.tuned_hits.saturating_sub(earlier.tuned_hits),
            tuned_misses: self.tuned_misses.saturating_sub(earlier.tuned_misses),
            tuner_candidates: self.tuner_candidates.saturating_sub(earlier.tuner_candidates),
            tuner_pruned: self.tuner_pruned.saturating_sub(earlier.tuner_pruned),
        }
    }
}

/// The process-wide registry. Obtain it via [`metrics`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    compile_hits: AtomicUsize,
    compile_misses: AtomicUsize,
    plan_hits: AtomicUsize,
    plan_misses: AtomicUsize,
    plan_batch_runs: AtomicUsize,
    plan_batch_lanes_executed: AtomicU64,
    fleet_devices_simulated: AtomicU64,
    fleet_lanes_deduped: AtomicU64,
    sweep_hits: AtomicUsize,
    sweep_misses: AtomicUsize,
    runs_completed: AtomicUsize,
    queries_issued: AtomicU64,
    throttled_queries: AtomicU64,
    throttle_events: AtomicU64,
    tuned_hits: AtomicUsize,
    tuned_misses: AtomicUsize,
    tuner_candidates: AtomicU64,
    tuner_pruned: AtomicU64,
    spec_wall: Mutex<Vec<SpecTiming>>,
}

impl MetricsRegistry {
    /// Records one compile-cache hit.
    pub fn record_compile_hit(&self) {
        self.compile_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one compile-cache miss (a real compile).
    pub fn record_compile_miss(&self) {
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one plan-cache hit.
    pub fn record_plan_hit(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one plan-cache miss (a real plan compilation).
    pub fn record_plan_miss(&self) {
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed batched single-stream run and the
    /// lane-queries it executed through the lockstep plan executor.
    pub fn record_plan_batch_run(&self, lanes_executed: u64) {
        self.plan_batch_runs.fetch_add(1, Ordering::Relaxed);
        self.plan_batch_lanes_executed.fetch_add(lanes_executed, Ordering::Relaxed);
    }

    /// Records one processed fleet shard: the devices it scored and the
    /// lane-queries whose op-array walk was deduplicated against another
    /// lane in the same wave step.
    pub fn record_fleet_shard(&self, devices: u64, lanes_deduped: u64) {
        self.fleet_devices_simulated.fetch_add(devices, Ordering::Relaxed);
        self.fleet_lanes_deduped.fetch_add(lanes_deduped, Ordering::Relaxed);
    }

    /// Records one sweep-cache hit (a reused accuracy score, delta
    /// re-lowering, or steady-state replay).
    pub fn record_sweep_hit(&self) {
        self.sweep_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sweep-cache miss (the full computation ran).
    pub fn record_sweep_miss(&self) {
        self.sweep_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed benchmark run and its query volume.
    pub fn record_run(&self, queries: u64) {
        self.runs_completed.fetch_add(1, Ordering::Relaxed);
        self.queries_issued.fetch_add(queries, Ordering::Relaxed);
    }

    /// Records throttle statistics extracted from a traced run.
    pub fn record_throttling(&self, throttled_queries: u64, throttle_events: u64) {
        self.throttled_queries.fetch_add(throttled_queries, Ordering::Relaxed);
        self.throttle_events.fetch_add(throttle_events, Ordering::Relaxed);
    }

    /// Records one tuned-schedule cache hit.
    pub fn record_tuned_hit(&self) {
        self.tuned_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one tuned-schedule cache miss (a real tuner search).
    pub fn record_tuned_miss(&self) {
        self.tuned_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed tuner search: the complete candidates it
    /// evaluated exactly and the partials its bound eliminated.
    pub fn record_tuner_search(&self, candidates: u64, pruned: u64) {
        self.tuner_candidates.fetch_add(candidates, Ordering::Relaxed);
        self.tuner_pruned.fetch_add(pruned, Ordering::Relaxed);
    }

    /// Records the wall-clock one run spec took.
    ///
    /// # Panics
    ///
    /// Panics if the timing mutex was poisoned by a panicking worker.
    pub fn record_spec_wall(&self, label: String, wall_ms: f64) {
        self.spec_wall.lock().unwrap().push(SpecTiming { label, wall_ms });
    }

    /// A point-in-time copy of every counter.
    ///
    /// Non-destructive: reading a snapshot never changes registry state,
    /// so any number of observers (reports, Prometheus exposition, delta
    /// baselines) can snapshot concurrently without coordinating. The
    /// per-spec wall-clock timings are *not* part of the snapshot — they
    /// are consumed destructively via [`Self::take_spec_timings`], because
    /// each timing entry belongs to exactly one artifact's trace file.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_batch_runs: self.plan_batch_runs.load(Ordering::Relaxed),
            plan_batch_lanes_executed: self.plan_batch_lanes_executed.load(Ordering::Relaxed),
            fleet_devices_simulated: self.fleet_devices_simulated.load(Ordering::Relaxed),
            fleet_lanes_deduped: self.fleet_lanes_deduped.load(Ordering::Relaxed),
            sweep_hits: self.sweep_hits.load(Ordering::Relaxed),
            sweep_misses: self.sweep_misses.load(Ordering::Relaxed),
            runs_completed: self.runs_completed.load(Ordering::Relaxed),
            queries_issued: self.queries_issued.load(Ordering::Relaxed),
            throttled_queries: self.throttled_queries.load(Ordering::Relaxed),
            throttle_events: self.throttle_events.load(Ordering::Relaxed),
            tuned_hits: self.tuned_hits.load(Ordering::Relaxed),
            tuned_misses: self.tuned_misses.load(Ordering::Relaxed),
            tuner_candidates: self.tuner_candidates.load(Ordering::Relaxed),
            tuner_pruned: self.tuner_pruned.load(Ordering::Relaxed),
        }
    }

    /// Removes and returns every per-spec wall-clock entry recorded so
    /// far, sorted by label for deterministic output.
    ///
    /// Destructive drain, in contrast to the non-destructive
    /// [`Self::snapshot`]: each [`SpecTiming`] is handed out exactly once,
    /// so per-artifact trace files partition the timings instead of
    /// repeating them. The drain swaps the buffer out under the same lock
    /// [`Self::record_spec_wall`] appends under, so a record racing a
    /// drain lands either in that drain's batch or in the next one — never
    /// in both, never in neither (the concurrency test below holds this).
    ///
    /// # Panics
    ///
    /// Panics if the timing mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn take_spec_timings(&self) -> Vec<SpecTiming> {
        let mut timings = std::mem::take(&mut *self.spec_wall.lock().unwrap());
        timings.sort_by(|a, b| a.label.cmp(&b.label));
        timings
    }
}

/// The process-wide [`MetricsRegistry`] singleton.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// A thread-safe sink for [`BenchmarkTrace`]s, attachable to a
/// [`SuiteRunner`][crate::runner::SuiteRunner] via `with_trace`.
#[derive(Debug, Default)]
pub struct TraceCollector {
    traces: Mutex<Vec<BenchmarkTrace>>,
}

impl TraceCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Appends one benchmark trace.
    ///
    /// # Panics
    ///
    /// Panics if the collector mutex was poisoned by a panicking worker.
    pub fn push(&self, trace: BenchmarkTrace) {
        self.traces.lock().unwrap().push(trace);
    }

    /// Removes and returns every collected trace, sorted by label so the
    /// output is independent of worker scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the collector mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn drain(&self) -> Vec<BenchmarkTrace> {
        let mut traces = std::mem::take(&mut *self.traces.lock().unwrap());
        traces.sort_by_key(BenchmarkTrace::label);
        traces
    }

    /// Number of traces currently held.
    ///
    /// # Panics
    ///
    /// Panics if the collector mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.lock().unwrap().len()
    }

    /// Whether the collector holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let r = MetricsRegistry::default();
        r.record_compile_miss();
        r.record_plan_miss();
        let before = r.snapshot();
        r.record_compile_hit();
        r.record_plan_hit();
        r.record_plan_hit();
        r.record_sweep_hit();
        r.record_sweep_hit();
        r.record_sweep_miss();
        r.record_run(100);
        r.record_throttling(5, 1);
        r.record_plan_batch_run(64);
        r.record_plan_batch_run(32);
        r.record_fleet_shard(2048, 700);
        r.record_fleet_shard(1024, 300);
        r.record_tuned_miss();
        r.record_tuned_hit();
        r.record_tuned_hit();
        r.record_tuned_hit();
        r.record_tuner_search(40, 900);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.compile_hits, 1);
        assert_eq!(delta.compile_misses, 0);
        assert_eq!(delta.plan_hits, 2);
        assert_eq!(delta.plan_misses, 0);
        assert_eq!(delta.plan_batch_runs, 2);
        assert_eq!(delta.plan_batch_lanes_executed, 96);
        assert_eq!(delta.fleet_devices_simulated, 3072);
        assert_eq!(delta.fleet_lanes_deduped, 1000);
        assert_eq!(delta.sweep_hits, 2);
        assert_eq!(delta.sweep_misses, 1);
        assert_eq!(delta.runs_completed, 1);
        assert_eq!(delta.queries_issued, 100);
        assert_eq!(delta.throttled_queries, 5);
        assert_eq!(delta.throttle_events, 1);
        assert_eq!(delta.tuned_hits, 3);
        assert_eq!(delta.tuned_misses, 1);
        assert_eq!(delta.tuner_candidates, 40);
        assert_eq!(delta.tuner_pruned, 900);
    }

    #[test]
    fn spec_timings_drain_sorted() {
        let r = MetricsRegistry::default();
        r.record_spec_wall("b/seg".into(), 2.0);
        r.record_spec_wall("a/cls".into(), 1.0);
        let t = r.take_spec_timings();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].label, "a/cls");
        assert!(r.take_spec_timings().is_empty(), "drain empties the registry");
    }

    #[test]
    fn concurrent_drain_loses_and_duplicates_nothing() {
        // Writers race record_spec_wall against a reader repeatedly
        // draining: the union of all drained batches plus a final drain
        // must be exactly the recorded set — every entry handed out once.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const WRITERS: usize = 4;
        const PER_WRITER: usize = 250;
        let registry = Arc::new(MetricsRegistry::default());
        let done = Arc::new(AtomicBool::new(false));

        let drainer = {
            let registry = Arc::clone(&registry);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut drained = Vec::new();
                while !done.load(Ordering::Acquire) {
                    drained.extend(registry.take_spec_timings());
                    std::thread::yield_now();
                }
                drained
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        registry.record_spec_wall(format!("w{w}/spec{i}"), i as f64);
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let mut all = drainer.join().unwrap();
        all.extend(registry.take_spec_timings());

        assert_eq!(all.len(), WRITERS * PER_WRITER, "no entry lost or duplicated");
        let mut labels: Vec<&str> = all.iter().map(|t| t.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), WRITERS * PER_WRITER, "every label unique");
        assert!(registry.take_spec_timings().is_empty());
    }

    #[test]
    fn global_registry_is_shared() {
        let before = metrics().snapshot();
        metrics().record_run(1);
        let after = metrics().snapshot();
        assert!(after.runs_completed > before.runs_completed);
    }
}
