//! Plain-text report formatting for suite results — the headless
//! equivalent of the app's results screens (paper Appendix A).

use crate::app::SuiteReport;
use crate::harness::{BenchmarkScore, BenchmarkTrace};

/// Formats one score line: task, latency, accuracy, config.
#[must_use]
pub fn score_line(s: &BenchmarkScore) -> String {
    let offline = s
        .offline
        .as_ref()
        .map(|o| format!(", offline {:.1} fps", o.throughput_fps))
        .unwrap_or_default();
    format!(
        "{:22} {:8.2} ms (p90){offline}  | {} = {:.4} (target {:.4}, {}) | {} via {} on {}",
        s.def.task.to_string(),
        s.latency_ms(),
        s.def.task.metric_name(),
        s.accuracy,
        s.quality_target,
        if s.accuracy_passed { "PASS" } else { "FAIL" },
        s.scheme,
        s.backend,
        s.accelerator,
    )
}

/// Formats a whole suite report.
#[must_use]
pub fn format_report(report: &SuiteReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== MLPerf Mobile {} — {} ===\n",
        report.version, report.chip
    ));
    for s in &report.scores {
        out.push_str(&score_line(s));
        out.push('\n');
    }
    out.push_str(&format!(
        "submission valid: {}\n",
        if report.all_valid() { "yes" } else { "NO" }
    ));
    out
}

/// The per-result detail view — the headless equivalent of the app's
/// result-detail and configuration screens (paper Figure 8d/8e): scenario
/// stats, the exact hardware/software configuration, energy, and rule
/// compliance.
#[must_use]
pub fn format_details(s: &BenchmarkScore) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} / {} ==\n", s.chip, s.def.task));
    out.push_str(&format!(
        "  model            {} on {}\n",
        s.def.model, s.def.dataset
    ));
    out.push_str(&format!(
        "  configuration    {} via {} on {}\n",
        s.scheme, s.backend, s.accelerator
    ));
    out.push_str(&format!(
        "  accuracy         {:.4} {} (target {:.4}: {})\n",
        s.accuracy,
        s.def.task.metric_name(),
        s.quality_target,
        if s.accuracy_passed { "PASS" } else { "FAIL" }
    ));
    let lat = s
        .single_stream
        .latency
        .as_ref()
        .expect("single-stream runs record per-query latencies");
    out.push_str(&format!(
        "  single-stream    p50 {:.2} ms | p90 {:.2} ms | p99 {:.2} ms | max {:.2} ms over {} queries\n",
        lat.p50_ns as f64 / 1e6,
        lat.p90_ns as f64 / 1e6,
        lat.p99_ns as f64 / 1e6,
        lat.max_ns as f64 / 1e6,
        s.single_stream.queries,
    ));
    if let Some(off) = &s.offline {
        out.push_str(&format!(
            "  offline          {:.1} FPS over {} samples\n",
            off.throughput_fps, off.queries
        ));
    }
    if let Some(srv) = &s.server {
        out.push_str(&format!(
            "  server           max {:.1} QPS (p90 ≤ {:.2} ms, {} probes)\n",
            srv.max_qps,
            srv.target_latency_ns as f64 / 1e6,
            srv.probes,
        ));
    }
    if let Some(ms) = &s.multi_stream {
        out.push_str(&format!(
            "  multi-stream     {} streams per {:.0} ms frame ({} probes)\n",
            ms.streams,
            ms.interval_ns as f64 / 1e6,
            ms.probes,
        ));
    }
    out.push_str(&format!(
        "  energy           {:.2} mJ/query | {:.2} W average\n",
        s.joules_per_query * 1e3,
        s.average_power_w
    ));
    out.push_str(&format!(
        "  rule compliance  ambient {} | log violations {} | power saving {}\n",
        if s.ambient_compliant { "ok" } else { "OUT OF RANGE" },
        s.violations.len(),
        if s.power_saving_entered { "ENTERED" } else { "no" },
    ));
    out
}

/// Formats a one-line-per-cell summary of collected run traces: span
/// counts, throttle statistics, and the peak dispatch temperature — the
/// at-a-glance view of the observability layer.
#[must_use]
pub fn format_trace_summary(traces: &[BenchmarkTrace]) -> String {
    let mut out = String::from("=== Run traces ===\n");
    if traces.is_empty() {
        out.push_str("(no traces collected)\n");
        return out;
    }
    for t in traces {
        let peak = t
            .peak_temperature_c()
            .map(|c| format!("{c:.1} °C peak"))
            .unwrap_or_else(|| "no telemetry".to_owned());
        out.push_str(&format!(
            "{:40} {:5} spans | throttled {:4} queries ({} events) | {}{}\n",
            t.label(),
            t.single_stream.span_count(),
            t.throttled_queries(),
            t.throttle_events(),
            peak,
            match (t.offline.is_some(), t.server.is_some() || t.multi_stream.is_some()) {
                (true, true) => " | +offline burst | +scenario probes",
                (true, false) => " | +offline burst",
                (false, true) => " | +scenario probes",
                (false, false) => "",
            },
        ));
        let engines = t
            .energy
            .engines
            .iter()
            .map(|e| format!("{} {:.1}% busy, {:.3} J", e.engine, e.busy_fraction * 100.0, e.joules))
            .collect::<Vec<_>>()
            .join(" | ");
        out.push_str(&format!(
            "{:40} {:.2} mJ/query, {:.2} W avg | {}\n",
            "",
            t.energy.joules_per_query * 1e3,
            t.energy.average_power_w,
            if engines.is_empty() { "no engine telemetry".to_owned() } else { engines },
        ));
    }
    out
}

/// Renders a fixed-width table from a header and rows — shared by the
/// reproduction binary's Table/Figure outputs.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let _span = crate::obs::span::span(crate::obs::span::Phase::Report, || {
        header.first().map_or_else(String::new, |h| (*h).to_owned())
    });
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:width$} |", c, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{run_suite, AppConfig};
    use crate::harness::RunRules;
    use crate::sut_impl::DatasetScale;
    use crate::task::SuiteVersion;
    use soc_sim::catalog::ChipId;

    #[test]
    fn report_mentions_every_task() {
        let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: false, scenario_matrix: false, tuner: None };
        let report = run_suite(
            ChipId::Snapdragon888,
            SuiteVersion::V1_0,
            &config,
            DatasetScale::Reduced(32),
        )
        .unwrap();
        let text = format_report(&report);
        assert!(text.contains("Image classification"));
        assert!(text.contains("Question answering"));
        assert!(text.contains("Snapdragon 888"));
        assert!(text.contains("PASS"));
    }

    #[test]
    fn detail_view_covers_fig8_fields() {
        let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: true, scenario_matrix: false, tuner: None };
        let report = run_suite(
            ChipId::Exynos2100,
            SuiteVersion::V1_0,
            &config,
            DatasetScale::Reduced(32),
        )
        .unwrap();
        let detail = format_details(&report.scores[0]);
        assert!(detail.contains("configuration"));
        assert!(detail.contains("p90"));
        assert!(detail.contains("offline"));
        assert!(detail.contains("mJ/query"));
        assert!(detail.contains("rule compliance"));
    }

    #[test]
    fn detail_view_lists_scenario_searches() {
        let config = AppConfig {
            rules: RunRules::smoke_test(),
            offline_classification: true,
            scenario_matrix: true,
            tuner: None,
        };
        let report = run_suite(
            ChipId::Dimensity1100,
            SuiteVersion::V1_0,
            &config,
            DatasetScale::Reduced(32),
        )
        .unwrap();
        let classification = &report.scores[0];
        let detail = format_details(classification);
        assert!(detail.contains("server"), "{detail}");
        assert!(detail.contains("QPS"), "{detail}");
        assert!(detail.contains("multi-stream"), "{detail}");
        assert!(detail.contains("streams per"), "{detail}");
        // The headline metrics are reachable straight off the score too.
        assert!(classification.server_qps().unwrap() > 0.0);
        assert!(classification.multi_stream_streams().unwrap() >= 1);
        // Non-classification rows ran single-stream only.
        let qa = &report.scores[3];
        assert!(qa.server.is_none() && qa.multi_stream.is_none());
    }

    #[test]
    fn trace_summary_lists_cells() {
        use crate::app::run_suite_traced;
        let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: true, scenario_matrix: false, tuner: None };
        let (_, traces) = run_suite_traced(
            ChipId::Snapdragon888,
            SuiteVersion::V1_0,
            &config,
            DatasetScale::Reduced(32),
        )
        .unwrap();
        let text = format_trace_summary(&traces);
        assert!(text.contains("Run traces"));
        assert!(text.contains("spans"));
        assert!(text.contains("+offline burst"));
        // One summary line plus one energy line per cell.
        assert_eq!(text.lines().count(), 1 + 2 * traces.len());
        assert!(text.contains("mJ/query"));
        assert!(text.contains("% busy"));
        assert!(format_trace_summary(&[]).contains("no traces"));
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "long header"],
            &[vec!["x".into(), "y".into()], vec!["wide cell".into(), "z".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }
}
