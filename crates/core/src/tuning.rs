//! The heuristic-vs-optimal scheduling-gap artifact.
//!
//! The paper's backends place ops with vendor heuristics (Section 5 and
//! Figure 5: each SDK decides which partition runs on which engine).
//! This module quantifies what those heuristics leave on the table: for
//! every `(chip, submission backend, model)` cell of the benchmark
//! matrix it runs the schedule auto-tuner
//! ([`mobile_backend::tune::tune`] — beam search with branch-and-bound
//! pruning over the per-op engine-assignment space) under both the
//! latency and the energy objective, and reports the tuned scores next
//! to the heuristic's, with the relative gap.
//!
//! # Determinism contract
//!
//! For a fixed [`TuningConfig`] (minus `threads`) the report is
//! byte-identical regardless of worker count: every cell is a pure
//! function of `(chip, backend, model, tuner config)`, the cell list is
//! built serially in catalog order, [`par_map`] merges in item order,
//! and the report carries no wall-clock. `make tune` holds this as a
//! byte-diff across `MLPERF_WORKERS` settings, and
//! `tests/golden/v1_0_tuning.json` locks the full v1.0 gap table at
//! zero ULPs.

use crate::app::submission_backend;
use crate::report::render_table;
use crate::runner::{default_threads, par_map, CompileCache};
use crate::task::{suite, SuiteVersion};
use mobile_backend::backend::CompileError;
use mobile_backend::tune::{Objective, TunerConfig};
use serde::Serialize;
use soc_sim::catalog::{ChipId, Generation};

/// Which cells to tune and how hard to search. Results depend on every
/// field except `threads`, which only changes wall-clock.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// Chips to cover; each contributes its generation's suite tasks on
    /// its per-task submission backend.
    pub chips: Vec<ChipId>,
    /// Beam width for the search (`usize::MAX` = exact branch-and-bound).
    pub beam_width: usize,
    /// Worker threads; affects wall-clock only.
    pub threads: usize,
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl TuningConfig {
    /// The full catalog at the default beam width.
    #[must_use]
    pub fn new() -> Self {
        TuningConfig {
            chips: ChipId::ALL.to_vec(),
            beam_width: TunerConfig::latency().beam_width,
            threads: default_threads(),
        }
    }
}

/// One tuned cell of the gap table: a `(chip, backend, model)` triple
/// searched under one objective.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TuningCell {
    /// Platform.
    pub chip: String,
    /// Code path.
    pub backend: String,
    /// Reference model.
    pub model: String,
    /// Search objective (`latency` or `energy`).
    pub objective: String,
    /// Heuristic single-stream latency, ms.
    pub heuristic_ms: f64,
    /// Tuned single-stream latency, ms (of the schedule the search
    /// picked for this objective).
    pub tuned_ms: f64,
    /// Heuristic active compute energy, mJ.
    pub heuristic_mj: f64,
    /// Tuned active compute energy, mJ.
    pub tuned_mj: f64,
    /// Relative improvement on the objective, percent
    /// (`(heuristic - tuned) / heuristic * 100`); `0.0` when the
    /// heuristic was already optimal at this beam width.
    pub gap_pct: f64,
    /// Stage count of the heuristic schedule.
    pub stages_before: usize,
    /// Stage count of the tuned schedule.
    pub stages_after: usize,
    /// Engine transitions in the heuristic schedule.
    pub transitions_before: usize,
    /// Engine transitions in the tuned schedule.
    pub transitions_after: usize,
    /// Distinct `(engine, dtype)` targets in the search space.
    pub num_targets: usize,
    /// Complete candidates the search scored exactly.
    pub candidates: u64,
    /// Partial assignments eliminated by the branch-and-bound lower
    /// bound.
    pub pruned: u64,
    /// Whether the tuner strictly beat the heuristic.
    pub improved: bool,
}

/// The full gap table: every configured cell under both objectives.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TuningReport {
    /// Beam width the searches ran at.
    pub beam_width: usize,
    /// Cells in catalog order (chip, task, objective — latency first).
    pub cells: Vec<TuningCell>,
}

impl TuningReport {
    /// Cells where the tuner strictly beat the vendor heuristic.
    #[must_use]
    pub fn improved_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.improved).count()
    }

    /// The largest relative gap found, percent.
    #[must_use]
    pub fn max_gap_pct(&self) -> f64 {
        self.cells.iter().map(|c| c.gap_pct).fold(0.0, f64::max)
    }

    /// Canonical JSON form (the golden-artifact encoding).
    ///
    /// # Panics
    ///
    /// Serialization of a report cannot fail.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// The suite version a chip's submission cells belong to.
fn suite_version(chip: ChipId) -> SuiteVersion {
    match chip.generation() {
        Generation::V0_7 => SuiteVersion::V0_7,
        Generation::V1_0 => SuiteVersion::V1_0,
    }
}

/// Runs the tuner over every configured cell and collects the gap table.
///
/// # Errors
///
/// Returns the first compile failure among the configured chips'
/// submission paths (the catalog's own submission pairs always compile).
pub fn run_tuning(cache: &CompileCache, config: &TuningConfig) -> Result<TuningReport, CompileError> {
    // The work list is built serially so cell order never depends on the
    // worker count.
    let mut work = Vec::new();
    for &chip in &config.chips {
        let version = suite_version(chip);
        for def in suite(version) {
            let backend = submission_backend(chip, version, def.task);
            for objective in [Objective::Latency, Objective::Energy] {
                work.push((chip, backend, def.model, objective));
            }
        }
    }
    let tuner_of = |objective| TunerConfig {
        objective,
        beam_width: config.beam_width,
    };
    let cells: Result<Vec<TuningCell>, CompileError> =
        par_map(&work, config.threads, |&(chip, backend, model, objective)| {
            let tuned = cache.tuned(chip, backend, model, &tuner_of(objective))?;
            let heuristic_schedule = &cache.deployment(chip, backend, model)?.schedule;
            let outcome = &tuned.outcome;
            let (before, after) = match objective {
                Objective::Latency => {
                    (outcome.heuristic.latency_secs, outcome.tuned.latency_secs)
                }
                Objective::Energy => (outcome.heuristic.energy_j, outcome.tuned.energy_j),
            };
            let gap_pct = if before > 0.0 { (before - after) / before * 100.0 } else { 0.0 };
            Ok(TuningCell {
                chip: chip.to_string(),
                backend: backend.to_string(),
                model: format!("{model:?}"),
                objective: objective.to_string(),
                heuristic_ms: outcome.heuristic.latency_secs * 1e3,
                tuned_ms: outcome.tuned.latency_secs * 1e3,
                heuristic_mj: outcome.heuristic.energy_j * 1e3,
                tuned_mj: outcome.tuned.energy_j * 1e3,
                gap_pct,
                stages_before: heuristic_schedule.stages.len(),
                stages_after: outcome.schedule.stages.len(),
                transitions_before: heuristic_schedule.num_transitions(),
                transitions_after: outcome.schedule.num_transitions(),
                num_targets: outcome.num_targets,
                candidates: outcome.stats.candidates,
                pruned: outcome.stats.pruned,
                improved: outcome.improved,
            })
        })
        .into_iter()
        .collect();
    Ok(TuningReport { beam_width: config.beam_width, cells: cells? })
}

/// Renders the gap table plus a summary of the search effort. Pure
/// function of the report — byte-stable for a fixed config.
#[must_use]
pub fn render_tuning_report(report: &TuningReport) -> String {
    use std::fmt::Write as _;
    let header = [
        "Chip",
        "Path",
        "Objective",
        "Heuristic",
        "Tuned",
        "Gap %",
        "Stages",
        "Transitions",
        "Candidates",
        "Pruned",
    ];
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            let (before, after, unit) = if cell.objective == "latency" {
                (cell.heuristic_ms, cell.tuned_ms, "ms")
            } else {
                (cell.heuristic_mj, cell.tuned_mj, "mJ")
            };
            vec![
                cell.chip.clone(),
                format!("{}/{}", cell.backend, cell.model),
                cell.objective.clone(),
                format!("{before:.4} {unit}"),
                format!("{after:.4} {unit}"),
                if cell.improved { format!("{:.2}", cell.gap_pct) } else { "-".to_owned() },
                format!("{} -> {}", cell.stages_before, cell.stages_after),
                format!("{} -> {}", cell.transitions_before, cell.transitions_after),
                cell.candidates.to_string(),
                cell.pruned.to_string(),
            ]
        })
        .collect();
    let mut text = format!(
        "Schedule auto-tuning gap table - beam width {}, {} cells\n{}",
        report.beam_width,
        report.cells.len(),
        render_table(&header, &rows),
    );
    let candidates: u64 = report.cells.iter().map(|c| c.candidates).sum();
    let pruned: u64 = report.cells.iter().map(|c| c.pruned).sum();
    let _ = writeln!(
        text,
        "tuner beat the vendor heuristic in {} of {} cells (max gap {:.2}%); \
         {} candidates scored, {} partials pruned",
        report.improved_cells(),
        report.cells.len(),
        report.max_gap_pct(),
        candidates,
        pruned,
    );
    text
}

/// [`run_tuning`] + [`render_tuning_report`] in one call — the
/// `reproduce tuning` artifact body.
///
/// # Errors
///
/// Returns the first compile failure among the configured chips.
pub fn tuning_report_text(
    cache: &CompileCache,
    config: &TuningConfig,
) -> Result<String, CompileError> {
    Ok(render_tuning_report(&run_tuning(cache, config)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(threads: usize) -> TuningConfig {
        let mut config = TuningConfig::new();
        config.chips = vec![ChipId::Dimensity1100, ChipId::Snapdragon888];
        config.threads = threads;
        config
    }

    /// The gap table is byte-identical across worker counts — the same
    /// contract `make tune` holds for the full artifact.
    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let serial = run_tuning(&CompileCache::new(), &small_config(1)).unwrap();
        let wide = run_tuning(&CompileCache::new(), &small_config(8)).unwrap();
        assert_eq!(serial.to_json(), wide.to_json());
        assert_eq!(render_tuning_report(&serial), render_tuning_report(&wide));
    }

    /// Tuned scores never regress the heuristic on the search objective,
    /// and every cell's search did real work.
    #[test]
    fn no_cell_regresses_its_objective() {
        let report = run_tuning(&CompileCache::new(), &small_config(4)).unwrap();
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            let (before, after) = if cell.objective == "latency" {
                (cell.heuristic_ms, cell.tuned_ms)
            } else {
                (cell.heuristic_mj, cell.tuned_mj)
            };
            assert!(after <= before, "{}/{} regressed {}", cell.chip, cell.model, cell.objective);
            assert!(cell.gap_pct >= 0.0);
            assert!(cell.candidates > 0, "{}/{} scored no candidates", cell.chip, cell.model);
        }
    }

    /// The tuned cache answers repeat lookups without re-searching.
    #[test]
    fn tuned_cache_memoizes_across_report_runs() {
        let cache = CompileCache::new();
        let config = small_config(2);
        let first = run_tuning(&cache, &config).unwrap();
        let misses_after_first = cache.tuned_misses();
        let second = run_tuning(&cache, &config).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.tuned_misses(), misses_after_first, "second run must be all hits");
        assert!(cache.tuned_hits() >= first.cells.len());
    }
}
