//! Statistical inference simulation (see DESIGN.md, "Quality model").
//!
//! Real weights are unavailable, so predictions are generated from ground
//! truth degraded at the rate implied by the deployment's quality
//! retention (FP32 reference quality x numerics retention from the
//! `quant` crate). The *metrics* that score these predictions are the real
//! algorithms in `mobile-metrics`; only the predictor is synthetic.

use mobile_data::datasets::{
    SyntheticAde20k, SyntheticCoco, SyntheticImageNet, SyntheticSquad, ADE20K_CLASSES,
    COCO_CLASSES, IMAGENET_CLASSES,
};
use mobile_data::extended::{SyntheticDiv2k, SyntheticLibriSpeech, SPEECH_VOCAB};
use mobile_data::image::Image;
use mobile_data::types::{AnswerSpan, BBox, Detection, LabelMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Low-discrepancy uniform in `[0, 1)` for hit/miss decisions: the golden
/// ratio sequence over `index`, phase-shifted by the seed. Stratified, so
/// the empirical hit rate over N consecutive indices deviates from the
/// target probability by O(1/N) instead of the O(1/sqrt(N)) of iid draws —
/// the measured accuracy converges to the quality model's target even on
/// reduced test datasets.
fn stratified01(seed: u64, index: u64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let offset = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
    (index as f64 * PHI + offset).fract()
}

fn rng_for(seed: u64, sample: usize) -> StdRng {
    let mut z = seed
        .rotate_left(17)
        .wrapping_add(0xA5A5_5A5A_DEAD_BEEF)
        ^ (sample as u64).wrapping_mul(0xD134_2543_DE82_EF95);
    z = (z ^ (z >> 29)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    StdRng::seed_from_u64(z ^ (z >> 32))
}

/// Predicts a classification label: correct with probability
/// `target_accuracy`, otherwise a uniformly wrong label.
#[must_use]
pub fn classify(dataset: &SyntheticImageNet, sample: usize, target_accuracy: f64, seed: u64) -> u32 {
    let gt = dataset.label(sample);
    let mut rng = rng_for(seed, sample);
    if stratified01(seed, sample as u64) < target_accuracy.clamp(0.0, 1.0) {
        gt
    } else {
        // A wrong label distinct from the ground truth.
        let mut wrong = rng.gen_range(1..=IMAGENET_CLASSES);
        if wrong == gt {
            wrong = if gt == IMAGENET_CLASSES { 1 } else { gt + 1 };
        }
        wrong
    }
}

/// Predicts detections: each ground-truth object is found with probability
/// `target_map` (with tight boxes, no-false-positive mAP equals recall),
/// plus occasional low-scored false positives that exercise the
/// precision-recall machinery without moving the score materially.
#[must_use]
pub fn detect(dataset: &SyntheticCoco, sample: usize, target_map: f64, seed: u64) -> Vec<Detection> {
    let gt = dataset.objects(sample);
    let mut rng = rng_for(seed, sample);
    let mut out = Vec::new();
    // The 101-point interpolation floor and the occasional false positive
    // shave ~4% off the raw hit rate; compensate so the dataset-level mAP
    // lands on target.
    let hit_rate = (target_map * 1.045).clamp(0.0, 1.0);
    for (oi, obj) in gt.iter().enumerate() {
        if stratified01(seed, (sample * 8 + oi) as u64) < hit_rate {
            // Tiny jitter: IoU stays above the strictest 0.95 threshold.
            let jx = rng.gen_range(-0.001..0.001f32);
            let jy = rng.gen_range(-0.001..0.001f32);
            out.push(Detection {
                class: obj.class,
                score: rng.gen_range(0.6..0.99),
                bbox: BBox::new(
                    obj.bbox.x_min + jx,
                    obj.bbox.y_min + jy,
                    obj.bbox.x_max + jx,
                    obj.bbox.y_max + jy,
                ),
            });
        }
    }
    // Rare low-confidence false positive.
    if rng.gen_bool(0.05) {
        out.push(Detection {
            class: rng.gen_range(1..=COCO_CLASSES),
            score: rng.gen_range(0.05..0.15),
            bbox: BBox::new(0.01, 0.01, 0.05, 0.05),
        });
    }
    out
}

/// Predicts a segmentation map: each pixel keeps its ground-truth label
/// with probability `pixel_accuracy`, otherwise flips to a random other
/// class. Use [`pixel_accuracy_for_miou`] to derive the rate from a target
/// mIoU.
#[must_use]
pub fn segment(dataset: &SyntheticAde20k, sample: usize, pixel_accuracy: f64, seed: u64) -> LabelMap {
    let gt = dataset.label_map(sample);
    let mut rng = rng_for(seed, sample);
    let mut pred = gt.clone();
    let base = (sample as u64) << 20;
    for (pi, l) in pred.labels.iter_mut().enumerate() {
        if stratified01(seed, base + pi as u64) >= pixel_accuracy.clamp(0.0, 1.0) {
            let mut wrong = rng.gen_range(0..ADE20K_CLASSES);
            if wrong == *l {
                wrong = (wrong + 1) % ADE20K_CLASSES;
            }
            *l = wrong;
        }
    }
    pred
}

/// Process-wide memo for [`pixel_accuracy_for_miou`], keyed by the full
/// identity of the inversion: dataset generator parameters plus the exact
/// target bits. The bisection below costs 24 probes x up-to-64 simulated
/// `segment()` calls, and every suite run over the same dataset scale
/// repeats it with identical inputs — across a parallel sweep the same
/// inversion would otherwise run once per (chip, backend) pair.
///
/// No analogous cache exists for `noise_sigma_for_psnr`: that inversion is
/// closed-form (`sigma = peak * 10^(-psnr/20)`), cheaper than a map lookup.
static MIOU_CALIBRATION: std::sync::Mutex<Option<CalibrationMap>> =
    std::sync::Mutex::new(None);

/// `(dataset seed, len, resolution, target-mIoU bits)` -> pixel accuracy.
type CalibrationMap = std::collections::HashMap<(u64, usize, usize, u64), f64>;

/// Numerically inverts the mIoU curve: finds the per-pixel accuracy that
/// produces `target_miou` on this dataset's class statistics.
///
/// Deterministic (fixed calibration seed) and monotone, solved by
/// bisection over a 24-sample calibration subset. Results are memoized
/// process-wide on `(dataset seed, len, resolution, target bits)`, so
/// concurrent benchmark runs over the same dataset pay for the bisection
/// once.
///
/// # Panics
///
/// Panics if the dataset has no samples.
#[must_use]
pub fn pixel_accuracy_for_miou(dataset: &SyntheticAde20k, target_miou: f64) -> f64 {
    use mobile_data::datasets::Dataset;
    let key = (dataset.seed(), dataset.len(), dataset.resolution(), target_miou.to_bits());
    {
        let mut cache = MIOU_CALIBRATION.lock().unwrap();
        if let Some(&hit) = cache.get_or_insert_with(Default::default).get(&key) {
            return hit;
        }
    }
    // Bisect outside the lock: other dataset keys should not wait on this
    // one, and a rare duplicate bisection is deterministic anyway.
    let q = pixel_accuracy_for_miou_uncached(dataset, target_miou);
    let mut cache = MIOU_CALIBRATION.lock().unwrap();
    cache.get_or_insert_with(Default::default).insert(key, q);
    q
}

fn pixel_accuracy_for_miou_uncached(dataset: &SyntheticAde20k, target_miou: f64) -> f64 {
    use mobile_data::datasets::Dataset;
    use mobile_metrics::miou::{benchmark_eval_classes, ConfusionMatrix};
    assert!(dataset.len() > 0);
    let probe = |q: f64| -> f64 {
        let mut cm = ConfusionMatrix::new(ADE20K_CLASSES as usize);
        let n = dataset.len().min(64);
        for i in 0..n {
            let gt = dataset.label_map(i);
            let pred = segment(dataset, i, q, 0xCA11_B8A7E);
            cm.record_maps(&gt, &pred);
        }
        cm.mean_iou(&benchmark_eval_classes())
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        if probe(mid) < target_miou {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Predicts an answer span: exact with probability `target_f1` adjusted
/// for the partial credit of near misses; otherwise off-by-one (partial
/// F1) or disjoint (zero F1).
#[must_use]
pub fn answer(dataset: &SyntheticSquad, sample: usize, target_f1: f64, seed: u64) -> AnswerSpan {
    let qa = dataset.sample(sample);
    let gt = qa.answer;
    let mut rng = rng_for(seed, sample);
    // Near-miss rate is fixed; exact-match rate solves
    //   E[F1] = p_exact + p_miss * f1_miss = target.
    let p_miss = 0.08;
    let len = f64::from(gt.len());
    // Token F1 of an off-by-one span of the same length: overlap len-1.
    let f1_miss = if gt.len() > 1 { (len - 1.0) / len } else { 0.0 };
    // E[F1] = p_exact + p_miss * f1_miss  =>  solve for p_exact.
    let p_exact = (target_f1 - p_miss * f1_miss).clamp(0.0, 1.0);
    let roll: f64 = stratified01(seed, sample as u64);
    if roll < p_exact {
        gt
    } else if roll < p_exact + p_miss && gt.start > 0 && gt.len() > 1 {
        // Off-by-one span of the same length: overlap len-1.
        AnswerSpan::new(gt.start - 1, gt.end - 1)
    } else {
        // Disjoint span early in the sequence.
        let start = rng.gen_range(0..5u32);
        AnswerSpan::new(start, start + 1)
    }
}

/// Predicts a transcript: each reference word survives with probability
/// `target_word_accuracy`; errors split into substitutions (70%),
/// deletions (15%) and insertions (15%), so the corpus WER lands on
/// `1 - target_word_accuracy`.
#[must_use]
pub fn transcribe(
    dataset: &SyntheticLibriSpeech,
    sample: usize,
    target_word_accuracy: f64,
    seed: u64,
) -> Vec<u32> {
    let gt = dataset.utterance(sample).transcript;
    let mut rng = rng_for(seed, sample);
    let err = (1.0 - target_word_accuracy).clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(gt.len());
    for (wi, &w) in gt.iter().enumerate() {
        let roll = stratified01(seed, (sample * 32 + wi) as u64);
        if roll >= 0.85 * err {
            out.push(w); // survives
        } else if roll < 0.70 * err {
            // Substitution: a different word.
            let mut wrong = rng.gen_range(0..SPEECH_VOCAB);
            if wrong == w {
                wrong = (wrong + 1) % SPEECH_VOCAB;
            }
            out.push(wrong);
        }
        // else (0.70e..0.85e): deletion — emit nothing.
        // Insertions at 0.15e per reference word.
        if rng.gen_bool(0.15 * err) {
            out.push(rng.gen_range(0..SPEECH_VOCAB));
        }
    }
    out
}

/// Reconstructs a super-resolved image: the ground truth plus zero-mean
/// uniform noise whose variance hits the target PSNR exactly in
/// expectation (`sigma = peak * 10^(-psnr/20)`, uniform half-width
/// `sigma * sqrt(3)`). Pixels are deliberately not clamped so the measured
/// PSNR matches the closed form.
#[must_use]
pub fn reconstruct(dataset: &SyntheticDiv2k, sample: usize, noise_sigma: f64, seed: u64) -> Image {
    let mut img = dataset.high_res(sample);
    let mut rng = rng_for(seed, sample);
    let half_width = (noise_sigma * 3f64.sqrt()) as f32;
    if half_width > 0.0 {
        for v in &mut img.data {
            *v += rng.gen_range(-half_width..half_width);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobile_metrics::accuracy::{squad_scores, top1_accuracy};
    use mobile_metrics::map::coco_map;
    use mobile_metrics::miou::benchmark_miou;

    #[test]
    fn classification_hits_target_rate() {
        let ds = SyntheticImageNet::with_len(1, 5000);
        let target = 0.7619;
        let gt: Vec<u32> = (0..5000).map(|i| ds.label(i)).collect();
        let pred: Vec<u32> = (0..5000).map(|i| classify(&ds, i, target, 9)).collect();
        let acc = top1_accuracy(&gt, &pred);
        assert!((acc - target).abs() < 0.02, "accuracy {acc} vs target {target}");
    }

    #[test]
    fn classification_never_accidentally_correct_when_wrong() {
        let ds = SyntheticImageNet::with_len(2, 500);
        let pred: Vec<u32> = (0..500).map(|i| classify(&ds, i, 0.0, 3)).collect();
        let gt: Vec<u32> = (0..500).map(|i| ds.label(i)).collect();
        assert_eq!(top1_accuracy(&gt, &pred), 0.0);
    }

    #[test]
    fn detection_map_tracks_target() {
        let ds = SyntheticCoco::with_len(3, 400);
        let target = 0.244;
        let gts: Vec<_> = (0..400).map(|i| ds.objects(i)).collect();
        let preds: Vec<_> = (0..400).map(|i| detect(&ds, i, target, 5)).collect();
        let map = coco_map(&gts, &preds);
        assert!((map - target).abs() < 0.05, "mAP {map} vs target {target}");
    }

    #[test]
    fn miou_inversion_converges() {
        let ds = SyntheticAde20k::with_params(7, 100, 48);
        let target = 0.548;
        let q = pixel_accuracy_for_miou(&ds, target);
        assert!((0.3..1.0).contains(&q), "q = {q}");
        let gts: Vec<_> = (0..100).map(|i| ds.label_map(i)).collect();
        let preds: Vec<_> = (0..100).map(|i| segment(&ds, i, q, 11)).collect();
        let miou = benchmark_miou(&gts, &preds);
        assert!((miou - target).abs() < 0.04, "mIoU {miou} vs target {target}");
    }

    #[test]
    fn miou_calibration_cache_matches_uncached_bisection() {
        let ds = SyntheticAde20k::with_params(21, 80, 32);
        let target = 0.51;
        // First call populates the cache, second must hit it; both must be
        // bit-identical to the raw bisection.
        let first = pixel_accuracy_for_miou(&ds, target);
        let second = pixel_accuracy_for_miou(&ds, target);
        let raw = pixel_accuracy_for_miou_uncached(&ds, target);
        assert_eq!(first.to_bits(), raw.to_bits());
        assert_eq!(second.to_bits(), raw.to_bits());
        // A different target must not collide with the cached key.
        let other = pixel_accuracy_for_miou(&ds, 0.60);
        assert!(other > first, "higher mIoU target needs higher pixel accuracy");
    }

    #[test]
    fn qa_f1_tracks_target() {
        let ds = SyntheticSquad::with_len(5, 2000);
        let target = 0.9398;
        let gts: Vec<_> = (0..2000).map(|i| ds.sample(i).answer).collect();
        let preds: Vec<_> = (0..2000).map(|i| answer(&ds, i, target, 13)).collect();
        let (f1, em) = squad_scores(&gts, &preds);
        assert!((f1 - target).abs() < 0.02, "F1 {f1} vs target {target}");
        assert!(em <= f1, "EM {em} must not exceed F1 {f1}");
    }

    #[test]
    fn transcription_wer_tracks_target() {
        let ds = SyntheticLibriSpeech::with_len(3, 500);
        let target_acc = 0.925; // WER 7.5%
        let refs: Vec<Vec<u32>> = (0..500).map(|i| ds.utterance(i).transcript).collect();
        let hyps: Vec<Vec<u32>> = (0..500).map(|i| transcribe(&ds, i, target_acc, 7)).collect();
        let wer = mobile_metrics::wer::corpus_wer(&refs, &hyps);
        assert!((wer - 0.075).abs() < 0.015, "WER {wer:.4} vs target 0.075");
    }

    #[test]
    fn perfect_transcription_at_accuracy_one() {
        let ds = SyntheticLibriSpeech::with_len(4, 50);
        for i in 0..50 {
            assert_eq!(transcribe(&ds, i, 1.0, 9), ds.utterance(i).transcript);
        }
    }

    #[test]
    fn reconstruction_psnr_tracks_target() {
        let ds = SyntheticDiv2k::with_params(5, 16, 64, 96);
        let target_db = 33.0;
        let sigma = mobile_metrics::psnr::noise_sigma_for_psnr(target_db, 1.0);
        let refs: Vec<Image> = (0..16).map(|i| ds.high_res(i)).collect();
        let recs: Vec<Image> = (0..16).map(|i| reconstruct(&ds, i, sigma, 3)).collect();
        let psnr = mobile_metrics::psnr::mean_psnr_db(&refs, &recs, 1.0);
        assert!((psnr - target_db).abs() < 0.5, "PSNR {psnr:.2} vs {target_db}");
    }

    #[test]
    fn predictions_are_deterministic() {
        let ds = SyntheticCoco::with_len(9, 50);
        let a = detect(&ds, 7, 0.3, 42);
        let b = detect(&ds, 7, 0.3, 42);
        assert_eq!(a, b);
        let c = detect(&ds, 7, 0.3, 43);
        // Different seed generally differs (not guaranteed per-sample, but
        // across many samples it must).
        let all_a: Vec<_> = (0..50).map(|i| detect(&ds, i, 0.3, 42)).collect();
        let all_c: Vec<_> = (0..50).map(|i| detect(&ds, i, 0.3, 43)).collect();
        assert!(all_a != all_c || a == c);
    }
}
