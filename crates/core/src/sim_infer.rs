//! Statistical inference simulation (see DESIGN.md, "Quality model").
//!
//! Real weights are unavailable, so predictions are generated from ground
//! truth degraded at the rate implied by the deployment's quality
//! retention (FP32 reference quality x numerics retention from the
//! `quant` crate). The *metrics* that score these predictions are the real
//! algorithms in `mobile-metrics`; only the predictor is synthetic.

use mobile_data::datasets::{
    SyntheticAde20k, SyntheticCoco, SyntheticImageNet, SyntheticSquad, ADE20K_CLASSES,
    COCO_CLASSES, IMAGENET_CLASSES,
};
use mobile_data::extended::{SyntheticDiv2k, SyntheticLibriSpeech, SPEECH_VOCAB};
use mobile_data::image::Image;
use mobile_data::types::{AnswerSpan, BBox, Detection, LabelMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Low-discrepancy uniform in `[0, 1)` for hit/miss decisions: the golden
/// ratio sequence over `index`, phase-shifted by the seed. Stratified, so
/// the empirical hit rate over N consecutive indices deviates from the
/// target probability by O(1/N) instead of the O(1/sqrt(N)) of iid draws —
/// the measured accuracy converges to the quality model's target even on
/// reduced test datasets.
fn stratified01(seed: u64, index: u64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let offset = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
    (index as f64 * PHI + offset).fract()
}

fn rng_for(seed: u64, sample: usize) -> StdRng {
    let mut z = seed
        .rotate_left(17)
        .wrapping_add(0xA5A5_5A5A_DEAD_BEEF)
        ^ (sample as u64).wrapping_mul(0xD134_2543_DE82_EF95);
    z = (z ^ (z >> 29)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    StdRng::seed_from_u64(z ^ (z >> 32))
}

/// Predicts a classification label: correct with probability
/// `target_accuracy`, otherwise a uniformly wrong label.
#[must_use]
pub fn classify(dataset: &SyntheticImageNet, sample: usize, target_accuracy: f64, seed: u64) -> u32 {
    let gt = dataset.label(sample);
    let mut rng = rng_for(seed, sample);
    if stratified01(seed, sample as u64) < target_accuracy.clamp(0.0, 1.0) {
        gt
    } else {
        // A wrong label distinct from the ground truth.
        let mut wrong = rng.gen_range(1..=IMAGENET_CLASSES);
        if wrong == gt {
            wrong = if gt == IMAGENET_CLASSES { 1 } else { gt + 1 };
        }
        wrong
    }
}

/// Predicts detections: each ground-truth object is found with probability
/// `target_map` (with tight boxes, no-false-positive mAP equals recall),
/// plus occasional low-scored false positives that exercise the
/// precision-recall machinery without moving the score materially.
#[must_use]
pub fn detect(dataset: &SyntheticCoco, sample: usize, target_map: f64, seed: u64) -> Vec<Detection> {
    let gt = dataset.objects(sample);
    let mut rng = rng_for(seed, sample);
    let mut out = Vec::new();
    // The 101-point interpolation floor and the occasional false positive
    // shave ~4% off the raw hit rate; compensate so the dataset-level mAP
    // lands on target.
    let hit_rate = (target_map * 1.045).clamp(0.0, 1.0);
    for (oi, obj) in gt.iter().enumerate() {
        if stratified01(seed, (sample * 8 + oi) as u64) < hit_rate {
            // Tiny jitter: IoU stays above the strictest 0.95 threshold.
            let jx = rng.gen_range(-0.001..0.001f32);
            let jy = rng.gen_range(-0.001..0.001f32);
            out.push(Detection {
                class: obj.class,
                score: rng.gen_range(0.6..0.99),
                bbox: BBox::new(
                    obj.bbox.x_min + jx,
                    obj.bbox.y_min + jy,
                    obj.bbox.x_max + jx,
                    obj.bbox.y_max + jy,
                ),
            });
        }
    }
    // Rare low-confidence false positive.
    if rng.gen_bool(0.05) {
        out.push(Detection {
            class: rng.gen_range(1..=COCO_CLASSES),
            score: rng.gen_range(0.05..0.15),
            bbox: BBox::new(0.01, 0.01, 0.05, 0.05),
        });
    }
    out
}

/// Predicts a segmentation map: each pixel keeps its ground-truth label
/// with probability `pixel_accuracy`, otherwise flips to a random other
/// class. Use [`pixel_accuracy_for_miou`] to derive the rate from a target
/// mIoU.
#[must_use]
pub fn segment(dataset: &SyntheticAde20k, sample: usize, pixel_accuracy: f64, seed: u64) -> LabelMap {
    let gt = dataset.label_map(sample);
    let mut rng = rng_for(seed, sample);
    let mut pred = gt.clone();
    let base = (sample as u64) << 20;
    for (pi, l) in pred.labels.iter_mut().enumerate() {
        if stratified01(seed, base + pi as u64) >= pixel_accuracy.clamp(0.0, 1.0) {
            let mut wrong = rng.gen_range(0..ADE20K_CLASSES);
            if wrong == *l {
                wrong = (wrong + 1) % ADE20K_CLASSES;
            }
            *l = wrong;
        }
    }
    pred
}

/// Process-wide memo for [`pixel_accuracy_for_miou`], keyed by the full
/// identity of the inversion: dataset generator parameters plus the exact
/// target bits. The bisection below costs 24 probes x up-to-64 simulated
/// `segment()` calls, and every suite run over the same dataset scale
/// repeats it with identical inputs — across a parallel sweep the same
/// inversion would otherwise run once per (chip, backend) pair.
///
/// [`noise_sigma_for_psnr`] keeps the analogous memo (same shape, same
/// lock discipline) so a sweep's super-resolution cells share one
/// inversion per `(dataset, target)` pair too.
static MIOU_CALIBRATION: std::sync::Mutex<Option<CalibrationMap>> =
    std::sync::Mutex::new(None);

/// `(dataset seed, len, resolution, target-mIoU bits)`.
type MiouCalKey = (u64, usize, usize, u64);

/// [`MiouCalKey`] -> pixel accuracy.
type CalibrationMap = std::collections::HashMap<MiouCalKey, f64>;

/// Process-wide memo for [`noise_sigma_for_psnr`], keyed by
/// `(dataset seed, len, HR height, HR width, target-PSNR bits)` -> sigma.
static PSNR_CALIBRATION: std::sync::Mutex<Option<PsnrCalibrationMap>> =
    std::sync::Mutex::new(None);

type PsnrCalibrationMap = std::collections::HashMap<(u64, usize, usize, usize, u64), f64>;

/// Inverts the PSNR curve for this dataset's dynamic range: the noise
/// sigma at which [`reconstruct`]'s predictions land on `target_psnr`.
///
/// The inversion itself is closed-form (`sigma = peak * 10^(-psnr/20)`
/// with the synthetic pipeline's unit peak), but like
/// [`pixel_accuracy_for_miou`] the result is memoized process-wide on the
/// dataset's identity plus the exact target bits, computed outside the
/// lock — every `(chip, backend)` pair sweeping the same dataset shares
/// one inversion, and the memo's hit path is what a future non-closed-form
/// quality model (a measured PSNR curve, say) would need anyway.
#[must_use]
pub fn noise_sigma_for_psnr(dataset: &SyntheticDiv2k, target_psnr: f64) -> f64 {
    use mobile_data::datasets::Dataset;
    let (h, w) = dataset.hr_size();
    let key = (dataset.seed(), dataset.len(), h, w, target_psnr.to_bits());
    {
        let mut cache = PSNR_CALIBRATION.lock().unwrap();
        if let Some(&hit) = cache.get_or_insert_with(Default::default).get(&key) {
            return hit;
        }
    }
    // Invert outside the lock, mirroring the mIoU calibration: other
    // dataset keys should not wait, and a rare duplicate is deterministic.
    let sigma = mobile_metrics::psnr::noise_sigma_for_psnr(target_psnr, 1.0);
    let mut cache = PSNR_CALIBRATION.lock().unwrap();
    cache.get_or_insert_with(Default::default).insert(key, sigma);
    sigma
}

/// Numerically inverts the mIoU curve: finds the per-pixel accuracy that
/// produces `target_miou` on this dataset's class statistics.
///
/// Deterministic (fixed calibration seed) and monotone, solved by
/// bisection over a 24-sample calibration subset. Results are memoized
/// process-wide on `(dataset seed, len, resolution, target bits)`, so
/// concurrent benchmark runs over the same dataset pay for the bisection
/// once.
///
/// # Panics
///
/// Panics if the dataset has no samples.
#[must_use]
pub fn pixel_accuracy_for_miou(dataset: &SyntheticAde20k, target_miou: f64) -> f64 {
    use mobile_data::datasets::Dataset;
    let key = (dataset.seed(), dataset.len(), dataset.resolution(), target_miou.to_bits());
    {
        let mut cache = MIOU_CALIBRATION.lock().unwrap();
        if let Some(&hit) = cache.get_or_insert_with(Default::default).get(&key) {
            return hit;
        }
    }
    // Shipped table first, then bisect outside the lock: other dataset
    // keys should not wait on this one, and a rare duplicate bisection is
    // deterministic anyway.
    let q = SHIPPED_MIOU_CALIBRATION
        .iter()
        .find(|(k, _)| *k == key)
        .map_or_else(|| pixel_accuracy_for_miou_uncached(dataset, target_miou), |&(_, bits)| {
            f64::from_bits(bits)
        });
    let mut cache = MIOU_CALIBRATION.lock().unwrap();
    cache.get_or_insert_with(Default::default).insert(key, q);
    q
}

/// The calibration seed [`pixel_accuracy_for_miou`] probes with.
const MIOU_CALIBRATION_SEED: u64 = 0xCA11_B8A7E;

/// Shipped calibration table: bisection results for the standard
/// benchmark configurations, keyed exactly like the process memo
/// (`(dataset seed, len, resolution, target-mIoU bits)` -> accuracy
/// bits). MLPerf distributions ship calibration data alongside the
/// benchmark; this table plays that role for the synthetic quality model,
/// sparing the suite's hot path the one-time 24-probe bisection that
/// otherwise lands inside the first segmentation run of a sweep. Every
/// entry is verified bit-exact against the live bisection by
/// `shipped_calibration_matches_bisection` below, which also prints the
/// corrected row if the quality model or dataset generator ever changes.
const SHIPPED_MIOU_CALIBRATION: &[(MiouCalKey, u64)] = &[
    // V1.0 segmentation quality gate on the Reduced(48), seed-7,
    // resolution-64 dataset every smoke-rules suite run uses.
    ((7, 48, 64, 0x3fe1_3868_fd19_9bb3), 0x3fed_91a5_f000_0000),
];

fn pixel_accuracy_for_miou_uncached(dataset: &SyntheticAde20k, target_miou: f64) -> f64 {
    use mobile_data::datasets::Dataset;
    use mobile_metrics::miou::{benchmark_eval_classes, ConfusionMatrix};
    assert!(dataset.len() > 0);
    // Each probe simulates `segment()` on the same calibration subset, and
    // `segment()` flips pixel `pi` exactly when its stratified01 draw —
    // which depends only on (seed, sample, pi), never on the probed
    // accuracy `q` — lands at or above `q`. So the 24-probe bisection can
    // hoist every q-independent quantity out of the loop: the ground-truth
    // maps, the per-pixel flip thresholds, the all-correct diagonal of the
    // confusion matrix, and even the wrong-label RNG stream itself — the
    // k-th flipped pixel (in pixel order) consumes `segment()`'s k-th draw
    // no matter *which* pixel it is, so one lazily-extended draw vector
    // per sample serves every probe.
    //
    // The bisection bracket then carries the partition the probes need:
    // once `hi` has moved down, every pixel with threshold >= hi flips at
    // *every* remaining probe (all future probes are < hi), and once `lo`
    // has moved up, pixels with threshold <= lo can never flip again. Each
    // sample therefore keeps an `always` list (pixel order, settled
    // flippers) and an `active` band (lo < threshold < hi) that roughly
    // halves at every probe — no per-probe full-image scan and no sorted
    // index to build. A probe merges `always` with the passing slice of
    // `active`, preserving pixel order so draw k lands on the k-th flipped
    // pixel exactly as `segment()`'s serial walk would. The resulting
    // confusion counts are integer-identical to a full `record_maps` pass,
    // so the measured mIoU (and therefore the bisection result) matches
    // the naive probe bit-for-bit. The tests below keep the naive probe as
    // an oracle.
    struct CalSample {
        gt: LabelMap,
        /// Pixels with threshold >= hi — flipped at every remaining probe.
        /// Pixel order.
        always: Vec<u32>,
        /// Undecided pixels (lo < threshold < hi), pixel order.
        active: Vec<(u32, f64)>,
        /// `segment()`'s wrong-label draw stream, extended on demand.
        draws: Vec<u8>,
        rng: StdRng,
    }
    /// Merges two pixel-index lists, each already in pixel order.
    fn merge_sorted(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }
    let n = dataset.len().min(64);
    let mut samples: Vec<CalSample> = (0..n)
        .map(|i| {
            let gt = dataset.label_map(i);
            let base = (i as u64) << 20;
            let active = (0..gt.labels.len())
                .map(|pi| (pi as u32, stratified01(MIOU_CALIBRATION_SEED, base + pi as u64)))
                .collect();
            CalSample {
                gt,
                always: Vec::new(),
                active,
                draws: Vec::new(),
                rng: rng_for(MIOU_CALIBRATION_SEED, i),
            }
        })
        .collect();
    let mut gt_counts = vec![0u64; ADE20K_CLASSES as usize];
    for s in &samples {
        for &l in &s.gt.labels {
            gt_counts[l as usize] += 1;
        }
    }
    let eval_classes = benchmark_eval_classes();
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        let q = mid.clamp(0.0, 1.0);
        let mut cm = ConfusionMatrix::new(ADE20K_CLASSES as usize);
        let mut flipped = vec![0u64; ADE20K_CLASSES as usize];
        /// One flip: the k-th flipped pixel (pixel order) takes the k-th
        /// wrong-label draw, extending the sample's draw stream on demand
        /// (k never skips ahead, so the stream grows one draw at a time in
        /// `segment()`'s exact order).
        fn flip_one(
            cm: &mut ConfusionMatrix,
            flipped: &mut [u64],
            s: &mut CalSample,
            k: usize,
            pi: u32,
        ) {
            if k == s.draws.len() {
                s.draws.push(s.rng.gen_range(0..ADE20K_CLASSES));
            }
            let l = s.gt.labels[pi as usize];
            let mut wrong = s.draws[k];
            if wrong == l {
                wrong = (wrong + 1) % ADE20K_CLASSES;
            }
            cm.record(l, wrong);
            flipped[l as usize] += 1;
        }
        for s in &mut samples {
            // Merge the settled flippers with the passing active pixels,
            // keeping pixel order across both lists.
            let mut k = 0usize;
            let mut ai = 0usize;
            for idx in 0..s.active.len() {
                let (pi, t) = s.active[idx];
                if t < q {
                    continue;
                }
                while ai < s.always.len() && s.always[ai] < pi {
                    let a = s.always[ai];
                    ai += 1;
                    flip_one(&mut cm, &mut flipped, s, k, a);
                    k += 1;
                }
                flip_one(&mut cm, &mut flipped, s, k, pi);
                k += 1;
            }
            while ai < s.always.len() {
                let a = s.always[ai];
                ai += 1;
                flip_one(&mut cm, &mut flipped, s, k, a);
                k += 1;
            }
        }
        for (c, (&total, &bad)) in gt_counts.iter().zip(&flipped).enumerate() {
            cm.record_n(c as u8, c as u8, total - bad);
        }
        if cm.mean_iou(&eval_classes) < target_miou {
            // Accuracy goes up: thresholds <= mid can never flip again.
            lo = mid;
            for s in &mut samples {
                s.active.retain(|&(_, t)| t > mid);
            }
        } else {
            // Accuracy comes down: thresholds >= mid flip at every
            // remaining probe — settle them into `always`.
            hi = mid;
            for s in &mut samples {
                let mut moved = Vec::new();
                s.active.retain(|&(pi, t)| {
                    if t >= mid {
                        moved.push(pi);
                        false
                    } else {
                        true
                    }
                });
                if !moved.is_empty() {
                    let settled = std::mem::take(&mut s.always);
                    s.always = merge_sorted(settled, moved);
                }
            }
        }
    }
    (lo + hi) / 2.0
}

/// Predicts an answer span: exact with probability `target_f1` adjusted
/// for the partial credit of near misses; otherwise off-by-one (partial
/// F1) or disjoint (zero F1).
#[must_use]
pub fn answer(dataset: &SyntheticSquad, sample: usize, target_f1: f64, seed: u64) -> AnswerSpan {
    let qa = dataset.sample(sample);
    let gt = qa.answer;
    let mut rng = rng_for(seed, sample);
    // Near-miss rate is fixed; exact-match rate solves
    //   E[F1] = p_exact + p_miss * f1_miss = target.
    let p_miss = 0.08;
    let len = f64::from(gt.len());
    // Token F1 of an off-by-one span of the same length: overlap len-1.
    let f1_miss = if gt.len() > 1 { (len - 1.0) / len } else { 0.0 };
    // E[F1] = p_exact + p_miss * f1_miss  =>  solve for p_exact.
    let p_exact = (target_f1 - p_miss * f1_miss).clamp(0.0, 1.0);
    let roll: f64 = stratified01(seed, sample as u64);
    if roll < p_exact {
        gt
    } else if roll < p_exact + p_miss && gt.start > 0 && gt.len() > 1 {
        // Off-by-one span of the same length: overlap len-1.
        AnswerSpan::new(gt.start - 1, gt.end - 1)
    } else {
        // Disjoint span early in the sequence.
        let start = rng.gen_range(0..5u32);
        AnswerSpan::new(start, start + 1)
    }
}

/// Predicts a transcript: each reference word survives with probability
/// `target_word_accuracy`; errors split into substitutions (70%),
/// deletions (15%) and insertions (15%), so the corpus WER lands on
/// `1 - target_word_accuracy`.
#[must_use]
pub fn transcribe(
    dataset: &SyntheticLibriSpeech,
    sample: usize,
    target_word_accuracy: f64,
    seed: u64,
) -> Vec<u32> {
    let gt = dataset.utterance(sample).transcript;
    let mut rng = rng_for(seed, sample);
    let err = (1.0 - target_word_accuracy).clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(gt.len());
    for (wi, &w) in gt.iter().enumerate() {
        let roll = stratified01(seed, (sample * 32 + wi) as u64);
        if roll >= 0.85 * err {
            out.push(w); // survives
        } else if roll < 0.70 * err {
            // Substitution: a different word.
            let mut wrong = rng.gen_range(0..SPEECH_VOCAB);
            if wrong == w {
                wrong = (wrong + 1) % SPEECH_VOCAB;
            }
            out.push(wrong);
        }
        // else (0.70e..0.85e): deletion — emit nothing.
        // Insertions at 0.15e per reference word.
        if rng.gen_bool(0.15 * err) {
            out.push(rng.gen_range(0..SPEECH_VOCAB));
        }
    }
    out
}

/// Reconstructs a super-resolved image: the ground truth plus zero-mean
/// uniform noise whose variance hits the target PSNR exactly in
/// expectation (`sigma = peak * 10^(-psnr/20)`, uniform half-width
/// `sigma * sqrt(3)`). Pixels are deliberately not clamped so the measured
/// PSNR matches the closed form.
#[must_use]
pub fn reconstruct(dataset: &SyntheticDiv2k, sample: usize, noise_sigma: f64, seed: u64) -> Image {
    let mut img = dataset.high_res(sample);
    let mut rng = rng_for(seed, sample);
    let half_width = (noise_sigma * 3f64.sqrt()) as f32;
    if half_width > 0.0 {
        for v in &mut img.data {
            *v += rng.gen_range(-half_width..half_width);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobile_metrics::accuracy::{squad_scores, top1_accuracy};
    use mobile_metrics::map::coco_map;
    use mobile_metrics::miou::benchmark_miou;

    #[test]
    fn classification_hits_target_rate() {
        let ds = SyntheticImageNet::with_len(1, 5000);
        let target = 0.7619;
        let gt: Vec<u32> = (0..5000).map(|i| ds.label(i)).collect();
        let pred: Vec<u32> = (0..5000).map(|i| classify(&ds, i, target, 9)).collect();
        let acc = top1_accuracy(&gt, &pred);
        assert!((acc - target).abs() < 0.02, "accuracy {acc} vs target {target}");
    }

    #[test]
    fn classification_never_accidentally_correct_when_wrong() {
        let ds = SyntheticImageNet::with_len(2, 500);
        let pred: Vec<u32> = (0..500).map(|i| classify(&ds, i, 0.0, 3)).collect();
        let gt: Vec<u32> = (0..500).map(|i| ds.label(i)).collect();
        assert_eq!(top1_accuracy(&gt, &pred), 0.0);
    }

    #[test]
    fn detection_map_tracks_target() {
        let ds = SyntheticCoco::with_len(3, 400);
        let target = 0.244;
        let gts: Vec<_> = (0..400).map(|i| ds.objects(i)).collect();
        let preds: Vec<_> = (0..400).map(|i| detect(&ds, i, target, 5)).collect();
        let map = coco_map(&gts, &preds);
        assert!((map - target).abs() < 0.05, "mAP {map} vs target {target}");
    }

    #[test]
    fn miou_inversion_converges() {
        let ds = SyntheticAde20k::with_params(7, 100, 48);
        let target = 0.548;
        let q = pixel_accuracy_for_miou(&ds, target);
        assert!((0.3..1.0).contains(&q), "q = {q}");
        let gts: Vec<_> = (0..100).map(|i| ds.label_map(i)).collect();
        let preds: Vec<_> = (0..100).map(|i| segment(&ds, i, q, 11)).collect();
        let miou = benchmark_miou(&gts, &preds);
        assert!((miou - target).abs() < 0.04, "mIoU {miou} vs target {target}");
    }

    #[test]
    fn miou_calibration_cache_matches_uncached_bisection() {
        let ds = SyntheticAde20k::with_params(21, 80, 32);
        let target = 0.51;
        // First call populates the cache, second must hit it; both must be
        // bit-identical to the raw bisection.
        let first = pixel_accuracy_for_miou(&ds, target);
        let second = pixel_accuracy_for_miou(&ds, target);
        let raw = pixel_accuracy_for_miou_uncached(&ds, target);
        assert_eq!(first.to_bits(), raw.to_bits());
        assert_eq!(second.to_bits(), raw.to_bits());
        // A different target must not collide with the cached key.
        let other = pixel_accuracy_for_miou(&ds, 0.60);
        assert!(other > first, "higher mIoU target needs higher pixel accuracy");
    }

    #[test]
    fn shipped_calibration_matches_bisection() {
        for &((seed, len, resolution, target_bits), q_bits) in SHIPPED_MIOU_CALIBRATION {
            let ds = SyntheticAde20k::with_params(seed, len, resolution);
            let target = f64::from_bits(target_bits);
            let fresh = pixel_accuracy_for_miou_uncached(&ds, target);
            assert_eq!(
                fresh.to_bits(),
                q_bits,
                "stale shipped calibration row; regenerate as \
                 (({seed}, {len}, {resolution}, {target_bits:#018x}), {:#018x})",
                fresh.to_bits(),
            );
        }
    }

    /// The historical probe: simulate `segment()` in full and score the
    /// whole maps. The production probe hoists the q-independent work out
    /// of the bisection; this oracle pins its bit-identity.
    fn naive_bisection(dataset: &SyntheticAde20k, target_miou: f64) -> f64 {
        use mobile_data::datasets::Dataset;
        use mobile_metrics::miou::{benchmark_eval_classes, ConfusionMatrix};
        let probe = |q: f64| -> f64 {
            let mut cm = ConfusionMatrix::new(ADE20K_CLASSES as usize);
            let n = dataset.len().min(64);
            for i in 0..n {
                let gt = dataset.label_map(i);
                let pred = segment(dataset, i, q, MIOU_CALIBRATION_SEED);
                cm.record_maps(&gt, &pred);
            }
            cm.mean_iou(&benchmark_eval_classes())
        };
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            if probe(mid) < target_miou {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }

    #[test]
    fn fast_calibration_probe_matches_naive_probe_bitwise() {
        // Mixed geometry and several targets: the incremental
        // confusion-matrix probe must reproduce the full-simulation
        // bisection to the last bit.
        for (seed, len, res) in [(21, 80, 32), (3, 48, 64), (9, 5, 16)] {
            let ds = SyntheticAde20k::with_params(seed, len, res);
            for target in [0.12, 0.51, 0.60, 0.87, 0.999] {
                let fast = pixel_accuracy_for_miou_uncached(&ds, target);
                let naive = naive_bisection(&ds, target);
                assert_eq!(
                    fast.to_bits(),
                    naive.to_bits(),
                    "probe divergence: seed {seed} len {len} res {res} target {target}"
                );
            }
        }
    }

    #[test]
    fn psnr_calibration_cache_matches_closed_form() {
        let ds = SyntheticDiv2k::with_params(7, 20, 72, 128);
        let target = 33.58;
        let first = noise_sigma_for_psnr(&ds, target);
        let second = noise_sigma_for_psnr(&ds, target);
        let raw = mobile_metrics::psnr::noise_sigma_for_psnr(target, 1.0);
        assert_eq!(first.to_bits(), raw.to_bits());
        assert_eq!(second.to_bits(), raw.to_bits());
        // Distinct targets and datasets get distinct keys.
        let other = noise_sigma_for_psnr(&ds, 20.0);
        assert!(other > first, "lower PSNR target tolerates more noise");
        let ds2 = SyntheticDiv2k::with_params(8, 20, 72, 128);
        assert_eq!(noise_sigma_for_psnr(&ds2, target).to_bits(), raw.to_bits());
    }

    #[test]
    fn qa_f1_tracks_target() {
        let ds = SyntheticSquad::with_len(5, 2000);
        let target = 0.9398;
        let gts: Vec<_> = (0..2000).map(|i| ds.sample(i).answer).collect();
        let preds: Vec<_> = (0..2000).map(|i| answer(&ds, i, target, 13)).collect();
        let (f1, em) = squad_scores(&gts, &preds);
        assert!((f1 - target).abs() < 0.02, "F1 {f1} vs target {target}");
        assert!(em <= f1, "EM {em} must not exceed F1 {f1}");
    }

    #[test]
    fn transcription_wer_tracks_target() {
        let ds = SyntheticLibriSpeech::with_len(3, 500);
        let target_acc = 0.925; // WER 7.5%
        let refs: Vec<Vec<u32>> = (0..500).map(|i| ds.utterance(i).transcript).collect();
        let hyps: Vec<Vec<u32>> = (0..500).map(|i| transcribe(&ds, i, target_acc, 7)).collect();
        let wer = mobile_metrics::wer::corpus_wer(&refs, &hyps);
        assert!((wer - 0.075).abs() < 0.015, "WER {wer:.4} vs target 0.075");
    }

    #[test]
    fn perfect_transcription_at_accuracy_one() {
        let ds = SyntheticLibriSpeech::with_len(4, 50);
        for i in 0..50 {
            assert_eq!(transcribe(&ds, i, 1.0, 9), ds.utterance(i).transcript);
        }
    }

    #[test]
    fn reconstruction_psnr_tracks_target() {
        let ds = SyntheticDiv2k::with_params(5, 16, 64, 96);
        let target_db = 33.0;
        let sigma = mobile_metrics::psnr::noise_sigma_for_psnr(target_db, 1.0);
        let refs: Vec<Image> = (0..16).map(|i| ds.high_res(i)).collect();
        let recs: Vec<Image> = (0..16).map(|i| reconstruct(&ds, i, sigma, 3)).collect();
        let psnr = mobile_metrics::psnr::mean_psnr_db(&refs, &recs, 1.0);
        assert!((psnr - target_db).abs() < 0.5, "PSNR {psnr:.2} vs {target_db}");
    }

    #[test]
    fn predictions_are_deterministic() {
        let ds = SyntheticCoco::with_len(9, 50);
        let a = detect(&ds, 7, 0.3, 42);
        let b = detect(&ds, 7, 0.3, 42);
        assert_eq!(a, b);
        let c = detect(&ds, 7, 0.3, 43);
        // Different seed generally differs (not guaranteed per-sample, but
        // across many samples it must).
        let all_a: Vec<_> = (0..50).map(|i| detect(&ds, i, 0.3, 42)).collect();
        let all_c: Vec<_> = (0..50).map(|i| detect(&ds, i, 0.3, 43)).collect();
        assert!(all_a != all_c || a == c);
    }
}

