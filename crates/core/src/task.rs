//! Benchmark tasks and the suite definition (paper Table 1).

use nn_graph::models::ModelId;
use serde::{Deserialize, Serialize};
use soc_sim::catalog::Generation;
use std::fmt;

/// The four ML task areas of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Task {
    /// ImageNet classification (224x224).
    ImageClassification,
    /// COCO object detection (300/320).
    ObjectDetection,
    /// ADE20K semantic segmentation (512x512).
    ImageSegmentation,
    /// SQuAD v1.1 question answering (seq 384).
    QuestionAnswering,
    /// Speech recognition (extension task, paper Appendix E).
    SpeechRecognition,
    /// 2x super-resolution (extension task, paper Appendix E).
    SuperResolution,
}

impl Task {
    /// The four tasks of the published suite, in the order the app runs
    /// them.
    pub const ALL: [Task; 4] = [
        Task::ImageClassification,
        Task::ObjectDetection,
        Task::ImageSegmentation,
        Task::QuestionAnswering,
    ];

    /// The extension tasks (paper Appendix E: speech and super-resolution).
    pub const EXTENSIONS: [Task; 2] = [Task::SpeechRecognition, Task::SuperResolution];

    /// Name of the task's quality metric.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            Task::ImageClassification => "Top-1 accuracy",
            Task::ObjectDetection => "mAP",
            Task::ImageSegmentation => "mIoU",
            Task::QuestionAnswering => "F1",
            Task::SpeechRecognition => "word accuracy (1 - WER)",
            Task::SuperResolution => "PSNR (dB)",
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Task::ImageClassification => "Image classification",
            Task::ObjectDetection => "Object detection",
            Task::ImageSegmentation => "Semantic segmentation",
            Task::QuestionAnswering => "Question answering",
            Task::SpeechRecognition => "Speech recognition",
            Task::SuperResolution => "Super-resolution",
        };
        f.write_str(s)
    }
}

/// Suite version (maps 1:1 to the hardware [`Generation`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SuiteVersion {
    /// First round, late 2020.
    V0_7,
    /// Second round, mid 2021 (detection model upgraded to MobileDets).
    V1_0,
}

impl SuiteVersion {
    /// Both versions.
    pub const ALL: [SuiteVersion; 2] = [SuiteVersion::V0_7, SuiteVersion::V1_0];

    /// The hardware generation that submitted to this version.
    #[must_use]
    pub fn generation(self) -> Generation {
        match self {
            SuiteVersion::V0_7 => Generation::V0_7,
            SuiteVersion::V1_0 => Generation::V1_0,
        }
    }
}

impl fmt::Display for SuiteVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteVersion::V0_7 => f.write_str("v0.7"),
            SuiteVersion::V1_0 => f.write_str("v1.0"),
        }
    }
}

/// One row of paper Table 1: a task with its reference model, dataset and
/// quality gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkDef {
    /// Task area.
    pub task: Task,
    /// Reference model.
    pub model: ModelId,
    /// Dataset description.
    pub dataset: String,
    /// FP32 reference quality (metric units, e.g. 0.7619 Top-1).
    pub fp32_quality: f64,
    /// Minimum fraction of FP32 quality a submission must retain.
    pub target_fraction: f64,
}

impl BenchmarkDef {
    /// The absolute minimum quality a submission must reach.
    #[must_use]
    pub fn quality_target(&self) -> f64 {
        self.fp32_quality * self.target_fraction
    }
}

/// The Table 1 suite for a version.
#[must_use]
pub fn suite(version: SuiteVersion) -> Vec<BenchmarkDef> {
    let detection = match version {
        // v0.7: SSD-MobileNet v2, 93% of FP32 (24.4 mAP -> 22.7 target).
        SuiteVersion::V0_7 => BenchmarkDef {
            task: Task::ObjectDetection,
            model: ModelId::SsdMobileNetV2,
            dataset: "COCO 2017 (300x300)".to_owned(),
            fp32_quality: 0.244,
            target_fraction: 0.93,
        },
        // v1.0: MobileDets, 95% of FP32 (28.5 mAP -> 27.1 target).
        SuiteVersion::V1_0 => BenchmarkDef {
            task: Task::ObjectDetection,
            model: ModelId::MobileDetSsd,
            dataset: "COCO 2017 (320x320)".to_owned(),
            fp32_quality: 0.285,
            target_fraction: 0.95,
        },
    };
    vec![
        BenchmarkDef {
            task: Task::ImageClassification,
            model: ModelId::MobileNetEdgeTpu,
            dataset: "ImageNet 2012 (224x224)".to_owned(),
            fp32_quality: 0.7619,
            target_fraction: 0.98,
        },
        detection,
        BenchmarkDef {
            task: Task::ImageSegmentation,
            model: ModelId::DeepLabV3Plus,
            dataset: "ADE20K (512x512)".to_owned(),
            fp32_quality: 0.548,
            target_fraction: 0.97,
        },
        BenchmarkDef {
            task: Task::QuestionAnswering,
            model: ModelId::MobileBert,
            dataset: "Mini SQuAD v1.1 dev".to_owned(),
            fp32_quality: 0.9398,
            target_fraction: 0.93,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_four_tasks() {
        for v in SuiteVersion::ALL {
            let s = suite(v);
            assert_eq!(s.len(), 4);
            let tasks: Vec<Task> = s.iter().map(|b| b.task).collect();
            assert_eq!(tasks, Task::ALL.to_vec());
        }
    }

    #[test]
    fn detection_model_upgraded_in_v10() {
        let v07 = suite(SuiteVersion::V0_7);
        let v10 = suite(SuiteVersion::V1_0);
        assert_eq!(v07[1].model, ModelId::SsdMobileNetV2);
        assert_eq!(v10[1].model, ModelId::MobileDetSsd);
        // More stringent quality target in v1.0 (paper Table 1 caption).
        assert!(v10[1].target_fraction > v07[1].target_fraction);
        assert!(v10[1].fp32_quality > v07[1].fp32_quality);
    }

    #[test]
    fn quality_targets_match_table1() {
        let s = suite(SuiteVersion::V0_7);
        // 98% of 76.19% Top-1 = 74.66%.
        assert!((s[0].quality_target() - 0.7467).abs() < 1e-3);
        // 93% of 24.4 mAP = 22.7.
        assert!((s[1].quality_target() - 0.227).abs() < 1e-3);
        // 97% of 54.8 mIoU = 53.2.
        assert!((s[2].quality_target() - 0.5316).abs() < 1e-3);
        // 93% of 93.98 F1 = 87.4.
        assert!((s[3].quality_target() - 0.874).abs() < 1e-3);
    }

    #[test]
    fn all_targets_above_93_percent() {
        // Paper Section 8: "Our targets are all >93% FP32".
        for v in SuiteVersion::ALL {
            for b in suite(v) {
                assert!(b.target_fraction >= 0.93, "{:?}", b.task);
            }
        }
    }

    #[test]
    fn versions_map_to_generations() {
        assert_eq!(SuiteVersion::V0_7.generation(), Generation::V0_7);
        assert_eq!(SuiteVersion::V1_0.generation(), Generation::V1_0);
    }
}
