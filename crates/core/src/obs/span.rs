//! Wall-clock span tracing of the harness itself.
//!
//! The device-side observability layer ([`loadgen::trace`]) records
//! *simulated* time; this module records *host* time — what the runner
//! pool, the cache layers, and the report renderers actually spent, so
//! the harness can be profiled exactly the way MLPerf LoadGen separates
//! harness logging from benchmark measurement. Recording is hierarchical:
//! a [`Phase::Suite`] span per reproduce artifact, a [`Phase::Cell`] span
//! per benchmark run, and leaf spans for the compile / calibrate / plan /
//! execute / search-probe / report phases inside it.
//!
//! Spans land in per-thread ring buffers (one uncontended mutex per
//! thread, registered once in a process-wide list), so recording never
//! serializes pool workers against each other. Every span carries a
//! *track* — the pool-worker lane set by the runner's `par_map` — so
//! spans from short-lived scoped threads aggregate onto one stable
//! timeline per worker, which is what the Perfetto export renders.
//!
//! Everything is gated behind one relaxed atomic: with recording off
//! (the default) a [`span`] call is a load and a branch, and no label is
//! ever formatted. Recording is host-side only and never feeds back into
//! the simulation, so self-profiled runs score bit-identically to
//! unprofiled ones (`tests/parallel_determinism.rs` locks this down).

use crate::profile::perfetto::Events;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The harness phases a span can cover, from coarse to leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// One reproduce artifact (table, figure, scenario matrix).
    Suite,
    /// One benchmark-matrix cell end to end (accuracy + scenarios).
    Cell,
    /// Backend compilation of a `(chip, backend, model)` triple.
    Compile,
    /// Accuracy-mode calibration (prediction synthesis + scoring).
    Calibrate,
    /// Query-plan lowering of a compiled deployment.
    Plan,
    /// Performance execution (single-stream and offline legs).
    Execute,
    /// One scenario search (server QPS / multi-stream width bisection).
    SearchProbe,
    /// Report/table rendering.
    Report,
}

impl Phase {
    /// Stable lowercase name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Suite => "suite",
            Phase::Cell => "cell",
            Phase::Compile => "compile",
            Phase::Calibrate => "calibrate",
            Phase::Plan => "plan",
            Phase::Execute => "execute",
            Phase::SearchProbe => "search-probe",
            Phase::Report => "report",
        }
    }
}

/// One recorded host-side span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSpan {
    /// Which phase of the harness the span covers.
    pub phase: Phase,
    /// Free-form label (cell label, artifact name, triple).
    pub label: String,
    /// Pool-worker lane the span ran on ([`MAIN_TRACK`] for the driving
    /// thread, [`AUX_TRACK`] for helper threads outside the pool).
    pub track: u32,
    /// Start, in ns since the recorder epoch (first enable).
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

/// Track id of the main (driving) thread.
pub const MAIN_TRACK: u32 = 0;

/// Track id for threads outside the runner pool (accuracy-scoring scope
/// threads, the metrics HTTP server, ...).
pub const AUX_TRACK: u32 = u32::MAX;

/// Per-thread spans kept in a bounded ring: when full, the oldest span is
/// overwritten and the global dropped counter ticks, so a long-lived
/// process can leave recording on without unbounded growth.
const RING_CAPACITY: usize = 1 << 15;

#[derive(Debug, Default)]
struct ThreadBuf {
    /// Ring storage; `next` wraps once `spans` reaches capacity.
    spans: Mutex<(Vec<HostSpan>, usize)>,
}

impl ThreadBuf {
    fn push(&self, span: HostSpan) -> bool {
        let mut guard = self.spans.lock().unwrap();
        let (spans, next) = &mut *guard;
        if spans.len() < RING_CAPACITY {
            spans.push(span);
            false
        } else {
            let slot = *next;
            *next = (slot + 1) % RING_CAPACITY;
            spans[slot] = span;
            true
        }
    }

    fn take(&self) -> Vec<HostSpan> {
        let mut guard = self.spans.lock().unwrap();
        guard.1 = 0;
        std::mem::take(&mut guard.0)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TLS_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    static TLS_TRACK: Cell<u32> = const { Cell::new(AUX_TRACK) };
}

/// Turns span recording on or off process-wide. The first enable pins the
/// recorder epoch all timestamps are relative to.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Assigns the calling thread's track (pool-worker lane). The runner's
/// `par_map` tags worker `w` as track `w + 1`; the driving thread is
/// [`MAIN_TRACK`]; untagged threads default to [`AUX_TRACK`].
pub fn set_track(track: u32) {
    TLS_TRACK.with(|t| t.set(track));
}

/// The calling thread's current track.
#[must_use]
pub fn current_track() -> u32 {
    TLS_TRACK.with(Cell::get)
}

fn record(span: HostSpan) {
    let dropped = TLS_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf::default());
            registry().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        buf.push(span)
    });
    if dropped {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// An RAII span: construction stamps the start, drop stamps the duration
/// and deposits the span into the calling thread's ring buffer. A no-op
/// (and no label formatting) when recording is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    active: Option<(Phase, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((phase, label, started)) = self.active.take() else { return };
        let start_ns = started.duration_since(epoch()).as_nanos().min(u128::from(u64::MAX)) as u64;
        let dur_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        record(HostSpan { phase, label, track: current_track(), start_ns, dur_ns });
    }
}

/// Opens a span of `phase`; `label` is only evaluated when recording is
/// on. Bind the guard to a scope (`let _span = obs::span::span(...)`) —
/// dropping it closes the span.
pub fn span<F: FnOnce() -> String>(phase: Phase, label: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard { active: Some((phase, label(), Instant::now())) }
}

/// Everything recorded so far: the spans (deterministically ordered by
/// start, track, phase, label) and how many were dropped to ring-buffer
/// bounds.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SelfProfile {
    /// All collected spans, across every thread that recorded any.
    pub spans: Vec<HostSpan>,
    /// Spans overwritten because a thread's ring buffer filled.
    pub dropped: u64,
}

impl SelfProfile {
    /// Spans of one phase.
    pub fn phase_spans(&self, phase: Phase) -> impl Iterator<Item = &HostSpan> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Sum of durations in one phase (ns). Nested spans double-count by
    /// design — this is per-phase attributed time, not wall-clock.
    #[must_use]
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_spans(phase).map(|s| s.dur_ns).sum()
    }

    /// Fraction of `[0, wall_ns]` covered by the union of this track's
    /// spans — the self-profile coverage figure (the acceptance bar is
    /// ≥95% on [`MAIN_TRACK`] over a `reproduce all`).
    #[must_use]
    pub fn track_coverage(&self, track: u32, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            return 0.0;
        }
        let mut intervals: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.track == track)
            .map(|s| (s.start_ns, s.start_ns.saturating_add(s.dur_ns).min(wall_ns)))
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = 0u64;
        for (start, end) in intervals {
            let start = start.max(cursor);
            if end > start {
                covered += end - start;
                cursor = end;
            }
        }
        covered as f64 / wall_ns as f64
    }
}

/// Collects and clears every thread's spans. The result is ordered
/// deterministically; the host *timestamps* inside it are wall-clock and
/// naturally vary run to run.
#[must_use]
pub fn drain() -> SelfProfile {
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut spans: Vec<HostSpan> = bufs.iter().flat_map(|b| b.take()).collect();
    spans.sort_by(|a, b| {
        (a.start_ns, a.track, a.phase, &a.label).cmp(&(b.start_ns, b.track, b.phase, &b.label))
    });
    SelfProfile { spans, dropped: DROPPED.swap(0, Ordering::Relaxed) }
}

/// Renders a self-profile as a Perfetto/Chrome trace-event timeline of
/// the *host* run: one process named `harness`, one thread track per pool
/// worker (`main`, `worker-0`, ..., `aux` — worker names match the pool
/// report), one complete slice per span named `phase: label`. Open the
/// output directly in `ui.perfetto.dev`.
#[must_use]
pub fn self_profile_perfetto_json(profile: &SelfProfile) -> String {
    const PID: u32 = 1;
    let mut tracks: Vec<u32> = profile.spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut events = Events::new();
    events.meta(PID, 0, "process_name", "harness");
    for &track in &tracks {
        let name = match track {
            MAIN_TRACK => "main".to_owned(),
            AUX_TRACK => "aux".to_owned(),
            // Pool worker `w` records on track `w + 1`; name the track
            // after the worker so it cross-references the pool report.
            w => format!("worker-{}", w - 1),
        };
        events.meta(PID, track, "thread_name", &name);
    }
    // Emission sorted by start keeps `ts` non-decreasing per track.
    for span in &profile.spans {
        events.slice(
            PID,
            span.track,
            &format!("{}: {}", span.phase.name(), span.label),
            span.start_ns,
            span.dur_ns,
        );
    }
    events.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording tests share process-global state with each other (and
    /// with any other test in the binary), so they serialize on one lock
    /// and drain before/after.
    fn recording_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = recording_lock().lock().unwrap();
        set_enabled(false);
        let _ = drain();
        let mut evaluated = false;
        {
            let _span = span(Phase::Cell, || {
                evaluated = true;
                "never".into()
            });
        }
        assert!(!evaluated, "labels must not be formatted while disabled");
        assert!(drain().spans.is_empty());
    }

    #[test]
    fn spans_record_phase_label_track_and_nesting() {
        let _guard = recording_lock().lock().unwrap();
        set_enabled(true);
        let _ = drain();
        let previous_track = current_track();
        set_track(MAIN_TRACK);
        {
            let _outer = span(Phase::Suite, || "artifact".into());
            let _inner = span(Phase::Compile, || "chip/backend/model".into());
        }
        set_enabled(false);
        set_track(previous_track);
        let profile = drain();
        assert_eq!(profile.spans.len(), 2);
        // Outer span starts first but drops last: both orders visible.
        let suite = profile.phase_spans(Phase::Suite).next().unwrap();
        let compile = profile.phase_spans(Phase::Compile).next().unwrap();
        assert_eq!(suite.label, "artifact");
        assert_eq!(suite.track, MAIN_TRACK);
        assert!(suite.start_ns <= compile.start_ns);
        assert!(
            suite.start_ns + suite.dur_ns >= compile.start_ns + compile.dur_ns,
            "outer span must contain the inner one"
        );
    }

    #[test]
    fn threads_record_into_their_own_buffers() {
        let _guard = recording_lock().lock().unwrap();
        set_enabled(true);
        let _ = drain();
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                scope.spawn(move || {
                    set_track(w + 1);
                    let _span = span(Phase::Cell, || format!("cell-{w}"));
                });
            }
        });
        set_enabled(false);
        let profile = drain();
        assert_eq!(profile.spans.len(), 4);
        let mut tracks: Vec<u32> = profile.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        assert_eq!(tracks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn perfetto_export_has_one_track_per_worker() {
        let profile = SelfProfile {
            spans: vec![
                HostSpan {
                    phase: Phase::Suite,
                    label: "table1".into(),
                    track: MAIN_TRACK,
                    start_ns: 0,
                    dur_ns: 5_000,
                },
                HostSpan {
                    phase: Phase::Cell,
                    label: "d1100/cls".into(),
                    track: 1,
                    start_ns: 100,
                    dur_ns: 2_000,
                },
                HostSpan {
                    phase: Phase::Cell,
                    label: "sd888/cls".into(),
                    track: 2,
                    start_ns: 150,
                    dur_ns: 2_500,
                },
            ],
            dropped: 0,
        };
        let json = self_profile_perfetto_json(&profile);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.as_object().is_some());
        assert!(json.contains("\"harness\""));
        assert!(json.contains("\"main\""));
        // Tracks 1 and 2 carry pool workers 0 and 1.
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"worker-1\""));
        assert!(json.contains("cell: d1100/cls"));
        // Deterministic bytes for the same profile.
        assert_eq!(json, self_profile_perfetto_json(&profile));
    }

    #[test]
    fn coverage_unions_overlapping_spans() {
        let span_at = |start_ns: u64, dur_ns: u64| HostSpan {
            phase: Phase::Suite,
            label: String::new(),
            track: MAIN_TRACK,
            start_ns,
            dur_ns,
        };
        let profile = SelfProfile {
            // [0,60) and [40,100): union covers the full window despite
            // the overlap; a disjoint aux-track span must not count.
            spans: vec![
                span_at(0, 60),
                span_at(40, 60),
                HostSpan { track: AUX_TRACK, ..span_at(0, 100) },
            ],
            dropped: 0,
        };
        let cov = profile.track_coverage(MAIN_TRACK, 100);
        assert!((cov - 1.0).abs() < 1e-12, "{cov}");
        assert_eq!(profile.track_coverage(7, 100), 0.0);
        assert_eq!(profile.track_coverage(MAIN_TRACK, 0), 0.0);
        // Half-covered window.
        let half = SelfProfile { spans: vec![span_at(0, 50)], dropped: 0 };
        assert!((half.track_coverage(MAIN_TRACK, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ring_buffer_bounds_memory_and_counts_drops() {
        let buf = ThreadBuf::default();
        let mk = |i: u64| HostSpan {
            phase: Phase::Report,
            label: String::new(),
            track: AUX_TRACK,
            start_ns: i,
            dur_ns: 1,
        };
        for i in 0..RING_CAPACITY as u64 {
            assert!(!buf.push(mk(i)), "no drop until the ring fills");
        }
        assert!(buf.push(mk(RING_CAPACITY as u64)), "overflow overwrites the oldest");
        let spans = buf.take();
        assert_eq!(spans.len(), RING_CAPACITY);
        // Slot 0 now holds the newest span.
        assert_eq!(spans[0].start_ns, RING_CAPACITY as u64);
    }
}
