//! Streaming shard-merge metric primitives.
//!
//! The runner pool and the (future) fleet loops record metrics from many
//! threads at once; a single mutex-guarded counter or histogram would
//! serialize exactly the threads the pool exists to parallelize. The
//! primitives here shard state across cache-line-padded slots — each
//! thread hashes to a stable shard on first use and keeps hitting it —
//! so hot-path recording never contends, and readers pay the merge cost
//! instead: [`ShardedCounter::value`] sums the shards,
//! [`ShardedHistogram::merged`] folds the shards through
//! [`LatencyHistogram::merge`] (property-tested bucket-exact against a
//! single histogram fed the concatenated stream).
//!
//! Reads are *consistent in the streaming sense*: concurrent recorders
//! may land on either side of a read, but every read is monotone
//! non-decreasing in each shard, which is exactly the contract Prometheus
//! counters need.

use mobile_metrics::hist::LatencyHistogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of shards. Plenty for the pool sizes the runner uses (the
/// host's core count), small enough that merging stays trivial.
pub const SHARDS: usize = 16;

/// Cache-line padding so neighbouring shards don't false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

fn shard_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotone counter sharded across padded atomics: `add` touches only
/// the calling thread's shard; `value` sums all shards.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

impl ShardedCounter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        ShardedCounter {
            shards: [
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
                PaddedU64(AtomicU64::new(0)),
            ],
        }
    }

    /// Adds `n` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged total across all shards.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A [`LatencyHistogram`] sharded across per-thread slots: `record` locks
/// only the calling thread's shard (threads on distinct shards never
/// contend); [`ShardedHistogram::merged`] folds the shards into one
/// histogram via [`LatencyHistogram::merge`].
#[derive(Debug, Default)]
pub struct ShardedHistogram {
    shards: [Mutex<LatencyHistogram>; SHARDS],
}

impl ShardedHistogram {
    /// An empty sharded histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value on the calling thread's shard.
    pub fn record(&self, value: u64) {
        self.shards[shard_id()].lock().unwrap().record(value);
    }

    /// Total recorded count across shards.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().count()).sum()
    }

    /// Folds all shards into one histogram. Bucket-exact: equals a single
    /// histogram fed every shard's stream back to back.
    #[must_use]
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for shard in &self.shards {
            out.merge(&shard.lock().unwrap());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let counter = ShardedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8_000);
        counter.add(5);
        assert_eq!(counter.value(), 8_005);
    }

    #[test]
    fn sharded_histogram_matches_single_stream() {
        let sharded = ShardedHistogram::new();
        let mut values: Vec<u64> = Vec::new();
        for i in 0..4096u64 {
            values.push(i * i % 100_003 + 1);
        }
        std::thread::scope(|scope| {
            for chunk in values.chunks(512) {
                let sharded = &sharded;
                scope.spawn(move || {
                    for &v in chunk {
                        sharded.record(v);
                    }
                });
            }
        });
        let merged = sharded.merged();
        let single = LatencyHistogram::from_values(&values);
        assert_eq!(merged, single, "shard-merge must be bucket-exact");
        assert_eq!(sharded.count(), values.len() as u64);
    }

    #[test]
    fn thread_shard_is_stable_within_a_thread() {
        assert_eq!(shard_id(), shard_id());
        assert!(shard_id() < SHARDS);
    }
}
