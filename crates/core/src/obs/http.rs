//! A hand-rolled HTTP endpoint for live observability.
//!
//! `std::net` only — no crates.io (same discipline as `third_party/`).
//! [`ObsServer`] binds a TCP listener and serves, while a suite runs:
//!
//! - `GET /metrics` — Prometheus text exposition of the process-wide
//!   [`crate::metrics::MetricsRegistry`] snapshot, the runner-pool
//!   telemetry, the per-run host wall-clock summary, and the endpoint's
//!   own request counters,
//! - `GET /healthz` — liveness (`ok`),
//! - `GET /runs` — JSON of recently completed benchmark runs.
//!
//! Every read path is non-destructive ([`crate::metrics::MetricsRegistry::snapshot`],
//! never `take_spec_timings`) and purely host-side, so a live scraper
//! cannot perturb scores — `tests/parallel_determinism.rs` runs a suite
//! under concurrent scraping and holds the results byte-identical to an
//! unobserved run. This endpoint is the first brick of the ROADMAP
//! benchmark-as-a-service daemon.

use crate::metrics::metrics;
use crate::obs::pool::{pool, run_wall_hist, runs_board};
use crate::obs::shard::ShardedCounter;
use crate::profile::prometheus::{hist_exposition, pool_exposition, prometheus_exposition};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-route request counters, sharded so concurrent scrapers never
/// contend; exposed on `/metrics` itself.
#[derive(Debug, Default)]
struct RouteCounters {
    healthz: ShardedCounter,
    metrics: ShardedCounter,
    runs: ShardedCounter,
    not_found: ShardedCounter,
}

fn route_counters() -> &'static RouteCounters {
    static COUNTERS: std::sync::OnceLock<RouteCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(RouteCounters::default)
}

/// Renders the `/metrics` page: registry snapshot + pool telemetry +
/// run-wall summary + request counters. Shared by the server and by
/// tests that want the page without a socket.
#[must_use]
pub fn metrics_page() -> String {
    let counters = route_counters();
    let mut out = prometheus_exposition(&metrics().snapshot(), &[]);
    out.push_str(&pool_exposition(&pool().snapshot()));
    out.push_str(&hist_exposition(
        "mlperf_run_wall_ns",
        "Host wall-clock per completed benchmark run (ns).",
        &run_wall_hist().merged(),
    ));
    out.push_str("# HELP mlperf_obs_requests_total Requests served by the observability endpoint.\n");
    out.push_str("# TYPE mlperf_obs_requests_total counter\n");
    for (route, counter) in [
        ("/healthz", &counters.healthz),
        ("/metrics", &counters.metrics),
        ("/runs", &counters.runs),
        ("404", &counters.not_found),
    ] {
        out.push_str(&format!(
            "mlperf_obs_requests_total{{route=\"{route}\"}} {}\n",
            counter.value()
        ));
    }
    out
}

/// Dispatches one request path to `(status line, content type, body)`.
fn respond(path: &str) -> (&'static str, &'static str, String) {
    let counters = route_counters();
    match path {
        "/healthz" => {
            counters.healthz.inc();
            ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned())
        }
        "/metrics" => {
            counters.metrics.inc();
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", metrics_page())
        }
        "/runs" => {
            counters.runs.inc();
            ("200 OK", "application/json; charset=utf-8", runs_board().to_json())
        }
        _ => {
            counters.not_found.inc();
            ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_owned())
        }
    }
}

/// Reads the request line, writes the response, closes the connection.
/// Malformed or slow requests are dropped silently — the endpoint must
/// never take the harness down.
fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 2048];
    let mut filled = 0usize;
    // Read until the request line is complete (first CRLF) or the buffer
    // fills; the body of a GET is irrelevant.
    loop {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..filled]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method == "GET" {
        respond(path)
    } else {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_owned())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// The live observability endpoint: a listener thread serving `/metrics`,
/// `/healthz`, and `/runs` until [`ObsServer::stop`] (or drop).
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("obs-http".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => handle(stream),
                        Err(_) => continue,
                    }
                }
            })?;
        Ok(ObsServer { addr: local, shutdown, handle: Some(handle) })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::Relaxed);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Issues one HTTP GET over a raw socket and returns (status line,
    /// body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response.lines().next().unwrap_or("").to_owned();
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_healthz_metrics_runs_and_404() {
        let mut server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("mlperf_runs_completed_total"));
        assert!(body.contains("mlperf_pool_par_map_calls_total"));
        assert!(body.contains("mlperf_run_wall_ns_count"));
        assert!(body.contains("mlperf_obs_requests_total{route=\"/metrics\"}"));

        let (status, body) = get(addr, "/runs");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"total\""));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        server.stop();
        // Stop is idempotent and the port is released.
        server.stop();
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let (status, body) = get(addr, "/metrics");
                    assert!(status.contains("200"));
                    assert!(body.contains("mlperf_runs_completed_total"));
                });
            }
        });
    }

    #[test]
    fn metrics_page_counts_requests_monotonically() {
        let before = route_counters().metrics.value();
        let page = metrics_page();
        assert!(page.contains("mlperf_obs_requests_total{route=\"/healthz\"}"));
        assert!(route_counters().metrics.value() >= before);
    }
}
