//! Harness self-observability: span tracing, shard-merge metrics, pool
//! telemetry, and the live HTTP endpoint.
//!
//! Everything prior to this module observes the *simulated device*
//! ([`loadgen::trace`], [`crate::profile`]); `obs` observes the *harness
//! itself* — the work-stealing runner pool, the compile/plan/calibration
//! cache layers, the report renderers — in real host time. MLPerf
//! LoadGen separates benchmark measurement from harness logging so the
//! harness can be profiled without perturbing scores; this module
//! reproduces that separation one level up, for our own runner.
//!
//! - [`span`]: hierarchical wall-clock spans (suite → cell → compile /
//!   calibrate / plan / execute / search-probe / report) in per-thread
//!   ring buffers, exported as a Perfetto timeline of the host run with
//!   one track per pool worker (`reproduce --self-profile DIR`),
//! - [`shard`]: per-thread sharded counters and mergeable latency
//!   histograms, so hot-path recording never contends,
//! - [`pool`]: the process-wide pool-telemetry singletons and the
//!   `pool report` section of `profile_report`,
//! - [`http`]: the hand-rolled `/metrics` + `/healthz` + `/runs`
//!   endpoint (`reproduce --serve ADDR`).
//!
//! The layer is provably bit-invisible to scores: recording is off by
//! default, label formatting is gated behind one relaxed atomic, every
//! read path is non-destructive, and `tests/parallel_determinism.rs`
//! holds a self-profiled, live-scraped suite byte-identical to an
//! unobserved one.

pub mod http;
pub mod pool;
pub mod shard;
pub mod span;

pub use http::{metrics_page, ObsServer};
pub use pool::{pool, pool_report, run_wall_hist, runs_board, RunEntry, RunsBoard};
pub use shard::{ShardedCounter, ShardedHistogram};
pub use span::{
    drain, enabled, self_profile_perfetto_json, set_enabled, set_track, span, HostSpan, Phase,
    SelfProfile, SpanGuard, AUX_TRACK, MAIN_TRACK,
};
