//! Pool telemetry singletons and the pool report.
//!
//! The runner's `par_map` records per-worker busy/steal/queue counters
//! into one process-wide [`PoolTelemetry`] block; every benchmark run
//! records its host wall-clock into a [`ShardedHistogram`] and a line on
//! the [`RunsBoard`] (the `/runs` JSON feed). All of it is host-side:
//! nothing here touches simulated time or scores, and recording is
//! lock-free or per-shard so it never serializes pool workers.
//!
//! [`pool_report`] renders the "pool report" block `profile_report`
//! appends: the worker occupancy table (the paper's harness-side analogue
//! of per-engine occupancy) plus per-cache-layer hit rates.

use crate::metrics::MetricsSnapshot;
use crate::obs::shard::ShardedHistogram;
use loadgen::par::{PoolSnapshot, PoolTelemetry};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// The process-wide pool telemetry block every `par_map` pass records
/// into.
#[must_use]
pub fn pool() -> &'static PoolTelemetry {
    static POOL: OnceLock<PoolTelemetry> = OnceLock::new();
    POOL.get_or_init(PoolTelemetry::new)
}

/// The process-wide histogram of host wall-clock per benchmark run (ns),
/// sharded so concurrent pool workers record without contention.
#[must_use]
pub fn run_wall_hist() -> &'static ShardedHistogram {
    static HIST: OnceLock<ShardedHistogram> = OnceLock::new();
    HIST.get_or_init(ShardedHistogram::new)
}

/// One completed benchmark run, as served by `/runs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEntry {
    /// Cell label (`chip/task/backend`).
    pub label: String,
    /// Host wall-clock the run took (ms).
    pub wall_ms: f64,
    /// Performance queries the run issued.
    pub queries: u64,
}

/// Most runs the board retains; older entries roll off.
pub const RUNS_BOARD_CAP: usize = 1024;

/// A bounded, process-wide log of completed benchmark runs — the backing
/// store of the `/runs` endpoint. Appends drop the oldest entry past
/// [`RUNS_BOARD_CAP`]; `total` keeps counting.
#[derive(Debug, Default)]
pub struct RunsBoard {
    entries: Mutex<(Vec<RunEntry>, u64)>,
}

impl RunsBoard {
    /// Appends one completed run.
    pub fn push(&self, entry: RunEntry) {
        let mut guard = self.entries.lock().unwrap();
        let (entries, total) = &mut *guard;
        *total += 1;
        if entries.len() == RUNS_BOARD_CAP {
            entries.remove(0);
        }
        entries.push(entry);
    }

    /// The retained entries (oldest first) and the all-time run count.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<RunEntry>, u64) {
        let guard = self.entries.lock().unwrap();
        (guard.0.clone(), guard.1)
    }

    /// Renders the board as the `/runs` JSON document.
    ///
    /// # Panics
    ///
    /// Never for these types.
    #[must_use]
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Doc {
            total: u64,
            retained: usize,
            runs: Vec<RunEntry>,
        }
        let (runs, total) = self.snapshot();
        serde_json::to_string_pretty(&Doc { total, retained: runs.len(), runs })
            .expect("runs board serializes")
    }
}

/// The process-wide runs board.
#[must_use]
pub fn runs_board() -> &'static RunsBoard {
    static BOARD: OnceLock<RunsBoard> = OnceLock::new();
    BOARD.get_or_init(RunsBoard::default)
}

fn rate(hits: usize, misses: usize) -> String {
    let total = hits + misses;
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", hits as f64 * 100.0 / total as f64)
    }
}

/// Renders the pool report: per-worker occupancy (tasks, busy time, share
/// of total busy time, steals) and per-cache-layer hit rates. Pure
/// function of its inputs, deterministic bytes.
#[must_use]
pub fn pool_report(pool: &PoolSnapshot, metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("pool report\n");
    if pool.workers.is_empty() {
        out.push_str("  no pool passes recorded\n");
    } else {
        let total_busy = pool.total_busy_ns().max(1);
        let _ = writeln!(
            out,
            "  {} par_map calls, {} tasks, {} steals ({:.1}% of tasks), queue high-water {}",
            pool.calls,
            pool.total_tasks(),
            pool.total_steals(),
            pool.total_steals() as f64 * 100.0 / pool.total_tasks().max(1) as f64,
            pool.max_queue_depth,
        );
        let _ = writeln!(out, "  {:<10} {:>8} {:>12} {:>7} {:>8}", "worker", "tasks", "busy_ms", "share", "steals");
        for w in &pool.workers {
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>12.3} {:>6.1}% {:>8}",
                format!("worker-{}", w.worker),
                w.tasks,
                w.busy_ns as f64 / 1e6,
                w.busy_ns as f64 * 100.0 / total_busy as f64,
                w.steals,
            );
        }
    }
    out.push_str("  cache layers:\n");
    let _ = writeln!(
        out,
        "    compile {:>6} hit rate ({} hits / {} misses)",
        rate(metrics.compile_hits, metrics.compile_misses),
        metrics.compile_hits,
        metrics.compile_misses,
    );
    let _ = writeln!(
        out,
        "    plan    {:>6} hit rate ({} hits / {} misses)",
        rate(metrics.plan_hits, metrics.plan_misses),
        metrics.plan_hits,
        metrics.plan_misses,
    );
    let _ = writeln!(
        out,
        "    sweep   {:>6} hit rate ({} hits / {} misses)",
        rate(metrics.sweep_hits, metrics.sweep_misses),
        metrics.sweep_hits,
        metrics.sweep_misses,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn runs_board_caps_retention_but_counts_all() {
        let board = RunsBoard::default();
        for i in 0..(RUNS_BOARD_CAP + 10) {
            board.push(RunEntry { label: format!("run-{i}"), wall_ms: 1.0, queries: 5 });
        }
        let (entries, total) = board.snapshot();
        assert_eq!(total, (RUNS_BOARD_CAP + 10) as u64);
        assert_eq!(entries.len(), RUNS_BOARD_CAP);
        assert_eq!(entries[0].label, "run-10", "oldest entries roll off");
        let json = board.to_json();
        assert!(json.contains("\"total\""));
        assert!(json.contains("run-10"));
    }

    #[test]
    fn pool_report_renders_workers_and_cache_rates() {
        let telemetry = PoolTelemetry::new();
        telemetry.record_call();
        telemetry.record_task(0, Duration::from_micros(300), false);
        telemetry.record_task(1, Duration::from_micros(100), true);
        telemetry.set_queue_depth(7);
        let metrics = MetricsSnapshot {
            compile_hits: 3,
            compile_misses: 1,
            plan_hits: 0,
            plan_misses: 0,
            ..MetricsSnapshot::default()
        };
        let report = pool_report(&telemetry.snapshot(), &metrics);
        assert!(report.contains("pool report"));
        assert!(report.contains("worker-0"));
        assert!(report.contains("worker-1"));
        assert!(report.contains("1 steals"));
        assert!(report.contains("queue high-water 7"));
        assert!(report.contains("compile  75.0% hit rate (3 hits / 1 misses)"));
        assert!(report.contains("plan         - hit rate"), "no lookups renders a dash:\n{report}");
        // Deterministic bytes.
        assert_eq!(report, pool_report(&telemetry.snapshot(), &metrics));
    }

    #[test]
    fn empty_pool_report_still_renders() {
        let report = pool_report(&PoolSnapshot::default(), &MetricsSnapshot::default());
        assert!(report.contains("no pool passes recorded"));
        assert!(report.contains("cache layers:"));
    }
}
