//! The related-work comparison matrix (paper Table 4): which mobile AI
//! benchmarks satisfy which of the five requirements.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five requirements of paper Section 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requirement {
    /// Req. 1: system-level ML benchmark (not micro-benchmarks).
    SystemLevel,
    /// Req. 2: accuracy first, performance at a minimum quality target.
    AccuracyFirst,
    /// Req. 3: open source with auditable submissions.
    OpenSource,
    /// Req. 4: supports vendor backends/SDKs and delegates.
    VendorBackends,
    /// Req. 5: driven and audited by the industry.
    IndustryDriven,
}

impl Requirement {
    /// All requirements in table-column order.
    pub const ALL: [Requirement; 5] = [
        Requirement::SystemLevel,
        Requirement::AccuracyFirst,
        Requirement::OpenSource,
        Requirement::VendorBackends,
        Requirement::IndustryDriven,
    ];
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Requirement::SystemLevel => "Req. 1 (system-level)",
            Requirement::AccuracyFirst => "Req. 2 (accuracy-first)",
            Requirement::OpenSource => "Req. 3 (open source)",
            Requirement::VendorBackends => "Req. 4 (vendor backends)",
            Requirement::IndustryDriven => "Req. 5 (industry-driven)",
        };
        f.write_str(s)
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// Benchmark name.
    pub name: &'static str,
    /// Requirement satisfaction, in [`Requirement::ALL`] order.
    pub satisfies: [bool; 5],
}

impl BenchmarkComparison {
    /// Whether this benchmark meets every requirement.
    #[must_use]
    pub fn meets_all(&self) -> bool {
        self.satisfies.iter().all(|&s| s)
    }
}

/// Table 4, verbatim.
#[must_use]
pub fn table4() -> Vec<BenchmarkComparison> {
    vec![
        BenchmarkComparison { name: "Aitutu", satisfies: [true, false, false, true, false] },
        BenchmarkComparison { name: "AI-Benchmark", satisfies: [true, false, false, false, false] },
        BenchmarkComparison { name: "AIMark", satisfies: [true, false, false, true, false] },
        BenchmarkComparison { name: "Android MLTS", satisfies: [false, false, true, true, false] },
        BenchmarkComparison { name: "GeekBenchML", satisfies: [true, false, false, false, false] },
        BenchmarkComparison { name: "Neural Scope", satisfies: [true, false, false, false, false] },
        BenchmarkComparison { name: "TF Lite", satisfies: [false, false, true, true, false] },
        BenchmarkComparison { name: "UL Procyon AI", satisfies: [true, false, false, false, false] },
        BenchmarkComparison { name: "Xiaomi", satisfies: [true, false, true, false, false] },
        BenchmarkComparison { name: "MLPerf Mobile", satisfies: [true, true, true, true, true] },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_mlperf_meets_all() {
        let rows = table4();
        let full: Vec<&str> = rows.iter().filter(|r| r.meets_all()).map(|r| r.name).collect();
        assert_eq!(full, vec!["MLPerf Mobile"]);
    }

    #[test]
    fn every_other_benchmark_misses_something() {
        // Paper: "the other benchmarks are each missing at least one major
        // feature requirement".
        for row in table4() {
            if row.name != "MLPerf Mobile" {
                assert!(!row.meets_all(), "{} should miss a requirement", row.name);
                // And specifically nobody else is accuracy-first or
                // industry-driven.
                assert!(!row.satisfies[1], "{}", row.name);
                assert!(!row.satisfies[4], "{}", row.name);
            }
        }
    }

    #[test]
    fn ten_rows_five_columns() {
        assert_eq!(table4().len(), 10);
        assert_eq!(Requirement::ALL.len(), 5);
    }
}
