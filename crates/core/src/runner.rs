//! Parallel suite runner with compilation caching.
//!
//! The benchmark matrix (chips x backends x tasks) is embarrassingly
//! parallel: every run owns its mutable state ([`soc_sim::soc::SocState`],
//! battery, logs) and everything shared — the SoC description and the
//! compiled deployment — is immutable after construction. The runner
//! exploits both facts:
//!
//! * [`CompileCache`] memoizes `ChipId::build()` and `Backend::compile()`
//!   per `(chip, backend, model)` triple behind `Arc`s, so a sweep
//!   compiles each deployment once instead of once per run — and
//!   memoizes the lowered [`PlannedDeployment`] (query + offline plans)
//!   alongside, so per-query graph traversal happens once per triple too.
//! * [`SuiteRunner::run`] executes run specs on a fixed-size worker pool
//!   (`std::thread::scope` + an atomic work index — no external
//!   dependencies), merging results back into spec order.
//!
//! Determinism: a parallel sweep is bit-identical to a serial loop over
//! [`crate::harness::run_benchmark`]. Compilation is a pure function of
//! `(chip, backend, model)`; the simulated inference draws from RNGs
//! seeded only by run-rule settings and sample indices; and per-run state
//! is created fresh inside [`crate::harness::run_benchmark_with`]. The
//! only cross-thread communication is handing out shared immutable
//! deployments. The `suite_integration` test suite enforces this by
//! comparing serialized reports.

use crate::app::{submission_backend, AppConfig, SuiteReport};
use crate::harness::{
    run_benchmark_planned_scenarios, run_benchmark_planned_scenarios_with_trace, BenchmarkScore,
    RunRules, ScenarioMix,
};
use crate::metrics::{metrics, TraceCollector};
use crate::sut_impl::{DatasetScale, PlannedDeployment};
use crate::task::{suite, BenchmarkDef, SuiteVersion, Task};
use mobile_backend::backend::{BackendId, CompileError, Deployment};
use mobile_backend::registry::create;
use mobile_backend::tune::{tune, TuneOutcome, TunerConfig};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::plan::SweepPlan;
use soc_sim::soc::Soc;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Memoizes SoC construction and backend compilation.
///
/// Deployments are immutable once compiled (all run-time mutation lives in
/// `SocState`), so a cached `Arc<Deployment>` can back any number of
/// concurrent runs. Compile *failures* are cached too: the codepath matrix
/// deliberately probes unsupported (chip, backend) pairs, and re-deriving
/// the same `CompileError` per run is wasted work.
#[derive(Debug, Default)]
pub struct CompileCache {
    socs: Mutex<HashMap<ChipId, Arc<Soc>>>,
    deployments: Mutex<HashMap<DeploymentKey, CompileOutcome>>,
    plans: Mutex<HashMap<DeploymentKey, PlannedDeployment>>,
    sweeps: Mutex<HashMap<DeploymentKey, Arc<SweepPlan>>>,
    tuned: Mutex<HashMap<TunedKey, Arc<TunedDeployment>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    plan_hits: AtomicUsize,
    plan_misses: AtomicUsize,
    tuned_hits: AtomicUsize,
    tuned_misses: AtomicUsize,
}

/// Identity of one compiled deployment.
type DeploymentKey = (ChipId, BackendId, ModelId);

/// A memoized compile result — failures are first-class cache entries.
type CompileOutcome = Result<Arc<Deployment>, CompileError>;

/// Identity of one auto-tuned deployment: the compile triple plus the
/// tuner configuration that searched it (different objectives or beam
/// widths may land on different schedules).
type TunedKey = (ChipId, BackendId, ModelId, TunerConfig);

/// An auto-tuned deployment: the search outcome (gap numbers, search
/// statistics) together with the re-planned deployment that runs the
/// tuned schedule.
#[derive(Debug)]
pub struct TunedDeployment {
    /// What the search found: heuristic vs tuned scores and statistics.
    pub outcome: TuneOutcome,
    /// The heuristic deployment with its schedule replaced by the tuned
    /// one (the compiled graph and backend identity are shared).
    pub deployment: Arc<Deployment>,
    /// The tuned deployment lowered to query + offline plans, ready for
    /// the harness.
    pub planned: PlannedDeployment,
}

impl CompileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The SoC description for a chip, built at most once.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn soc(&self, chip: ChipId) -> Arc<Soc> {
        let mut socs = self.socs.lock().unwrap();
        Arc::clone(socs.entry(chip).or_insert_with(|| Arc::new(chip.build())))
    }

    /// The compiled deployment for a `(chip, backend, model)` triple,
    /// compiled at most once via the backend registry.
    ///
    /// Compilation runs outside the cache lock so distinct triples never
    /// wait on each other; when two workers race on the same triple the
    /// first insert wins (both compiles produce identical deployments, so
    /// either result is correct).
    ///
    /// # Errors
    ///
    /// Returns the backend's (cached) compile failure.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker.
    pub fn deployment(
        &self,
        chip: ChipId,
        backend: BackendId,
        model: ModelId,
    ) -> Result<Arc<Deployment>, CompileError> {
        let key = (chip, backend, model);
        if let Some(cached) = self.deployments.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            metrics().record_compile_hit();
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        metrics().record_compile_miss();
        let _span = crate::obs::span::span(crate::obs::span::Phase::Compile, || {
            format!("{chip}/{backend}/{model:?}")
        });
        let soc = self.soc(chip);
        let compiled = create(backend).compile(&model.build(), &soc).map(Arc::new);
        self.deployments
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(compiled)
            .clone()
    }

    /// The planned deployment (query + offline plans) for a
    /// `(chip, backend, model)` triple, lowered at most once. Backed by
    /// [`Self::deployment`], so a plan miss also touches the compile
    /// cache (the deployment lookup counts a compile hit or miss of its
    /// own). Compile *failures* are not cached here — the deployment
    /// cache already memoizes the error.
    ///
    /// # Errors
    ///
    /// Returns the backend's (cached) compile failure.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned, or if plan lowering finds
    /// an invalid schedule (backends never emit one).
    pub fn planned(
        &self,
        chip: ChipId,
        backend: BackendId,
        model: ModelId,
    ) -> Result<PlannedDeployment, CompileError> {
        let key = (chip, backend, model);
        if let Some(cached) = self.plans.lock().unwrap().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            metrics().record_plan_hit();
            return Ok(cached.clone());
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        metrics().record_plan_miss();
        let deployment = self.deployment(chip, backend, model)?;
        let _span = crate::obs::span::span(crate::obs::span::Phase::Plan, || {
            format!("{chip}/{backend}/{model:?}")
        });
        let soc = self.soc(chip);
        // Lower outside the cache lock; racing workers produce identical
        // plans, first insert wins.
        let planned = PlannedDeployment::compile(&soc, deployment);
        Ok(self.plans.lock().unwrap().entry(key).or_insert(planned).clone())
    }

    /// A lane-ready [`soc_sim::plan_batch::BatchPlan`] for a
    /// `(chip, backend, model)` triple: the cached query plan fanned out
    /// to `lanes` lockstep lanes. The underlying op arrays are shared
    /// with the scalar plan behind the same `Arc`, so handing out batch
    /// plans costs one overhead-vector allocation, never a re-lowering.
    ///
    /// # Errors
    ///
    /// Returns the backend's (cached) compile failure.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or the cache mutex was poisoned.
    pub fn batch_plan(
        &self,
        chip: ChipId,
        backend: BackendId,
        model: ModelId,
        lanes: usize,
    ) -> Result<soc_sim::plan_batch::BatchPlan, CompileError> {
        let planned = self.planned(chip, backend, model)?;
        Ok(soc_sim::plan_batch::BatchPlan::broadcast(Arc::clone(&planned.query), lanes))
    }

    /// The sweep-ready lowering for a `(chip, backend, model)` triple:
    /// shared op arrays plus the cached per-stage lowering inputs, so
    /// [`soc_sim::plan::PlanDelta`] re-lowerings are O(stages) instead of
    /// a graph walk. Lowered at most once per triple; lookups count into
    /// the sweep-cache metrics. The fleet executor leans on this so a
    /// million perturbed units never pay a second full lowering.
    ///
    /// # Errors
    ///
    /// Returns the backend's (cached) compile failure.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker.
    pub fn sweep_plan(
        &self,
        chip: ChipId,
        backend: BackendId,
        model: ModelId,
    ) -> Result<Arc<SweepPlan>, CompileError> {
        let key = (chip, backend, model);
        if let Some(cached) = self.sweeps.lock().unwrap().get(&key) {
            metrics().record_sweep_hit();
            return Ok(Arc::clone(cached));
        }
        metrics().record_sweep_miss();
        let deployment = self.deployment(chip, backend, model)?;
        let _span = crate::obs::span::span(crate::obs::span::Phase::Plan, || {
            format!("sweep/{chip}/{backend}/{model:?}")
        });
        let soc = self.soc(chip);
        // Lower outside the cache lock; racing workers produce identical
        // plans, first insert wins.
        let sweep = Arc::new(SweepPlan::new(&soc, &deployment.graph, &deployment.schedule));
        Ok(Arc::clone(self.sweeps.lock().unwrap().entry(key).or_insert(sweep)))
    }

    /// The auto-tuned deployment for a `(chip, backend, model)` triple
    /// under a [`TunerConfig`]: runs the beam/branch-and-bound schedule
    /// search ([`mobile_backend::tune::tune`]) seeded with the backend's
    /// heuristic schedule, at most once per `(triple, config)` key, and
    /// memoizes the re-planned result. Lookups count into the tuned-cache
    /// metrics; each search records its candidate/prune counters.
    ///
    /// # Errors
    ///
    /// Returns the backend's (cached) compile failure.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker, or
    /// if the backend emitted an invalid schedule (backends never do).
    pub fn tuned(
        &self,
        chip: ChipId,
        backend: BackendId,
        model: ModelId,
        config: &TunerConfig,
    ) -> Result<Arc<TunedDeployment>, CompileError> {
        let key = (chip, backend, model, *config);
        if let Some(cached) = self.tuned.lock().unwrap().get(&key) {
            self.tuned_hits.fetch_add(1, Ordering::Relaxed);
            metrics().record_tuned_hit();
            return Ok(Arc::clone(cached));
        }
        self.tuned_misses.fetch_add(1, Ordering::Relaxed);
        metrics().record_tuned_miss();
        let deployment = self.deployment(chip, backend, model)?;
        let _span = crate::obs::span::span(crate::obs::span::Phase::Plan, || {
            format!("tune/{chip}/{backend}/{model:?}")
        });
        let soc = self.soc(chip);
        // Search and re-plan outside the cache lock; racing workers
        // produce identical outcomes, first insert wins.
        let outcome = tune(&soc, &deployment.graph, &deployment.schedule, config);
        metrics().record_tuner_search(outcome.stats.candidates, outcome.stats.pruned);
        let mut tuned_dep = (*deployment).clone();
        // Offline runs reuse the single-stream schedule whenever the
        // backend didn't compile a dedicated offline stream; keep that
        // coupling for the tuned deployment.
        for stream in &mut tuned_dep.offline_streams {
            if *stream == deployment.schedule {
                stream.clone_from(&outcome.schedule);
            }
        }
        tuned_dep.schedule = outcome.schedule.clone();
        let tuned_dep = Arc::new(tuned_dep);
        let planned = PlannedDeployment::compile(&soc, Arc::clone(&tuned_dep));
        let entry = Arc::new(TunedDeployment { outcome, deployment: tuned_dep, planned });
        Ok(Arc::clone(self.tuned.lock().unwrap().entry(key).or_insert(entry)))
    }

    /// Number of deployment lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of deployment lookups that triggered a compile.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of plan lookups answered from the cache.
    #[must_use]
    pub fn plan_hits(&self) -> usize {
        self.plan_hits.load(Ordering::Relaxed)
    }

    /// Number of plan lookups that triggered plan lowering.
    #[must_use]
    pub fn plan_misses(&self) -> usize {
        self.plan_misses.load(Ordering::Relaxed)
    }

    /// Number of tuned-deployment lookups answered from the cache.
    #[must_use]
    pub fn tuned_hits(&self) -> usize {
        self.tuned_hits.load(Ordering::Relaxed)
    }

    /// Number of tuned-deployment lookups that ran the schedule search.
    #[must_use]
    pub fn tuned_misses(&self) -> usize {
        self.tuned_misses.load(Ordering::Relaxed)
    }
}

/// The default harness worker count: `MLPERF_WORKERS` when set to a
/// positive integer, otherwise one worker per available core.
///
/// The override exists for observability work — forcing a multi-worker
/// pool on a small machine (or pinning to one worker on a big one) to
/// inspect per-worker tracks in a `--self-profile` timeline. Worker
/// count never affects scores, only wall-clock and pool telemetry.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("MLPERF_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs `f` over `items` on up to `threads` workers, returning results in
/// item order.
///
/// Work distribution is a shared atomic index (dynamic scheduling: long
/// runs — big chips, segmentation — don't straggle behind a static
/// partition). Each worker tags results with their item index; the merged
/// output is sorted back to input order, so parallel execution is
/// invisible to callers.
///
/// Every pass records pool telemetry into [`crate::obs::pool::pool`] —
/// per-worker task/busy/steal counters and the ready-queue depth — and
/// tags each worker thread with its observability track, so harness spans
/// opened inside `f` land on one stable Perfetto lane per worker. A task
/// counts as *stolen* when dynamic scheduling moved it off the worker
/// that a static fair-share split would have given it: with `n` items on
/// `t` workers, item `i` "belongs" to worker `i / ceil(n/t)`. Telemetry
/// is host-side only and recorded strictly outside `f`, so results and
/// their order are bit-identical with or without it (unit-tested here,
/// suite-level in `tests/parallel_determinism.rs`).
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    let telemetry = crate::obs::pool::pool();
    if threads <= 1 {
        if !items.is_empty() {
            telemetry.record_call();
        }
        // Serial fallback: the caller's thread is "worker 0"; nothing can
        // be stolen.
        return items
            .iter()
            .map(|item| {
                let started = std::time::Instant::now();
                let r = f(item);
                telemetry.record_task(0, started.elapsed(), false);
                r
            })
            .collect();
    }
    telemetry.record_call();
    telemetry.set_queue_depth(items.len() as u64);
    let fair = items.len().div_ceil(threads);
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    // Spans opened inside `f` aggregate on this worker's
                    // Perfetto lane (track 0 is the driving thread).
                    crate::obs::span::set_track(w as u32 + 1);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        telemetry.set_queue_depth(items.len().saturating_sub(i + 1) as u64);
                        let started = std::time::Instant::now();
                        out.push((i, f(item)));
                        telemetry.record_task(w, started.elapsed(), i / fair != w);
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("suite worker panicked"))
            .collect()
    });
    telemetry.set_queue_depth(0);
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// One cell of the benchmark matrix: which deployment to run on which
/// chip, and which scenarios follow the single-stream run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Platform.
    pub chip: ChipId,
    /// Code path.
    pub backend: BackendId,
    /// Benchmark definition (task, model, quality target).
    pub def: BenchmarkDef,
    /// Scenarios to run after the mandatory single-stream leg.
    pub mix: ScenarioMix,
    /// When set, run on the auto-tuned schedule for this config instead
    /// of the backend's heuristic schedule.
    pub tuner: Option<TunerConfig>,
}

impl RunSpec {
    /// The specs for one suite run on one chip, in the prescribed task
    /// order, using the per-task submission backends of paper Table 2.
    /// Offline rides along with classification when the config enables
    /// it; the server and multi-stream searches ride along with
    /// classification when `config.scenario_matrix` is set.
    #[must_use]
    pub fn suite(chip: ChipId, version: SuiteVersion, config: &AppConfig) -> Vec<RunSpec> {
        suite(version)
            .into_iter()
            .map(|def| {
                let classification = def.task == Task::ImageClassification;
                RunSpec {
                    chip,
                    backend: submission_backend(chip, version, def.task),
                    mix: ScenarioMix {
                        offline: config.offline_classification && classification,
                        server: config.scenario_matrix && classification,
                        multi_stream: config.scenario_matrix && classification,
                    },
                    def,
                    tuner: config.tuner,
                }
            })
            .collect()
    }
}

/// Executes benchmark-matrix runs in parallel over a shared
/// [`CompileCache`].
///
/// # Examples
///
/// ```no_run
/// use mlperf_mobile::app::AppConfig;
/// use mlperf_mobile::runner::SuiteRunner;
/// use mlperf_mobile::sut_impl::DatasetScale;
/// use mlperf_mobile::task::SuiteVersion;
/// use soc_sim::catalog::ChipId;
///
/// let runner = SuiteRunner::new();
/// let reports = runner.sweep(
///     &[ChipId::Snapdragon888, ChipId::Exynos2100],
///     SuiteVersion::V1_0,
///     &AppConfig::default(),
///     DatasetScale::Full,
/// )?;
/// assert_eq!(reports.len(), 2);
/// # Ok::<(), mobile_backend::backend::CompileError>(())
/// ```
#[derive(Debug)]
pub struct SuiteRunner {
    cache: CompileCache,
    threads: usize,
    trace_sink: Option<Arc<TraceCollector>>,
}

impl Default for SuiteRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SuiteRunner {
    /// A runner using [`default_threads`] workers.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A runner with an explicit worker count (`1` = serial execution on
    /// the calling thread, still through the cache).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        SuiteRunner { cache: CompileCache::new(), threads: threads.max(1), trace_sink: None }
    }

    /// Attaches a trace sink: every subsequent run records a per-query
    /// [`crate::harness::BenchmarkTrace`] into `sink` alongside its score.
    ///
    /// Tracing is purely observational — scores from a traced runner are
    /// bit-identical to an untraced one (`parallel_determinism` locks
    /// this down).
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<TraceCollector>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// The attached trace sink, if any.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&Arc<TraceCollector>> {
        self.trace_sink.as_ref()
    }

    /// The compilation cache (shared across every run this runner makes).
    #[must_use]
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Runs every spec, in parallel, returning per-spec results in spec
    /// order. Each run compiles through the cache and otherwise behaves
    /// exactly like [`crate::harness::run_benchmark`].
    #[must_use]
    pub fn run(
        &self,
        specs: &[RunSpec],
        rules: &RunRules,
        scale: DatasetScale,
    ) -> Vec<Result<BenchmarkScore, CompileError>> {
        par_map(specs, self.threads, |spec| {
            let planned = if let Some(cfg) = &spec.tuner {
                self.cache.tuned(spec.chip, spec.backend, spec.def.model, cfg)?.planned.clone()
            } else {
                self.cache.planned(spec.chip, spec.backend, spec.def.model)?
            };
            let soc = self.cache.soc(spec.chip);
            let started = std::time::Instant::now();
            let score = if let Some(sink) = &self.trace_sink {
                let (score, trace) = run_benchmark_planned_scenarios_with_trace(
                    spec.chip,
                    soc,
                    planned,
                    &spec.def,
                    rules,
                    scale,
                    spec.mix,
                );
                sink.push(trace);
                score
            } else {
                run_benchmark_planned_scenarios(
                    spec.chip,
                    soc,
                    planned,
                    &spec.def,
                    rules,
                    scale,
                    spec.mix,
                )
            };
            let label = format!("{}/{:?}/{}", spec.chip, spec.def.task, spec.backend);
            metrics().record_spec_wall(label, started.elapsed().as_secs_f64() * 1e3);
            Ok(score)
        })
    }

    /// Runs the full suite on one chip — the parallel equivalent of
    /// [`crate::app::run_suite`], with scores in the prescribed task
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first backend compilation failure (in task order,
    /// matching the serial app).
    pub fn suite_report(
        &self,
        chip: ChipId,
        version: SuiteVersion,
        config: &AppConfig,
        scale: DatasetScale,
    ) -> Result<SuiteReport, CompileError> {
        let specs = RunSpec::suite(chip, version, config);
        let scores: Result<Vec<_>, _> =
            self.run(&specs, &config.rules, scale).into_iter().collect();
        Ok(SuiteReport { chip, version, scores: scores? })
    }

    /// Runs the suite on every chip, parallelizing across the whole
    /// chips x tasks matrix (not chip-by-chip, so a big chip's slow task
    /// overlaps the other chips' work). Reports come back in chip order.
    ///
    /// # Errors
    ///
    /// Propagates the first compilation failure in (chip, task) order.
    ///
    /// # Panics
    ///
    /// Never — the flat result list always splits evenly per chip.
    pub fn sweep(
        &self,
        chips: &[ChipId],
        version: SuiteVersion,
        config: &AppConfig,
        scale: DatasetScale,
    ) -> Result<Vec<SuiteReport>, CompileError> {
        let specs: Vec<RunSpec> = chips
            .iter()
            .flat_map(|&chip| RunSpec::suite(chip, version, config))
            .collect();
        let per_chip = specs.len() / chips.len().max(1);
        let mut results = self.run(&specs, &config.rules, scale).into_iter();
        chips
            .iter()
            .map(|&chip| {
                let scores: Result<Vec<_>, _> = results.by_ref().take(per_chip).collect();
                Ok(SuiteReport { chip, version, scores: scores? })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_serial() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7], 4, |&x| x + 1), vec![8]);
        assert_eq!(par_map(&[1, 2, 3], 1, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn compile_cache_compiles_each_triple_once() {
        let cache = CompileCache::new();
        let a = cache
            .deployment(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        let b = cache
            .deployment(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the cached Arc");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn plan_cache_lowers_each_triple_once() {
        let cache = CompileCache::new();
        let a = cache
            .planned(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        let b = cache
            .planned(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        assert!(Arc::ptr_eq(&a.query, &b.query), "second lookup must share the cached plan");
        assert!(a.offline.is_some(), "submission deployments carry offline streams");
        assert_eq!(cache.plan_misses(), 1);
        assert_eq!(cache.plan_hits(), 1);
        // The one plan miss compiled through the deployment cache once.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn sweep_cache_lowers_each_triple_once() {
        let cache = CompileCache::new();
        let a = cache
            .sweep_plan(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        let b = cache
            .sweep_plan(ChipId::Snapdragon888, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the cached Arc");
        // And a failure propagates instead of lowering anything.
        assert!(cache
            .sweep_plan(ChipId::Exynos990, BackendId::Snpe, ModelId::MobileNetEdgeTpu)
            .is_err());
    }

    #[test]
    fn plan_cache_propagates_compile_failures() {
        let cache = CompileCache::new();
        // SNPE refuses non-Qualcomm silicon; the plan lookup surfaces the
        // deployment cache's memoized error instead of lowering anything.
        let err = cache.planned(ChipId::Exynos990, BackendId::Snpe, ModelId::MobileNetEdgeTpu);
        assert!(err.is_err());
        assert_eq!(cache.plan_misses(), 1);
        assert_eq!(cache.plan_hits(), 0);
    }

    #[test]
    fn compile_cache_caches_failures() {
        let cache = CompileCache::new();
        // SNPE refuses non-Qualcomm silicon; the error must be cached.
        let first = cache.deployment(ChipId::Exynos990, BackendId::Snpe, ModelId::MobileNetEdgeTpu);
        let second = cache.deployment(ChipId::Exynos990, BackendId::Snpe, ModelId::MobileNetEdgeTpu);
        assert!(first.is_err());
        assert_eq!(first.unwrap_err(), second.unwrap_err());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn soc_cache_returns_shared_instance() {
        let cache = CompileCache::new();
        let a = cache.soc(ChipId::Dimensity1100);
        let b = cache.soc(ChipId::Dimensity1100);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name, ChipId::Dimensity1100.build().name);
    }

    #[test]
    fn suite_specs_follow_table2() {
        let config = AppConfig::default();
        let specs = RunSpec::suite(ChipId::Exynos990, SuiteVersion::V0_7, &config);
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.backend == BackendId::Enn));
        // Offline rides along with classification only; the server and
        // multi-stream searches stay off without `scenario_matrix`.
        assert!(specs[0].mix.offline && specs[0].def.task == Task::ImageClassification);
        assert!(specs[1..].iter().all(|s| !s.mix.offline));
        assert!(specs.iter().all(|s| !s.mix.server && !s.mix.multi_stream));
    }
}
