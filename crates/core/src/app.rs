//! The "MLPerf Mobile app": runs the whole suite on a device in the
//! prescribed order with per-vendor backend selection (paper Appendix A
//! and Table 2), producing a submission-shaped report.

use crate::harness::{BenchmarkScore, BenchmarkTrace, RunRules};
use crate::metrics::TraceCollector;
use crate::runner::SuiteRunner;
use std::sync::Arc;
use crate::sut_impl::DatasetScale;
use crate::task::{SuiteVersion, Task};
use mobile_backend::backend::{BackendId, CompileError};
use mobile_backend::tune::TunerConfig;
use serde::{Deserialize, Serialize};
use soc_sim::catalog::ChipId;

/// The backend a competitive submission uses for a given task — the
/// configuration matrix of paper Table 2.
///
/// Vendors use their SDK for vision; for NLP, MediaTek and Qualcomm use the
/// TFLite GPU delegate while Samsung's ENN drives the GPU itself; laptops
/// use OpenVINO everywhere. MediaTek's v0.7 vision path went through NNAPI
/// (`neuron-ann`), upgraded to the Neuron delegate in v1.0 (Table 3).
#[must_use]
pub fn submission_backend(chip: ChipId, version: SuiteVersion, task: Task) -> BackendId {
    let soc = chip.build();
    if soc.is_laptop {
        return BackendId::OpenVino;
    }
    match (soc.vendor.as_str(), task) {
        ("MediaTek", Task::QuestionAnswering) => BackendId::TfliteGpu,
        ("MediaTek", _) => match version {
            SuiteVersion::V0_7 => BackendId::Nnapi,
            SuiteVersion::V1_0 => BackendId::Neuron,
        },
        ("Samsung", _) => BackendId::Enn,
        ("Qualcomm", Task::QuestionAnswering) => BackendId::TfliteGpu,
        ("Qualcomm", _) => BackendId::Snpe,
        _ => BackendId::TfliteCpu,
    }
}

/// A full suite run on one device.
#[derive(Debug, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Platform.
    pub chip: ChipId,
    /// Suite version run.
    pub version: SuiteVersion,
    /// Per-task scores, in run order.
    pub scores: Vec<BenchmarkScore>,
}

impl SuiteReport {
    /// Whether every task passed its quality gate and run rules.
    #[must_use]
    pub fn all_valid(&self) -> bool {
        self.scores.iter().all(BenchmarkScore::is_valid_submission)
    }

    /// Score lookup by task.
    #[must_use]
    pub fn score(&self, task: Task) -> Option<&BenchmarkScore> {
        self.scores.iter().find(|s| s.def.task == task)
    }

    /// Serializes the full report (scores, configs, unedited logs) to
    /// pretty JSON — the publishable submission artifact (transparency
    /// requirement, paper Section 8).
    ///
    /// # Panics
    ///
    /// Never for these types.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a published report.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Options controlling a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppConfig {
    /// Run rules in force.
    pub rules: RunRules,
    /// Whether to run the offline scenario for classification (optional
    /// for submitters, paper Section 7.2).
    pub offline_classification: bool,
    /// Whether to also run the server and multi-stream scenario searches
    /// for classification — the full four-scenario matrix.
    pub scenario_matrix: bool,
    /// When set, every run uses the schedule auto-tuner: per-op engine
    /// assignments are searched (beam + branch-and-bound) instead of
    /// taking the backend's heuristic schedule as-is.
    pub tuner: Option<TunerConfig>,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            rules: RunRules::default(),
            offline_classification: true,
            scenario_matrix: false,
            tuner: None,
        }
    }
}

/// Runs the full suite on a device, tasks in the prescribed order, with
/// cooldown between tests, using the per-task submission backends.
///
/// Executes through the parallel [`SuiteRunner`]; results are bit-identical
/// to a serial [`run_benchmark`][crate::harness::run_benchmark] loop (the
/// `suite_integration` tests assert exactly that) because every run owns
/// its mutable state and the shared deployments are immutable.
///
/// # Errors
///
/// Propagates the first backend compilation failure (in task order).
pub fn run_suite(
    chip: ChipId,
    version: SuiteVersion,
    config: &AppConfig,
    scale: DatasetScale,
) -> Result<SuiteReport, CompileError> {
    SuiteRunner::new().suite_report(chip, version, config, scale)
}

/// Runs the full suite like [`run_suite`] with per-query tracing enabled,
/// returning the report together with one [`BenchmarkTrace`] per task
/// (sorted by cell label).
///
/// The report is bit-identical to an untraced [`run_suite`] over the same
/// inputs — tracing never feeds back into the simulation.
///
/// # Errors
///
/// Propagates the first backend compilation failure (in task order).
pub fn run_suite_traced(
    chip: ChipId,
    version: SuiteVersion,
    config: &AppConfig,
    scale: DatasetScale,
) -> Result<(SuiteReport, Vec<BenchmarkTrace>), CompileError> {
    let sink = Arc::new(TraceCollector::new());
    let runner = SuiteRunner::new().with_trace(Arc::clone(&sink));
    let report = runner.suite_report(chip, version, config, scale)?;
    Ok((report, sink.drain()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_backend_matrix() {
        use BackendId::*;
        // Vision rows.
        assert_eq!(
            submission_backend(ChipId::Dimensity820, SuiteVersion::V0_7, Task::ImageClassification),
            Nnapi
        );
        assert_eq!(
            submission_backend(ChipId::Dimensity1100, SuiteVersion::V1_0, Task::ImageClassification),
            Neuron
        );
        assert_eq!(
            submission_backend(ChipId::Exynos990, SuiteVersion::V0_7, Task::ImageSegmentation),
            Enn
        );
        assert_eq!(
            submission_backend(ChipId::Snapdragon865Plus, SuiteVersion::V0_7, Task::ObjectDetection),
            Snpe
        );
        // NLP rows: TFLite GPU delegate except Samsung (ENN) and laptops.
        assert_eq!(
            submission_backend(ChipId::Dimensity820, SuiteVersion::V0_7, Task::QuestionAnswering),
            TfliteGpu
        );
        assert_eq!(
            submission_backend(ChipId::Exynos990, SuiteVersion::V0_7, Task::QuestionAnswering),
            Enn
        );
        assert_eq!(
            submission_backend(ChipId::Snapdragon888, SuiteVersion::V1_0, Task::QuestionAnswering),
            TfliteGpu
        );
        assert_eq!(
            submission_backend(ChipId::CoreI7_1165G7, SuiteVersion::V0_7, Task::QuestionAnswering),
            OpenVino
        );
    }

    #[test]
    fn report_json_round_trips_with_logs() {
        let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: false, scenario_matrix: false, tuner: None };
        let report = run_suite(
            ChipId::Dimensity1100,
            SuiteVersion::V1_0,
            &config,
            DatasetScale::Reduced(32),
        )
        .unwrap();
        let text = report.to_json();
        let parsed = SuiteReport::from_json(&text).unwrap();
        assert_eq!(parsed.scores.len(), report.scores.len());
        for (a, b) in report.scores.iter().zip(parsed.scores.iter()) {
            assert_eq!(a.log, b.log, "unedited logs survive publication");
            assert!((a.latency_ms() - b.latency_ms()).abs() < 1e-12);
        }
    }

    #[test]
    fn full_suite_runs_on_a_phone() {
        let config = AppConfig {
            rules: RunRules::smoke_test(),
            offline_classification: true,
            scenario_matrix: false,
            tuner: None,
        };
        let report =
            run_suite(ChipId::Exynos2100, SuiteVersion::V1_0, &config, DatasetScale::Reduced(48))
                .unwrap();
        assert_eq!(report.scores.len(), 4);
        for s in &report.scores {
            assert!(s.accuracy_passed, "{}: {} < {}", s.def.task, s.accuracy, s.quality_target);
        }
        // Offline ran for classification only.
        assert!(report.score(Task::ImageClassification).unwrap().offline.is_some());
        assert!(report.score(Task::ObjectDetection).unwrap().offline.is_none());
    }

    #[test]
    fn traced_suite_is_bit_identical_and_traces_validate() {
        let config = AppConfig { rules: RunRules::smoke_test(), offline_classification: true, scenario_matrix: false, tuner: None };
        let chip = ChipId::Dimensity1100;
        let scale = DatasetScale::Reduced(32);
        let plain = run_suite(chip, SuiteVersion::V1_0, &config, scale).unwrap();
        let (traced, traces) = run_suite_traced(chip, SuiteVersion::V1_0, &config, scale).unwrap();
        assert_eq!(plain.to_json(), traced.to_json(), "tracing must not perturb scores");
        assert_eq!(traces.len(), 4, "one trace per task");
        for trace in &traces {
            trace.validate().unwrap();
            let score = traced.score(trace.task).unwrap();
            assert_eq!(trace.single_stream.span_count(), score.single_stream.queries);
            assert_eq!(trace.offline.is_some(), score.offline.is_some());
        }
    }

    #[test]
    fn laptop_suite_runs_headless() {
        let config = AppConfig {
            rules: RunRules::smoke_test(),
            offline_classification: false,
            scenario_matrix: false,
            tuner: None,
        };
        let report = run_suite(
            ChipId::CoreI7_1165G7,
            SuiteVersion::V0_7,
            &config,
            DatasetScale::Reduced(48),
        )
        .unwrap();
        assert_eq!(report.scores.len(), 4);
        // All laptop submissions are INT8 (paper Insight 4).
        for s in &report.scores {
            assert!(s.scheme.is_quantized(), "{}: {}", s.def.task, s.scheme);
        }
    }
}
