//! `mlperf-mobile-app` — the headless benchmark application.
//!
//! The paper's Section 4.3: "For laptops, submitters can build a native
//! command-line application... The number of samples necessary for
//! performance mode and for accuracy mode remains identical to the number
//! in the smartphone scenario. The only difference is the absence of a
//! graphical user interface." This is that application, for simulated
//! devices.
//!
//! ```sh
//! cargo run --release -p mlperf-mobile --bin mlperf-mobile-app -- \
//!     --chip dimensity-1100 --version v1.0 --scale 512 --offline
//! cargo run --release -p mlperf-mobile --bin mlperf-mobile-app -- --list
//! cargo run --release -p mlperf-mobile --bin mlperf-mobile-app -- \
//!     --fleet 100000 --fleet-seed 7
//! ```

use mlperf_mobile::app::{run_suite, AppConfig};
use mlperf_mobile::fleet::{fleet_report_text, FleetConfig};
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::runner::CompileCache;
use mlperf_mobile::report::format_report;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::SuiteVersion;
use mobile_backend::tune::TunerConfig;
use soc_sim::catalog::ChipId;
use std::process::ExitCode;

fn chip_slug(chip: ChipId) -> String {
    chip.to_string()
        .to_lowercase()
        .replace('+', "-plus")
        .replace(' ', "-")
        .replace("--", "-")
}

fn chip_by_slug(slug: &str) -> Option<ChipId> {
    ChipId::ALL.into_iter().find(|&c| chip_slug(c) == slug.to_lowercase())
}

fn usage() -> &'static str {
    "usage: mlperf-mobile-app [--list] [--chip <slug>] [--version v0.7|v1.0]\n\
     \u{20}                       [--scale <n>|full] [--offline] [--scenarios]\n\
     \u{20}                       [--ambient <degC>] [--battery <0..1>]\n\
     \u{20}                       [--fleet <n>] [--fleet-seed <s>]\n\
     \u{20}                       [--tune [latency|energy]]\n\
     \n\
     --list       print the device catalog and exit\n\
     --chip       device slug (default dimensity-1100)\n\
     --version    suite version (default matches the chip's generation)\n\
     --scale      validation-set size per task, or 'full' (default 2048;\n\
     \u{20}             reduced sets add sampling noise near the tight gates)\n\
     --offline    also run the offline scenario for classification\n\
     --scenarios  also run the server and multi-stream searches for\n\
     \u{20}             classification (the full four-scenario matrix)\n\
     --ambient    room temperature; the rules require 20-25 degC\n\
     --battery    initial state of charge (default 1.0 = full, per rules)\n\
     --fleet      instead of one lab run, sweep a simulated field\n\
     \u{20}             population of <n> devices across the whole catalog\n\
     \u{20}             and report population latency/energy percentiles\n\
     --fleet-seed sampling seed for --fleet (default 7); the report is\n\
     \u{20}             byte-identical for a given seed and size\n\
     --tune       auto-tune every schedule before running: beam search\n\
     \u{20}             with branch-and-bound pruning over per-op engine\n\
     \u{20}             assignments, seeded with the vendor heuristic\n\
     \u{20}             (objective defaults to latency)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut chip = ChipId::Dimensity1100;
    let mut version: Option<SuiteVersion> = None;
    let mut scale = DatasetScale::Reduced(2048);
    let mut offline = false;
    let mut scenarios = false;
    let mut rules = RunRules::default();
    let mut fleet: Option<u64> = None;
    let mut fleet_seed = 7u64;
    let mut tuner: Option<TunerConfig> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("device catalog:");
                for c in ChipId::ALL {
                    let soc = c.build();
                    println!(
                        "  {:24} {} ({}, {})",
                        chip_slug(c),
                        soc,
                        c.generation(),
                        if soc.is_laptop { "laptop" } else { "smartphone" },
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--chip" => {
                i += 1;
                let Some(slug) = args.get(i) else {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                };
                match chip_by_slug(slug) {
                    Some(c) => chip = c,
                    None => {
                        eprintln!("unknown chip {slug:?}; try --list");
                        return ExitCode::from(2);
                    }
                }
            }
            "--version" => {
                i += 1;
                version = match args.get(i).map(String::as_str) {
                    Some("v0.7") => Some(SuiteVersion::V0_7),
                    Some("v1.0") => Some(SuiteVersion::V1_0),
                    _ => {
                        eprintln!("--version takes v0.7 or v1.0");
                        return ExitCode::from(2);
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => DatasetScale::Full,
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n > 0 => DatasetScale::Reduced(n),
                        _ => {
                            eprintln!("--scale takes a positive integer or 'full'");
                            return ExitCode::from(2);
                        }
                    },
                    None => {
                        eprintln!("{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            "--offline" => offline = true,
            "--scenarios" => scenarios = true,
            "--ambient" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) => rules.ambient_c = t,
                    None => {
                        eprintln!("--ambient takes a temperature in degC");
                        return ExitCode::from(2);
                    }
                }
            }
            "--battery" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(b) if (0.0..=1.0).contains(&b) => rules.battery_soc = Some(b),
                    _ => {
                        eprintln!("--battery takes a state of charge in [0, 1]");
                        return ExitCode::from(2);
                    }
                }
            }
            "--fleet" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n > 0 => fleet = Some(n),
                    _ => {
                        eprintln!("--fleet takes a positive device count");
                        return ExitCode::from(2);
                    }
                }
            }
            "--fleet-seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(s) => fleet_seed = s,
                    None => {
                        eprintln!("--fleet-seed takes an integer seed");
                        return ExitCode::from(2);
                    }
                }
            }
            "--tune" => {
                // The objective argument is optional: a following word
                // that is not a flag selects it, default latency.
                tuner = Some(match args.get(i + 1).map(String::as_str) {
                    Some("latency") => {
                        i += 1;
                        TunerConfig::latency()
                    }
                    Some("energy") => {
                        i += 1;
                        TunerConfig::energy()
                    }
                    Some(word) if !word.starts_with("--") => {
                        eprintln!("--tune takes 'latency' or 'energy'");
                        return ExitCode::from(2);
                    }
                    _ => TunerConfig::latency(),
                });
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(devices) = fleet {
        let cache = CompileCache::new();
        let config = FleetConfig::new(devices, fleet_seed);
        return match fleet_report_text(&cache, &config) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fleet sweep failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let version = version.unwrap_or(match chip.generation() {
        soc_sim::catalog::Generation::V0_7 => SuiteVersion::V0_7,
        soc_sim::catalog::Generation::V1_0 => SuiteVersion::V1_0,
    });
    if !rules.ambient_compliant() {
        eprintln!(
            "warning: ambient {:.1} degC is outside the 20-25 degC run rules; \
             the result will not be a valid submission",
            rules.ambient_c
        );
    }
    let config = AppConfig { rules, offline_classification: offline, scenario_matrix: scenarios, tuner };
    if let Some(cfg) = &tuner {
        println!(
            "schedule auto-tuning enabled: {} objective, beam width {}",
            cfg.objective, cfg.beam_width
        );
    }
    println!("running MLPerf Mobile {version} on {chip} ...");
    match run_suite(chip, version, &config, scale) {
        Ok(report) => {
            print!("{}", format_report(&report));
            for s in &report.scores {
                if let (Some(srv), Some(ms)) = (&s.server, &s.multi_stream) {
                    println!(
                        "scenarios: {} server max {:.1} QPS (p90 <= {:.2} ms) | \
                         multi-stream {} streams per {:.0} ms frame",
                        s.def.task,
                        srv.max_qps,
                        srv.target_latency_ns as f64 / 1e6,
                        ms.streams,
                        ms.interval_ns as f64 / 1e6,
                    );
                }
                if s.power_saving_entered {
                    println!(
                        "note: {} ran in battery power-saving mode — recharge and rerun",
                        s.def.task
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            ExitCode::FAILURE
        }
    }
}
