//! The device-side SUT: a compiled deployment running on the simulated
//! SoC, answering LoadGen queries with simulated latencies and
//! quality-model predictions.

use crate::sim_infer;
use crate::task::{BenchmarkDef, Task};
use mobile_backend::backend::Deployment;
use mobile_data::datasets::{
    Dataset, SyntheticAde20k, SyntheticCoco, SyntheticImageNet, SyntheticSquad,
};
use mobile_data::extended::{SyntheticDiv2k, SyntheticLibriSpeech};
use mobile_data::image::Image;
use mobile_data::types::{AnswerSpan, Detection, LabelMap};
use loadgen::sut::SystemUnderTest;
use loadgen::trace::{QueryTelemetry, StageTelemetry};
use quant::{quality::nominal_retention, Sensitivity};
use soc_sim::executor::QueryResult;
use soc_sim::plan::{ExecMemo, OfflinePlan, QueryPlan};
use soc_sim::soc::{Soc, SocState};
use soc_sim::time::SimDuration;
use std::sync::Arc;

/// Offline batch size used when amortizing per-query overheads.
pub const OFFLINE_BATCH: usize = 32;

/// A deployment together with its compiled execution plans: the
/// single-stream [`QueryPlan`] and (when the backend emitted offline
/// streams) the [`OfflinePlan`], both built once per `(soc, deployment)`
/// and shared across runs behind `Arc`s.
///
/// Planning happens at deployment time, so the per-query hot path never
/// re-validates schedules or re-traverses the graph — bit-identically to
/// the unplanned executor (see [`QueryPlan`] for the contract).
#[derive(Debug, Clone)]
pub struct PlannedDeployment {
    /// The compiled deployment the plans were lowered from.
    pub deployment: Arc<Deployment>,
    /// Compiled single-stream query plan.
    pub query: Arc<QueryPlan>,
    /// Compiled offline plan; `None` when the deployment has no offline
    /// streams (executing a batch then panics, exactly like the unplanned
    /// executor would).
    pub offline: Option<Arc<OfflinePlan>>,
}

impl PlannedDeployment {
    /// Compiles both plans for a deployment on a SoC.
    ///
    /// # Panics
    ///
    /// Panics if any schedule in the deployment is invalid for its graph
    /// or places work on an engine that cannot execute it — the same
    /// panics the unplanned executor raises per query, surfaced once at
    /// plan time.
    #[must_use]
    pub fn compile(soc: &Soc, deployment: Arc<Deployment>) -> Self {
        let query = Arc::new(QueryPlan::new(soc, &deployment.graph, &deployment.schedule));
        let offline = if deployment.offline_streams.is_empty() {
            None
        } else {
            Some(Arc::new(OfflinePlan::new(
                soc,
                &deployment.graph,
                &deployment.offline_streams,
            )))
        };
        PlannedDeployment { deployment, query, offline }
    }
}

/// How large the synthetic validation sets are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// Full paper-sized splits (50k / 5k / 2k / 2k).
    Full,
    /// Reduced splits for fast tests and examples.
    Reduced(usize),
}

impl DatasetScale {
    fn len(self, full: usize) -> usize {
        match self {
            DatasetScale::Full => full,
            DatasetScale::Reduced(n) => n.min(full).max(1),
        }
    }
}

/// Task-specific dataset + prediction state.
#[derive(Debug, Clone)]
pub enum TaskData {
    /// ImageNet classification.
    Classification(SyntheticImageNet),
    /// COCO detection.
    Detection(SyntheticCoco),
    /// ADE20K segmentation with the calibrated per-pixel accuracy.
    Segmentation(SyntheticAde20k, f64),
    /// SQuAD question answering.
    Qa(SyntheticSquad),
    /// Speech recognition (extension task).
    Speech(SyntheticLibriSpeech),
    /// Super-resolution with the calibrated noise sigma (extension task).
    SuperRes(SyntheticDiv2k, f64),
}

impl TaskData {
    /// Number of validation samples.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            TaskData::Classification(d) => d.len(),
            TaskData::Detection(d) => d.len(),
            TaskData::Segmentation(d, _) => d.len(),
            TaskData::Qa(d) => d.len(),
            TaskData::Speech(d) => d.len(),
            TaskData::SuperRes(d, _) => d.len(),
        }
    }

    /// Whether the dataset is empty (never).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A task-specific prediction, scored later by the real metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum Prediction {
    /// Predicted class label.
    Class(u32),
    /// Predicted detections.
    Detections(Vec<Detection>),
    /// Predicted segmentation map.
    Map(LabelMap),
    /// Predicted answer span.
    Span(AnswerSpan),
    /// Predicted transcript (word ids).
    Transcript(Vec<u32>),
    /// Reconstructed high-resolution image.
    Reconstruction(Image),
}

/// A deployment + simulated SoC bound to a benchmark's dataset.
///
/// The SoC description and the compiled deployment are immutable for the
/// lifetime of a run and held behind [`Arc`] so the suite runner's
/// compilation cache can share one compile across concurrent runs; all
/// mutable per-run state lives in [`SocState`].
#[derive(Debug)]
pub struct DeviceSut {
    /// SoC description (immutable, shareable across runs).
    pub soc: Arc<Soc>,
    /// Compiled deployment under test (immutable, shareable across runs).
    pub deployment: Arc<Deployment>,
    /// Mutable device state (thermal, energy) — persists across queries.
    pub state: SocState,
    /// Dataset and quality-model state.
    pub data: TaskData,
    /// Achieved quality level (FP32 quality x numerics retention).
    pub target_quality: f64,
    seed: u64,
    /// Compiled single-stream plan (graph traversal hoisted out of the
    /// per-query hot loop).
    plan: Arc<QueryPlan>,
    /// Compiled offline plan, when the deployment has offline streams.
    offline_plan: Option<Arc<OfflinePlan>>,
    /// Full simulator result of the most recent single-stream query,
    /// kept so trace sinks can pull telemetry without re-running or
    /// perturbing the simulation.
    last_query: Option<QueryResult>,
    /// Steady-state fast-forward memo: once a query has executed at a
    /// given DVFS operating point, later queries at the same frequency
    /// bits replay the recorded roofline results in O(1) — bit-identical
    /// by construction (see [`QueryPlan::execute_memo`]). Per-run state,
    /// deliberately *not* part of any score or trace.
    memo: ExecMemo,
}

impl DeviceSut {
    /// Binds a deployment to a benchmark definition.
    ///
    /// The achieved quality is the FP32 reference quality degraded by the
    /// deployment scheme's retention (the `quant` quality model). Owned
    /// values and pre-shared `Arc`s are both accepted (`Arc<T>: From<T>`),
    /// so one-off callers keep passing plain `Soc`/`Deployment` while the
    /// suite runner hands in cached deployments without cloning them.
    #[must_use]
    pub fn new(
        soc: impl Into<Arc<Soc>>,
        deployment: impl Into<Arc<Deployment>>,
        def: &BenchmarkDef,
        scale: DatasetScale,
        seed: u64,
        ambient_c: f64,
    ) -> Self {
        let soc = soc.into();
        let planned = PlannedDeployment::compile(&soc, deployment.into());
        Self::with_plans(soc, planned, def, scale, seed, ambient_c)
    }

    /// Binds an already-planned deployment to a benchmark definition —
    /// [`Self::new`] minus the plan compilation. The suite runner's plan
    /// cache hands the same [`PlannedDeployment`] to every run of a
    /// `(chip, backend, model)` triple.
    #[must_use]
    pub fn with_plans(
        soc: impl Into<Arc<Soc>>,
        planned: PlannedDeployment,
        def: &BenchmarkDef,
        scale: DatasetScale,
        seed: u64,
        ambient_c: f64,
    ) -> Self {
        let soc = soc.into();
        let PlannedDeployment { deployment, query: plan, offline: offline_plan } = planned;
        let retention = nominal_retention(deployment.scheme, Sensitivity::for_model(def.model));
        let target_quality = def.fp32_quality * retention;
        let data = match def.task {
            Task::ImageClassification => TaskData::Classification(SyntheticImageNet::with_len(
                seed,
                scale.len(mobile_data::datasets::IMAGENET_VAL_LEN),
            )),
            Task::ObjectDetection => TaskData::Detection(SyntheticCoco::with_len(
                seed,
                scale.len(mobile_data::datasets::COCO_VAL_LEN),
            )),
            Task::ImageSegmentation => {
                let ds = SyntheticAde20k::with_params(
                    seed,
                    scale.len(mobile_data::datasets::ADE20K_VAL_LEN),
                    64,
                );
                let pixel_acc = sim_infer::pixel_accuracy_for_miou(&ds, target_quality);
                TaskData::Segmentation(ds, pixel_acc)
            }
            Task::QuestionAnswering => TaskData::Qa(SyntheticSquad::with_len(
                seed,
                scale.len(mobile_data::datasets::SQUAD_MINI_DEV_LEN),
            )),
            Task::SpeechRecognition => TaskData::Speech(SyntheticLibriSpeech::with_len(
                seed,
                scale.len(mobile_data::extended::SPEECH_DEV_LEN),
            )),
            Task::SuperResolution => {
                // target_quality is PSNR in dB; invert to a noise level.
                // Reduced-scale SR datasets also shrink the image so tests
                // stay fast (class statistics are resolution independent).
                let (h, w) = match scale {
                    DatasetScale::Full => (720, 1280),
                    DatasetScale::Reduced(_) => (72, 128),
                };
                let ds = SyntheticDiv2k::with_params(
                    seed,
                    scale.len(mobile_data::extended::SR_VAL_LEN),
                    h,
                    w,
                );
                let sigma = sim_infer::noise_sigma_for_psnr(&ds, target_quality);
                TaskData::SuperRes(ds, sigma)
            }
        };
        let state = soc.new_state(ambient_c);
        DeviceSut {
            soc,
            deployment,
            state,
            data,
            target_quality,
            seed,
            plan,
            offline_plan,
            last_query: None,
            memo: ExecMemo::new(),
        }
    }

    fn predict(&self, sample_index: usize) -> Prediction {
        match &self.data {
            TaskData::Classification(d) => {
                Prediction::Class(sim_infer::classify(d, sample_index, self.target_quality, self.seed))
            }
            TaskData::Detection(d) => {
                Prediction::Detections(sim_infer::detect(d, sample_index, self.target_quality, self.seed))
            }
            TaskData::Segmentation(d, pixel_acc) => {
                Prediction::Map(sim_infer::segment(d, sample_index, *pixel_acc, self.seed))
            }
            TaskData::Qa(d) => {
                Prediction::Span(sim_infer::answer(d, sample_index, self.target_quality, self.seed))
            }
            TaskData::Speech(d) => Prediction::Transcript(sim_infer::transcribe(
                d,
                sample_index,
                self.target_quality,
                self.seed,
            )),
            TaskData::SuperRes(d, sigma) => {
                Prediction::Reconstruction(sim_infer::reconstruct(d, sample_index, *sigma, self.seed))
            }
        }
    }
}

impl SystemUnderTest for DeviceSut {
    type Response = Prediction;

    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, Prediction) {
        let latency = loadgen::sut::SplitQuery::advance_query(self, sample_index);
        (latency, self.predict(sample_index))
    }

    fn issue_batch(&mut self, sample_indices: &[usize]) -> (SimDuration, Vec<Prediction>) {
        let result = self
            .offline_plan
            .as_ref()
            .expect("offline needs at least one stream")
            .execute(&mut self.state, sample_indices.len() as u64, OFFLINE_BATCH);
        let predictions = sample_indices.iter().map(|&i| self.predict(i)).collect();
        (result.duration, predictions)
    }

    fn description(&self) -> String {
        format!(
            "{} / {} / {} on {}",
            self.soc.name,
            self.deployment.backend,
            self.deployment.scheme,
            self.deployment.accelerator_summary(&self.soc),
        )
    }

    fn last_telemetry(&self) -> Option<QueryTelemetry> {
        self.last_query.as_ref().map(|r| query_telemetry(&self.soc, r))
    }

    fn idle(&mut self, dt: SimDuration) {
        self.state.thermal.cooldown(dt);
    }
}

impl loadgen::sut::SplitQuery for DeviceSut {
    fn advance_query(&mut self, _sample_index: usize) -> SimDuration {
        let result = self.plan.execute_memo(&mut self.state, &mut self.memo);
        let latency = result.latency;
        self.last_query = Some(result);
        latency
    }

    fn predict(&self, sample_index: usize) -> Prediction {
        DeviceSut::predict(self, sample_index)
    }
}

impl DeviceSut {
    /// Queries served by the steady-state fast-forward memo (excludes the
    /// recording walk at each new DVFS operating point). Observability
    /// only — never part of a score.
    #[must_use]
    pub fn fast_forward_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Distinct DVFS operating points the fast-forward memo has recorded.
    #[must_use]
    pub fn fast_forward_operating_points(&self) -> usize {
        self.memo.operating_points()
    }
}

/// A performance-only device SUT: the compiled query plan on a fresh
/// simulated device, with no dataset or prediction state attached.
///
/// The server and multi-stream searches probe many candidate operating
/// points, and each probe must start from a cold device so thermal state
/// cannot leak between candidates. Building a full [`DeviceSut`] per probe
/// would re-synthesize the validation set every time; this SUT carries
/// only what performance mode touches — the shared plan `Arc`s plus a
/// fresh [`SocState`] — so probes are cheap to mint. Latency evolution is
/// identical to [`DeviceSut`] (same plan, same memo fast-forward, same
/// thermal model), and [`SystemUnderTest::description`] matches it byte
/// for byte so probe logs carry the same header.
#[derive(Debug)]
pub struct PerfDeviceSut {
    /// SoC description (immutable, shared).
    pub soc: Arc<Soc>,
    /// Compiled deployment under test (immutable, shared).
    pub deployment: Arc<Deployment>,
    /// Mutable device state (thermal, energy) — persists across queries.
    pub state: SocState,
    plan: Arc<QueryPlan>,
    last_query: Option<QueryResult>,
    memo: ExecMemo,
}

impl PerfDeviceSut {
    /// A fresh device at `ambient_c` running a planned deployment.
    #[must_use]
    pub fn new(soc: Arc<Soc>, planned: &PlannedDeployment, ambient_c: f64) -> Self {
        let state = soc.new_state(ambient_c);
        PerfDeviceSut {
            deployment: Arc::clone(&planned.deployment),
            plan: Arc::clone(&planned.query),
            state,
            soc,
            last_query: None,
            memo: ExecMemo::new(),
        }
    }
}

impl SystemUnderTest for PerfDeviceSut {
    type Response = ();

    fn issue_query(&mut self, _sample_index: usize) -> (SimDuration, ()) {
        let result = self.plan.execute_memo(&mut self.state, &mut self.memo);
        let latency = result.latency;
        self.last_query = Some(result);
        (latency, ())
    }

    fn description(&self) -> String {
        format!(
            "{} / {} / {} on {}",
            self.soc.name,
            self.deployment.backend,
            self.deployment.scheme,
            self.deployment.accelerator_summary(&self.soc),
        )
    }

    fn last_telemetry(&self) -> Option<QueryTelemetry> {
        self.last_query.as_ref().map(|r| query_telemetry(&self.soc, r))
    }

    fn idle(&mut self, dt: SimDuration) {
        self.state.thermal.cooldown(dt);
    }
}

/// K device lanes of one deployment driven in lockstep through the
/// batched plan executor.
///
/// Where [`DeviceSut`] advances one simulated device per query,
/// `BatchDeviceSut` advances K — one pass over the compiled op arrays per
/// query step ([`soc_sim::plan_batch::BatchPlan`]). Each lane is
/// bit-identical to a scalar [`DeviceSut`] run of the same device, so the
/// batched single-stream harness path produces byte-identical per-lane
/// results and logs (the `batch_smoke` golden test diffs them).
///
/// Performance mode only: lanes report latencies, not predictions —
/// accuracy mode stays on the scalar path.
#[derive(Debug)]
pub struct BatchDeviceSut {
    /// SoC description (immutable, shared with the scalar path).
    pub soc: Arc<Soc>,
    /// Compiled deployment under test.
    pub deployment: Arc<Deployment>,
    plan: soc_sim::plan_batch::BatchPlan,
    batch: soc_sim::plan_batch::BatchState,
    /// Original lane id of each in-flight lane (positions shift as lanes
    /// retire).
    lane_ids: Vec<usize>,
    /// Final state of each retired lane, by original lane id.
    finished: Vec<Option<SocState>>,
    lanes_executed: u64,
}

impl BatchDeviceSut {
    /// Fans a planned deployment out to `lanes` fresh devices at
    /// `ambient_c`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(soc: Arc<Soc>, planned: &PlannedDeployment, lanes: usize, ambient_c: f64) -> Self {
        let states: Vec<SocState> = (0..lanes).map(|_| soc.new_state(ambient_c)).collect();
        Self::with_states(soc, planned, &states)
    }

    /// Fans a planned deployment out over explicit per-lane device states
    /// (heterogeneous ambients, battery levels, pre-warmed thermals).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    #[must_use]
    pub fn with_states(soc: Arc<Soc>, planned: &PlannedDeployment, states: &[SocState]) -> Self {
        assert!(!states.is_empty(), "batch needs at least one lane");
        BatchDeviceSut {
            soc,
            deployment: Arc::clone(&planned.deployment),
            plan: soc_sim::plan_batch::BatchPlan::broadcast(Arc::clone(&planned.query), states.len()),
            batch: soc_sim::plan_batch::BatchState::gather(states),
            lane_ids: (0..states.len()).collect(),
            finished: vec![None; states.len()],
            lanes_executed: 0,
        }
    }

    /// The final device state of a retired lane (by original lane id);
    /// `None` while the lane is still in flight.
    #[must_use]
    pub fn final_state(&self, lane_id: usize) -> Option<&SocState> {
        self.finished[lane_id].as_ref()
    }

    /// Total lane-queries executed so far (K lanes per step count K).
    /// Feeds the `plan_batch_lanes_executed` metric.
    #[must_use]
    pub fn lanes_executed(&self) -> u64 {
        self.lanes_executed
    }
}

impl loadgen::sut::BatchSut for BatchDeviceSut {
    fn lanes(&self) -> usize {
        self.lane_ids.len()
    }

    fn issue_query_lanes(&mut self, _sample_index: usize, out: &mut Vec<SimDuration>) {
        let latencies = self.plan.execute_latencies(&mut self.batch);
        self.lanes_executed += latencies.len() as u64;
        out.clear();
        out.extend_from_slice(latencies);
    }

    fn lane_throttle(&self, lane: usize) -> Option<(f64, f64)> {
        Some((
            self.batch.last_freq_factors()[lane],
            self.batch.last_temperatures_c()[lane],
        ))
    }

    fn retire_lane(&mut self, lane: usize) {
        let id = self.lane_ids.remove(lane);
        self.finished[id] = Some(self.batch.remove_lane(lane));
        if self.plan.lanes() > 1 {
            self.plan.remove_lane(lane);
        }
    }

    fn lane_description(&self, _lane: usize) -> String {
        // Every lane runs the same deployment; the header must match the
        // scalar DeviceSut::description byte for byte.
        format!(
            "{} / {} / {} on {}",
            self.soc.name,
            self.deployment.backend,
            self.deployment.scheme,
            self.deployment.accelerator_summary(&self.soc),
        )
    }
}

/// Builds the trace-facing telemetry record for one simulator
/// [`QueryResult`]: per-stage engine occupancy (named after the SoC's
/// engines), the compute/transfer/launch/sync decomposition, and the
/// cumulative energy reading. Shared by [`DeviceSut`] and by examples that
/// drive [`soc_sim::executor::run_query`] directly.
#[must_use]
pub fn query_telemetry(soc: &Soc, result: &QueryResult) -> QueryTelemetry {
    let stages = result
        .breakdown
        .stage_engines
        .iter()
        .zip(&result.breakdown.stage_compute)
        .map(|(&id, &compute)| StageTelemetry {
            engine: soc.engine(id).name.clone(),
            compute_ns: compute.as_nanos(),
        })
        .collect();
    QueryTelemetry {
        freq_factor: result.freq_factor,
        dvfs_level: result.dvfs_level,
        temperature_c: result.temperature_c,
        compute_ns: result.breakdown.compute().as_nanos(),
        transfer_ns: result.breakdown.transfer.as_nanos(),
        overhead_ns: result.breakdown.overhead.as_nanos(),
        launch_ns: result.breakdown.launch.as_nanos(),
        sync_ns: result.breakdown.sync.as_nanos(),
        energy_j: result.total_joules,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{suite, SuiteVersion};
    use mobile_backend::backend::Backend;
    use mobile_backend::backends::Neuron;
    use soc_sim::catalog::ChipId;

    fn sut_for(task_index: usize) -> DeviceSut {
        let soc = ChipId::Dimensity1100.build();
        let def = &suite(SuiteVersion::V1_0)[task_index];
        let deployment = Neuron.compile(&def.model.build(), &soc).unwrap();
        DeviceSut::new(soc, deployment, def, DatasetScale::Reduced(64), 42, 22.0)
    }

    #[test]
    fn query_returns_latency_and_prediction() {
        let mut sut = sut_for(0);
        let (d, p) = sut.issue_query(0);
        assert!(d.as_millis_f64() > 0.5);
        assert!(matches!(p, Prediction::Class(_)));
    }

    #[test]
    fn each_task_produces_its_prediction_kind() {
        let kinds: Vec<Prediction> = (0..4)
            .map(|i| sut_for(i).issue_query(0).1)
            .collect();
        assert!(matches!(kinds[0], Prediction::Class(_)));
        assert!(matches!(kinds[1], Prediction::Detections(_)));
        assert!(matches!(kinds[2], Prediction::Map(_)));
        assert!(matches!(kinds[3], Prediction::Span(_)));
    }

    #[test]
    fn thermal_state_persists_across_queries() {
        let mut sut = sut_for(2); // segmentation: heavy
        let t0 = sut.state.thermal.temperature_c();
        for _ in 0..50 {
            let _ = sut.issue_query(0);
        }
        assert!(sut.state.thermal.temperature_c() > t0);
    }

    #[test]
    fn batch_uses_offline_streams() {
        let mut sut = sut_for(0);
        let samples: Vec<usize> = (0..64).map(|i| i % 64).collect();
        let (d, preds) = sut.issue_batch(&samples);
        assert_eq!(preds.len(), 64);
        assert!(d > SimDuration::ZERO);
    }

    #[test]
    fn description_names_the_stack() {
        let sut = sut_for(0);
        let desc = sut.description();
        assert!(desc.contains("Dimensity 1100"));
        assert!(desc.contains("Neuron"));
    }
}
