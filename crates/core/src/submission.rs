//! Rolling submissions (paper Appendix E): a registry of results that can
//! be appended between formal rounds, "allowing up-to-date and consistent
//! reporting of the AI performance".
//!
//! Entries are validated on admission (quality gate + rule compliance) and
//! the registry serializes to JSON for publication — the transparency
//! requirement of the paper's Section 8.

use crate::harness::BenchmarkScore;
use crate::task::{SuiteVersion, Task};
use mobile_backend::backend::BackendId;
use serde::{Deserialize, Serialize};
use soc_sim::catalog::ChipId;
use std::collections::BTreeMap;

/// A calendar date (no time-of-day; submission windows are day-granular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Year.
    pub year: u16,
    /// Month (1-12).
    pub month: u8,
    /// Day (1-31).
    pub day: u8,
}

impl Date {
    /// Creates a date.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range month/day.
    #[must_use]
    pub fn new(year: u16, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        Date { year, month, day }
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// One published result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionEntry {
    /// Submission date.
    pub date: Date,
    /// Submitting organization.
    pub submitter: String,
    /// Platform.
    pub chip: ChipId,
    /// Suite version the result targets.
    pub version: SuiteVersion,
    /// Task.
    pub task: Task,
    /// Code path used.
    pub backend: BackendId,
    /// Single-stream p90 latency (ms).
    pub latency_ms: f64,
    /// Offline throughput (FPS), when submitted.
    pub offline_fps: Option<f64>,
    /// Server scenario: max offered load meeting the latency bound
    /// (queries/s), when submitted.
    pub server_qps: Option<f64>,
    /// Multi-stream scenario: max streams per frame, when submitted.
    pub multi_stream_streams: Option<u64>,
    /// Measured accuracy (metric units).
    pub accuracy: f64,
}

impl SubmissionEntry {
    /// Builds an entry from a harness score.
    #[must_use]
    pub fn from_score(date: Date, submitter: &str, version: SuiteVersion, score: &BenchmarkScore) -> Self {
        SubmissionEntry {
            date,
            submitter: submitter.to_owned(),
            chip: score.chip,
            version,
            task: score.def.task,
            backend: score.backend,
            latency_ms: score.latency_ms(),
            offline_fps: score.offline.as_ref().map(|o| o.throughput_fps),
            server_qps: score.server_qps(),
            multi_stream_streams: score.multi_stream_streams(),
            accuracy: score.accuracy,
        }
    }
}

/// Why the registry refused an entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Accuracy below the task's quality gate — the paper's accuracy-first
    /// rule: such results "will indeed mislead the industry".
    BelowQualityGate {
        /// Claimed accuracy.
        accuracy: f64,
        /// Required target.
        target: f64,
    },
    /// Duplicate of an existing entry (same submitter/chip/task/version
    /// and date).
    Duplicate,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::BelowQualityGate { accuracy, target } => {
                write!(f, "accuracy {accuracy:.4} below quality target {target:.4}")
            }
            RejectReason::Duplicate => write!(f, "duplicate submission"),
        }
    }
}

/// The rolling-submission registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubmissionRegistry {
    entries: Vec<SubmissionEntry>,
}

impl SubmissionRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        SubmissionRegistry::default()
    }

    /// All entries, in admission order.
    #[must_use]
    pub fn entries(&self) -> &[SubmissionEntry] {
        &self.entries
    }

    /// Admits an entry after checking the quality gate and duplicates.
    ///
    /// # Errors
    ///
    /// Returns the rejection reason; the registry is unchanged on error.
    pub fn submit(&mut self, entry: SubmissionEntry) -> Result<(), RejectReason> {
        let target = crate::extensions::extended_suite(entry.version)
            .into_iter()
            .find(|d| d.task == entry.task)
            .map(|d| d.quality_target())
            .unwrap_or(0.0);
        if entry.accuracy < target {
            return Err(RejectReason::BelowQualityGate { accuracy: entry.accuracy, target });
        }
        let dup = self.entries.iter().any(|e| {
            e.submitter == entry.submitter
                && e.chip == entry.chip
                && e.task == entry.task
                && e.version == entry.version
                && e.date == entry.date
        });
        if dup {
            return Err(RejectReason::Duplicate);
        }
        self.entries.push(entry);
        Ok(())
    }

    /// The best (lowest-latency) valid entry per task, as of `cutoff`.
    #[must_use]
    pub fn leaderboard(&self, version: SuiteVersion, cutoff: Date) -> BTreeMap<Task, SubmissionEntry> {
        let mut best: BTreeMap<Task, SubmissionEntry> = BTreeMap::new();
        for e in &self.entries {
            if e.version != version || e.date > cutoff {
                continue;
            }
            match best.get(&e.task) {
                Some(cur) if cur.latency_ms <= e.latency_ms => {}
                _ => {
                    best.insert(e.task, e.clone());
                }
            }
        }
        best
    }

    /// Latency history for one (chip, task), date-ordered — the
    /// generational trend data technical roadmaps like IRDS consume
    /// (paper Appendix E).
    #[must_use]
    pub fn history(&self, chip: ChipId, task: Task) -> Vec<(Date, f64)> {
        let mut points: Vec<(Date, f64)> = self
            .entries
            .iter()
            .filter(|e| e.chip == chip && e.task == task)
            .map(|e| (e.date, e.latency_ms))
            .collect();
        points.sort_by_key(|&(d, _)| d);
        points
    }

    /// Serializes the registry to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never for these types.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry serializes")
    }

    /// Parses a registry from JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(day: u8, task: Task, latency: f64, accuracy: f64) -> SubmissionEntry {
        SubmissionEntry {
            date: Date::new(2021, 6, day),
            submitter: "Acme".into(),
            chip: ChipId::Snapdragon888,
            version: SuiteVersion::V1_0,
            task,
            backend: BackendId::Snpe,
            latency_ms: latency,
            offline_fps: None,
            server_qps: None,
            multi_stream_streams: None,
            accuracy,
        }
    }

    #[test]
    fn quality_gate_enforced_on_admission() {
        let mut reg = SubmissionRegistry::new();
        // Classification gate is 0.7467: a 70% result is refused.
        let err = reg.submit(entry(1, Task::ImageClassification, 1.9, 0.70)).unwrap_err();
        assert!(matches!(err, RejectReason::BelowQualityGate { .. }));
        assert!(reg.entries().is_empty());
        // A compliant result is admitted.
        reg.submit(entry(1, Task::ImageClassification, 1.9, 0.751)).unwrap();
        assert_eq!(reg.entries().len(), 1);
    }

    #[test]
    fn duplicates_refused() {
        let mut reg = SubmissionRegistry::new();
        reg.submit(entry(1, Task::ImageClassification, 1.9, 0.751)).unwrap();
        let err = reg.submit(entry(1, Task::ImageClassification, 1.8, 0.751)).unwrap_err();
        assert_eq!(err, RejectReason::Duplicate);
        // Same content on a later date is a rolling update, not a dup.
        reg.submit(entry(2, Task::ImageClassification, 1.8, 0.751)).unwrap();
    }

    #[test]
    fn leaderboard_respects_cutoff() {
        let mut reg = SubmissionRegistry::new();
        reg.submit(entry(1, Task::ImageClassification, 2.0, 0.751)).unwrap();
        reg.submit(entry(10, Task::ImageClassification, 1.5, 0.751)).unwrap();
        let early = reg.leaderboard(SuiteVersion::V1_0, Date::new(2021, 6, 5));
        assert!((early[&Task::ImageClassification].latency_ms - 2.0).abs() < 1e-12);
        let late = reg.leaderboard(SuiteVersion::V1_0, Date::new(2021, 6, 30));
        assert!((late[&Task::ImageClassification].latency_ms - 1.5).abs() < 1e-12);
    }

    #[test]
    fn history_is_date_ordered() {
        let mut reg = SubmissionRegistry::new();
        reg.submit(entry(20, Task::ImageClassification, 1.5, 0.751)).unwrap();
        reg.submit(entry(3, Task::ImageClassification, 2.0, 0.751)).unwrap();
        let h = reg.history(ChipId::Snapdragon888, Task::ImageClassification);
        assert_eq!(h.len(), 2);
        assert!(h[0].0 < h[1].0);
        assert!(h[0].1 > h[1].1, "latency improves over time");
    }

    #[test]
    fn json_round_trip() {
        let mut reg = SubmissionRegistry::new();
        reg.submit(entry(1, Task::ImageClassification, 1.9, 0.751)).unwrap();
        reg.submit(entry(2, Task::ImageSegmentation, 19.0, 0.54)).unwrap();
        let text = reg.to_json();
        let parsed = SubmissionRegistry::from_json(&text).unwrap();
        assert_eq!(parsed, reg);
    }

    #[test]
    fn extension_tasks_accepted() {
        let mut reg = SubmissionRegistry::new();
        reg.submit(entry(1, Task::SuperResolution, 60.0, 33.5)).unwrap();
        let err = reg.submit(entry(2, Task::SuperResolution, 55.0, 30.0)).unwrap_err();
        assert!(matches!(err, RejectReason::BelowQualityGate { .. }));
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_date_rejected() {
        let _ = Date::new(2021, 13, 1);
    }
}
