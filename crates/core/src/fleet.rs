//! Fleet-scale population sweeps on the batched lockstep executor.
//!
//! The paper scores eight *lab* phones; the fleet executor asks what the
//! same deployments look like across a simulated *installed base* —
//! millions of field units whose silicon bin, thermal envelope, climate,
//! battery wear and background load are sampled per unit from a
//! [`FleetProfile`]. Per-device scores stream into sharded
//! [`LatencyHistogram`]s (merged exactly, shard order fixed), so the
//! population is never materialized: memory is O(shard), not O(fleet).
//!
//! # How a shard runs
//!
//! Each shard regenerates its slice of the population from
//! `(seed, index)` ([`soc_sim::fleet::sample_unit`]), groups units by
//! chip, **sorts each group by the unit's dedup key**, and packs them
//! into K-lane [`soc_sim::plan_batch::BatchPlan`] waves:
//!
//! * sorting clusters bit-equal units into the same wave, so the
//!   executor's frequency-bit dedup collapses them to one op-array walk
//!   per step (the uniform-fleet fast path);
//! * per-unit background load re-lowers through
//!   [`SweepPlan::relower_query_batch_into`] — O(stages) per lane, never
//!   a recompile, no allocation after the first wave;
//! * one [`BatchState`] per (shard, chip) is refilled across waves, so
//!   the steady state allocates nothing per wave;
//! * a bounded [`FleetUnitMemo`] replays the score of units whose
//!   sampled state is bit-equal to one already executed in the shard —
//!   uniform sub-populations fast-forward instead of re-running.
//!
//! # Determinism contract
//!
//! For a fixed `(seed, devices, profile, lanes, queries_per_device,
//! shard_devices)` the report is **byte-identical regardless of worker
//! count or shard interleaving**: sampling is a pure function of
//! `(seed, index)`, shard boundaries are fixed (never derived from the
//! worker count), [`par_map`] merges in item order, histogram merging is
//! exact, and the report contains no wall-clock. `make fleet` holds this
//! contract as a byte-diff across `MLPERF_WORKERS` settings.

use crate::app::submission_backend;
use crate::metrics::metrics;
use crate::obs::span::{span, Phase};
use crate::report::render_table;
use crate::runner::{default_threads, par_map, CompileCache};
use crate::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::{BackendId, CompileError};
use mobile_metrics::hist::LatencyHistogram;
use nn_graph::models::ModelId;
use serde::Serialize;
use soc_sim::catalog::{ChipId, Generation};
use soc_sim::fleet::{sample_unit, DeviceUnit, FleetProfile};
use soc_sim::plan::{PlanDelta, SweepPlan};
use soc_sim::plan_batch::{BatchPlan, BatchState};
use soc_sim::soc::{Soc, SocState};
use std::sync::Arc;

/// A fleet sweep: how many devices, how they are sampled, and how the
/// work is sharded. Scores depend on every field except `threads`,
/// which only changes wall-clock.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Population size.
    pub devices: u64,
    /// Sampling seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Queries each device runs (its thermal trajectory spans them).
    pub queries_per_device: u32,
    /// Lockstep lanes per wave (K).
    pub lanes: usize,
    /// Devices per shard. Fixed — never derived from the worker count —
    /// so shard boundaries (and therefore scores) are identical no
    /// matter how many workers process them.
    pub shard_devices: u64,
    /// Worker threads; affects wall-clock only.
    pub threads: usize,
    /// Chips in the population; device `i` is a `chips[i % len]` unit.
    pub chips: Vec<ChipId>,
    /// The per-unit perturbation distributions.
    pub profile: FleetProfile,
}

impl FleetConfig {
    /// A mixed-catalog fleet: all eight chips, the default consumer
    /// profile, K=8 lanes, 24 queries per device, 2048-device shards.
    #[must_use]
    pub fn new(devices: u64, seed: u64) -> Self {
        FleetConfig {
            devices,
            seed,
            queries_per_device: 24,
            lanes: 8,
            shard_devices: 2048,
            threads: default_threads(),
            chips: ChipId::ALL.to_vec(),
            profile: FleetProfile::default(),
        }
    }
}

/// One device's scored trajectory: the values the fleet histograms
/// record, and the unit the [`FleetUnitMemo`] replays for bit-equal
/// units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitScore {
    /// Steady-state single-stream latency: the device's final query (ns).
    pub latency_ns: u64,
    /// Total active energy over the device's whole run (µJ).
    pub energy_uj: u64,
    /// Simulated time until the first query dispatched below the unit's
    /// top DVFS point (thermal ramp or battery saver); `None` if the
    /// device never slowed down.
    pub throttle_ns: Option<u64>,
}

/// Bounded LRU memo of unit trajectories, keyed by
/// [`DeviceUnit::dedup_key`] — the cross-wave complement of the
/// executor's within-wave frequency-bit dedup, in the mould of
/// [`soc_sim::plan::ExecMemo`] (which fast-forwards *queries* within one
/// deployment; this fast-forwards whole *devices* within one shard).
/// Units with bit-equal sampled state run bit-equal trajectories, so
/// the first execution's score serves every later duplicate.
#[derive(Debug)]
pub struct FleetUnitMemo {
    /// `(key, score, last-touch stamp)`, sorted by key for binary search.
    entries: Vec<([u64; 6], UnitScore, u64)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    evictions: u64,
}

impl FleetUnitMemo {
    /// Default capacity: comfortably above the distinct-key count of a
    /// default-profile shard, so steady state evicts rarely.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty memo with [`Self::DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty memo holding at most `capacity` unit trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "memo capacity must be positive");
        FleetUnitMemo { entries: Vec::new(), capacity, clock: 0, hits: 0, evictions: 0 }
    }

    /// Replays the score of a unit with this exact sampled state, if one
    /// already executed.
    pub fn get(&mut self, key: &[u64; 6]) -> Option<UnitScore> {
        self.clock += 1;
        match self.entries.binary_search_by(|(k, _, _)| k.cmp(key)) {
            Ok(i) => {
                self.entries[i].2 = self.clock;
                self.hits += 1;
                Some(self.entries[i].1)
            }
            Err(_) => None,
        }
    }

    /// Records an executed unit's score, evicting the least-recently
    /// touched entry when full. Re-inserting an existing key only
    /// refreshes its stamp (bit-equal units score identically).
    pub fn insert(&mut self, key: [u64; 6], score: UnitScore) {
        self.clock += 1;
        match self.entries.binary_search_by(|(k, _, _)| k.cmp(&key)) {
            Ok(i) => self.entries[i].2 = self.clock,
            Err(i) => {
                if self.entries.len() == self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, stamp))| *stamp)
                        .map(|(j, _)| j)
                        .expect("memo is non-empty when full");
                    self.entries.remove(lru);
                    self.evictions += 1;
                    // Removal may shift the insertion point.
                    let i = self
                        .entries
                        .binary_search_by(|(k, _, _)| k.cmp(&key))
                        .expect_err("key is absent");
                    self.entries.insert(i, (key, score, self.clock));
                    return;
                }
                self.entries.insert(i, (key, score, self.clock));
            }
        }
    }

    /// Scores replayed instead of executed.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries dropped to stay within capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Distinct unit trajectories currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no trajectories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for FleetUnitMemo {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-(chip, backend, model) population scores: the sharded histograms
/// merged across the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetCell {
    /// Chip label.
    pub chip: String,
    /// Submission backend label.
    pub backend: String,
    /// Model label.
    pub model: String,
    /// Devices of this cell in the population.
    pub devices: u64,
    /// Devices that dispatched at least one query below their top DVFS
    /// point.
    pub throttled_devices: u64,
    /// Steady-state single-stream latency per device (ns).
    pub latency_ns: LatencyHistogram,
    /// Total active energy per device over its run (µJ).
    pub energy_uj: LatencyHistogram,
    /// Time to first slowed dispatch, over throttled devices only (ns).
    pub throttle_ns: LatencyHistogram,
}

/// The merged outcome of a fleet sweep. Everything in here derives from
/// the simulation alone — no wall-clock — so serializing it (or
/// rendering [`render_fleet_report`]) is byte-stable across worker
/// counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Population size.
    pub devices: u64,
    /// Sampling seed.
    pub seed: u64,
    /// Lockstep lanes per wave.
    pub lanes: usize,
    /// Queries per device.
    pub queries_per_device: u32,
    /// Lane-queries executed through the batched executor.
    pub lane_queries: u64,
    /// Lane-queries that shared another lane's op-array walk.
    pub lanes_deduped: u64,
    /// Devices replayed from a unit memo instead of executed.
    pub memo_hits: u64,
    /// Unit-memo entries evicted across all shards.
    pub memo_evictions: u64,
    /// Per-(chip, backend, model) population scores.
    pub cells: Vec<FleetCell>,
}

/// One compiled fleet cell: everything a shard needs to run a chip's
/// sub-population.
struct CellTarget {
    chip: ChipId,
    backend: BackendId,
    model: ModelId,
    soc: Arc<Soc>,
    sweep: Arc<SweepPlan>,
}

/// Per-shard, per-cell accumulation (merged across shards in shard
/// order).
struct CellShard {
    devices: u64,
    throttled_devices: u64,
    latency_ns: LatencyHistogram,
    energy_uj: LatencyHistogram,
    throttle_ns: LatencyHistogram,
}

impl CellShard {
    fn new() -> Self {
        CellShard {
            devices: 0,
            throttled_devices: 0,
            latency_ns: LatencyHistogram::new(),
            energy_uj: LatencyHistogram::new(),
            throttle_ns: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, score: UnitScore) {
        self.devices += 1;
        self.latency_ns.record(score.latency_ns);
        self.energy_uj.record(score.energy_uj);
        if let Some(t) = score.throttle_ns {
            self.throttled_devices += 1;
            self.throttle_ns.record(t);
        }
    }
}

/// Everything a shard accumulates besides scores.
struct ShardOut {
    cells: Vec<CellShard>,
    lane_queries: u64,
    lanes_deduped: u64,
    memo_hits: u64,
    memo_evictions: u64,
}

/// Reusable per-cell-group execution buffers: allocated once per
/// (shard, chip), refilled across every wave.
struct WaveScratch {
    batch_plan: Option<BatchPlan>,
    batch: BatchState,
    states: Vec<SocState>,
    deltas: Vec<PlanDelta>,
    tops: Vec<u64>,
    elapsed_ns: Vec<u64>,
    throttle_at: Vec<Option<u64>>,
    scores: Vec<UnitScore>,
}

impl WaveScratch {
    fn new(lanes: usize) -> Self {
        WaveScratch {
            batch_plan: None,
            batch: BatchState::default(),
            states: Vec::with_capacity(lanes),
            deltas: Vec::with_capacity(lanes),
            tops: Vec::with_capacity(lanes),
            elapsed_ns: Vec::with_capacity(lanes),
            throttle_at: Vec::with_capacity(lanes),
            scores: Vec::with_capacity(lanes),
        }
    }
}

/// Executes one wave of up to K units in lockstep, leaving one
/// [`UnitScore`] per wave unit in `scratch.scores`.
fn run_wave(
    target: &CellTarget,
    wave: &[DeviceUnit],
    queries: u32,
    scratch: &mut WaveScratch,
    lane_queries: &mut u64,
    lanes_deduped: &mut u64,
) {
    let base_overhead = target.sweep.query_overhead_us();
    scratch.deltas.clear();
    scratch.states.clear();
    scratch.tops.clear();
    for unit in wave {
        scratch
            .deltas
            .push(PlanDelta::QueryOverheadUs(base_overhead + unit.extra_query_overhead_us));
        let state = unit.state(&target.soc);
        scratch.tops.push(state.dvfs.factors()[0].to_bits());
        scratch.states.push(state);
    }
    // Re-lower the per-lane overheads in place: O(stages) per lane, the
    // op arrays stay shared with the cached sweep plan.
    match scratch.batch_plan.as_mut() {
        Some(bp) => target.sweep.relower_query_batch_into(&scratch.deltas, bp),
        None => scratch.batch_plan = Some(target.sweep.relower_query_batch(&scratch.deltas)),
    }
    let bp = scratch.batch_plan.as_ref().expect("batch plan just ensured");
    scratch.batch.refill(&scratch.states);

    let k = wave.len();
    scratch.elapsed_ns.clear();
    scratch.elapsed_ns.resize(k, 0);
    scratch.throttle_at.clear();
    scratch.throttle_at.resize(k, None);
    for _ in 0..queries {
        let _ = bp.execute_latencies(&mut scratch.batch);
        *lane_queries += k as u64;
        *lanes_deduped += (k - scratch.batch.last_distinct_frequencies()) as u64;
        let freqs = scratch.batch.last_freq_factors();
        let lats = scratch.batch.last_latencies();
        for i in 0..k {
            if scratch.throttle_at[i].is_none() && freqs[i].to_bits() != scratch.tops[i] {
                // Time-to-throttle: simulated time elapsed before this
                // query dispatched below the unit's top DVFS point.
                scratch.throttle_at[i] = Some(scratch.elapsed_ns[i]);
            }
            scratch.elapsed_ns[i] += lats[i].as_nanos();
        }
    }

    scratch.scores.clear();
    let lats = scratch.batch.last_latencies();
    let joules = scratch.batch.last_total_joules();
    for i in 0..k {
        scratch.scores.push(UnitScore {
            latency_ns: lats[i].as_nanos(),
            energy_uj: (joules[i] * 1e6).round() as u64,
            throttle_ns: scratch.throttle_at[i],
        });
    }
}

/// Runs one shard's slice `[lo, hi)` of the population.
fn run_shard(config: &FleetConfig, targets: &[CellTarget], lo: u64, hi: u64) -> ShardOut {
    let mut out = ShardOut {
        cells: targets.iter().map(|_| CellShard::new()).collect(),
        lane_queries: 0,
        lanes_deduped: 0,
        memo_hits: 0,
        memo_evictions: 0,
    };
    // Sample the shard's units, grouped by cell. This is the only place
    // the population ever exists, and only one shard of it at a time.
    let mut groups: Vec<Vec<([u64; 6], u64, DeviceUnit)>> =
        targets.iter().map(|_| Vec::new()).collect();
    for index in lo..hi {
        let cell = usize::try_from(index % targets.len() as u64).expect("cell index fits");
        let unit = sample_unit(config.seed, index, &config.profile);
        groups[cell].push((unit.dedup_key(), index, unit));
    }
    let mut scratch = WaveScratch::new(config.lanes);
    let mut wave: Vec<DeviceUnit> = Vec::with_capacity(config.lanes);
    let mut wave_keys: Vec<[u64; 6]> = Vec::with_capacity(config.lanes);
    for (cell, mut group) in groups.into_iter().enumerate() {
        // Sort by dedup key (index breaks ties deterministically):
        // bit-equal units land in the same wave, where the executor's
        // frequency-bit dedup collapses them to one walk per step.
        group.sort_unstable_by_key(|&(key, index, _)| (key, index));
        let target = &targets[cell];
        let mut memo = FleetUnitMemo::new();
        scratch.batch_plan = None;
        wave.clear();
        wave_keys.clear();
        for (key, _, unit) in group {
            if let Some(score) = memo.get(&key) {
                out.cells[cell].record(score);
                continue;
            }
            wave.push(unit);
            wave_keys.push(key);
            if wave.len() == config.lanes {
                flush_wave(
                    target,
                    &wave,
                    &wave_keys,
                    config.queries_per_device,
                    &mut scratch,
                    &mut memo,
                    &mut out,
                    cell,
                );
                wave.clear();
                wave_keys.clear();
            }
        }
        if !wave.is_empty() {
            flush_wave(
                target,
                &wave,
                &wave_keys,
                config.queries_per_device,
                &mut scratch,
                &mut memo,
                &mut out,
                cell,
            );
            wave.clear();
            wave_keys.clear();
        }
        out.memo_hits += memo.hits();
        out.memo_evictions += memo.evictions();
    }
    out
}

/// Executes a pending wave and folds its scores into the shard output
/// and memo.
#[allow(clippy::too_many_arguments)]
fn flush_wave(
    target: &CellTarget,
    wave: &[DeviceUnit],
    wave_keys: &[[u64; 6]],
    queries: u32,
    scratch: &mut WaveScratch,
    memo: &mut FleetUnitMemo,
    out: &mut ShardOut,
    cell: usize,
) {
    run_wave(target, wave, queries, scratch, &mut out.lane_queries, &mut out.lanes_deduped);
    for (i, &key) in wave_keys.iter().enumerate() {
        let score = scratch.scores[i];
        memo.insert(key, score);
        out.cells[cell].record(score);
    }
}

/// The submission path a chip's fleet units run: its generation's suite
/// version, the vendor's submission backend, and the classification
/// reference model.
fn cell_path(chip: ChipId) -> (SuiteVersion, BackendId, ModelId) {
    let version = match chip.generation() {
        Generation::V0_7 => SuiteVersion::V0_7,
        Generation::V1_0 => SuiteVersion::V1_0,
    };
    let backend = submission_backend(chip, version, Task::ImageClassification);
    let model = suite(version)
        .into_iter()
        .find(|def| def.task == Task::ImageClassification)
        .expect("every suite version defines image classification")
        .model;
    (version, backend, model)
}

/// Sweeps the whole population and merges the sharded scores.
///
/// # Errors
///
/// Returns the first compile failure among the configured chips'
/// submission paths (the catalog's own submission pairs always compile).
///
/// # Panics
///
/// Panics if the config is degenerate: zero devices, lanes, queries,
/// shard size, or an empty chip list.
pub fn run_fleet(cache: &CompileCache, config: &FleetConfig) -> Result<FleetReport, CompileError> {
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(config.lanes > 0, "fleet needs at least one lane");
    assert!(config.queries_per_device > 0, "fleet needs at least one query per device");
    assert!(config.shard_devices > 0, "fleet shards need at least one device");
    assert!(!config.chips.is_empty(), "fleet needs at least one chip");
    let _suite_span = span(Phase::Suite, || {
        format!("fleet-{}-seed{}", config.devices, config.seed)
    });

    // Compile every cell once up front — the sweeps are cached, so the
    // shards below never contend on first-compile.
    let targets: Vec<CellTarget> = {
        let _span = span(Phase::Compile, || "fleet-cells".to_owned());
        config
            .chips
            .iter()
            .map(|&chip| {
                let (_, backend, model) = cell_path(chip);
                Ok(CellTarget {
                    chip,
                    backend,
                    model,
                    soc: cache.soc(chip),
                    sweep: cache.sweep_plan(chip, backend, model)?,
                })
            })
            .collect::<Result<_, CompileError>>()?
    };

    let shards: Vec<u64> = (0..config.devices.div_ceil(config.shard_devices)).collect();
    let outs: Vec<ShardOut> = par_map(&shards, config.threads, |&s| {
        let lo = s * config.shard_devices;
        let hi = config.devices.min(lo + config.shard_devices);
        let _span = span(Phase::Execute, || format!("fleet-shard-{s}"));
        let out = run_shard(config, &targets, lo, hi);
        // Live observability only — the report never reads the global
        // registry, so racy cross-shard ordering cannot leak into it.
        metrics().record_fleet_shard(hi - lo, out.lanes_deduped);
        out
    });

    // Merge in shard order (histogram merging is exact and commutative,
    // but fixing the order keeps the fold auditable).
    let mut cells: Vec<FleetCell> = targets
        .iter()
        .map(|t| FleetCell {
            chip: t.chip.to_string(),
            backend: t.backend.to_string(),
            model: t.model.name().to_owned(),
            devices: 0,
            throttled_devices: 0,
            latency_ns: LatencyHistogram::new(),
            energy_uj: LatencyHistogram::new(),
            throttle_ns: LatencyHistogram::new(),
        })
        .collect();
    let mut report = FleetReport {
        devices: config.devices,
        seed: config.seed,
        lanes: config.lanes,
        queries_per_device: config.queries_per_device,
        lane_queries: 0,
        lanes_deduped: 0,
        memo_hits: 0,
        memo_evictions: 0,
        cells: Vec::new(),
    };
    for out in outs {
        report.lane_queries += out.lane_queries;
        report.lanes_deduped += out.lanes_deduped;
        report.memo_hits += out.memo_hits;
        report.memo_evictions += out.memo_evictions;
        for (cell, shard) in cells.iter_mut().zip(out.cells) {
            cell.devices += shard.devices;
            cell.throttled_devices += shard.throttled_devices;
            cell.latency_ns.merge(&shard.latency_ns);
            cell.energy_uj.merge(&shard.energy_uj);
            cell.throttle_ns.merge(&shard.throttle_ns);
        }
    }
    report.cells = cells;
    Ok(report)
}

/// Formats nanoseconds as milliseconds with two decimals.
fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Renders the field-performance report: per-cell population
/// percentiles with the p99.9 deep tail, then the fleet-wide summary.
/// Pure function of the report — byte-stable for a fixed seed.
#[must_use]
pub fn render_fleet_report(report: &FleetReport) -> String {
    use std::fmt::Write as _;
    let header = [
        "Chip",
        "Path",
        "Devices",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
        "p50 mJ",
        "Throttled",
        "p50 s->throttle",
    ];
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .filter(|cell| cell.devices > 0)
        .map(|cell| {
            vec![
                cell.chip.clone(),
                format!("{}/{}", cell.backend, cell.model),
                cell.devices.to_string(),
                ms(cell.latency_ns.quantile(0.50)),
                ms(cell.latency_ns.quantile(0.95)),
                ms(cell.latency_ns.quantile(0.99)),
                ms(cell.latency_ns.quantile(0.999)),
                format!("{:.2}", cell.energy_uj.quantile(0.50) as f64 / 1e3),
                format!(
                    "{} ({:.1}%)",
                    cell.throttled_devices,
                    cell.throttled_devices as f64 * 100.0 / cell.devices as f64
                ),
                if cell.throttle_ns.is_empty() {
                    "-".to_owned()
                } else {
                    format!("{:.2}", cell.throttle_ns.quantile(0.50) as f64 / 1e9)
                },
            ]
        })
        .collect();
    let mut text = format!(
        "Field-performance fleet sweep - {} devices, seed {}, K={} lanes, {} queries/device\n{}",
        report.devices,
        report.seed,
        report.lanes,
        report.queries_per_device,
        render_table(&header, &rows),
    );
    let mut fleet_wide = LatencyHistogram::new();
    for cell in &report.cells {
        fleet_wide.merge(&cell.latency_ns);
    }
    if !fleet_wide.is_empty() {
        let _ = writeln!(
            text,
            "fleet-wide single-stream latency: p50 {} / p95 {} / p99 {} / p99.9 {} ms \
             over {} devices",
            ms(fleet_wide.quantile(0.50)),
            ms(fleet_wide.quantile(0.95)),
            ms(fleet_wide.quantile(0.99)),
            ms(fleet_wide.quantile(0.999)),
            fleet_wide.count(),
        );
    }
    let _ = writeln!(
        text,
        "lane dedup: {} of {} lane-queries shared another lane's walk ({:.1}%); \
         unit memo: {} replays, {} evictions",
        report.lanes_deduped,
        report.lane_queries,
        if report.lane_queries > 0 {
            report.lanes_deduped as f64 * 100.0 / report.lane_queries as f64
        } else {
            0.0
        },
        report.memo_hits,
        report.memo_evictions,
    );
    text
}

/// [`run_fleet`] + [`render_fleet_report`] in one call — the
/// `reproduce fleet` artifact body.
///
/// # Errors
///
/// Returns the first compile failure among the configured chips.
pub fn fleet_report_text(cache: &CompileCache, config: &FleetConfig) -> Result<String, CompileError> {
    Ok(render_fleet_report(&run_fleet(cache, config)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(devices: u64, threads: usize) -> FleetConfig {
        let mut config = FleetConfig::new(devices, 42);
        config.threads = threads;
        config.shard_devices = 96;
        config.chips = vec![ChipId::Dimensity1100, ChipId::Snapdragon888];
        config
    }

    #[test]
    fn unit_memo_replays_hits_and_evicts_lru() {
        let mut memo = FleetUnitMemo::with_capacity(2);
        let score = |v: u64| UnitScore { latency_ns: v, energy_uj: v, throttle_ns: None };
        let key = |v: u64| [v; 6];
        assert!(memo.get(&key(1)).is_none());
        memo.insert(key(1), score(1));
        memo.insert(key(2), score(2));
        assert_eq!(memo.get(&key(1)), Some(score(1))); // touch 1 -> 2 is LRU
        assert_eq!(memo.hits(), 1);
        memo.insert(key(3), score(3)); // evicts 2
        assert_eq!(memo.evictions(), 1);
        assert_eq!(memo.len(), 2);
        assert!(memo.get(&key(2)).is_none(), "evicted key must miss");
        assert_eq!(memo.get(&key(1)), Some(score(1)));
        assert_eq!(memo.get(&key(3)), Some(score(3)));
        // Re-inserting a resident key neither grows nor evicts.
        memo.insert(key(1), score(1));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions(), 1);
    }

    #[test]
    fn fleet_is_bit_identical_across_worker_counts() {
        let cache = CompileCache::new();
        let serial = run_fleet(&cache, &small_config(400, 1)).unwrap();
        let parallel = run_fleet(&cache, &small_config(400, 8)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            render_fleet_report(&serial),
            render_fleet_report(&parallel),
            "report text must be byte-identical across worker counts"
        );
    }

    #[test]
    fn uniform_fleet_fast_forwards_through_the_memo() {
        let cache = CompileCache::new();
        let mut config = small_config(256, 2);
        config.chips = vec![ChipId::Dimensity1100];
        config.shard_devices = 256;
        config.profile = FleetProfile::uniform(22.0);
        let report = run_fleet(&cache, &config).unwrap();
        // One wave executes; every later unit replays its score.
        assert_eq!(report.memo_hits, 256 - config.lanes as u64);
        assert_eq!(report.cells[0].devices, 256);
        // All devices bit-identical: one latency value fleet-wide, and
        // within each executed wave all lanes dedup to one walk.
        assert_eq!(report.cells[0].latency_ns.min(), report.cells[0].latency_ns.max());
        assert_eq!(
            report.lanes_deduped,
            report.lane_queries - u64::from(config.queries_per_device),
            "each wave step pays exactly one walk"
        );
    }

    #[test]
    fn fleet_report_renders_cells_and_tail() {
        let cache = CompileCache::new();
        let config = small_config(200, 4);
        let text = fleet_report_text(&cache, &config).unwrap();
        assert!(text.contains("200 devices"));
        assert!(text.contains("p99.9 ms"));
        assert!(text.contains("Dimensity 1100"));
        assert!(text.contains("fleet-wide single-stream latency"));
        assert!(text.contains("unit memo:"));
    }
}
