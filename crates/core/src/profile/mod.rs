//! Trace analysis & export: Perfetto timelines, per-engine occupancy and
//! energy attribution, latency histograms, and Prometheus-style metric
//! exposition.
//!
//! The observability layer records what happened ([`loadgen::trace`] and
//! [`crate::harness::BenchmarkTrace`]); this module turns those records
//! into things humans and tools consume:
//!
//! - [`perfetto`]: Chrome/Perfetto trace-event JSON — open the exported
//!   file directly in `ui.perfetto.dev` to scrub through the run, one
//!   timeline track per SoC engine,
//! - [`analysis`]: the [`CellProfile`] per-cell report — engine
//!   utilization, DVFS residency, time to first throttle, energy split,
//! - [`prometheus`]: text exposition of a [`crate::MetricsSnapshot`],
//! - [`ArtifactTrace`]: the serialized per-artifact bundle that
//!   `reproduce --trace/--profile` writes and `reproduce explain` reads.
//!
//! Everything here is purely observational: exporters consume finished
//! traces and never feed back into a run, so profiled scores stay
//! byte-identical to unprofiled ones (locked by
//! `tests/parallel_determinism.rs` and the golden suite).

pub mod analysis;
pub mod perfetto;
pub mod prometheus;

pub use analysis::{profile_report, CellProfile, DvfsResidency, EngineOccupancy};
pub use perfetto::{benchmark_perfetto_json, run_perfetto_json};
pub use prometheus::{hist_exposition, pool_exposition, prometheus_exposition};

use crate::harness::BenchmarkTrace;
use crate::metrics::{MetricsSnapshot, SpecTiming};
use crate::obs::pool::pool_report;
use loadgen::par::PoolSnapshot;
use serde::{Deserialize, Serialize};

/// The per-artifact trace bundle `reproduce --trace DIR` writes to
/// `<dir>/<artifact>.json`: the artifact's wall-clock, its
/// metrics-registry delta, per-spec wall-clock timings, and the full
/// [`BenchmarkTrace`] of every harness run it made.
///
/// `reproduce explain <file>` parses this back to re-render the profile
/// report offline, so the struct round-trips through JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactTrace {
    /// Artifact name ("table1", "figure6", ...).
    pub artifact: String,
    /// Host wall-clock the artifact took to generate (ms).
    pub wall_ms: f64,
    /// Metrics-registry delta attributable to the artifact.
    pub metrics: MetricsSnapshot,
    /// Per-spec wall-clock entries the artifact queued, label-sorted.
    pub spec_timings: Vec<SpecTiming>,
    /// Runner-pool telemetry delta attributable to the artifact
    /// (per-worker tasks/busy/steals, queue high-water).
    pub pool: PoolSnapshot,
    /// Every traced harness run the artifact made, label-sorted.
    pub runs: Vec<BenchmarkTrace>,
}

impl ArtifactTrace {
    /// Serializes the bundle to pretty JSON (the `--trace` artifact).
    ///
    /// # Panics
    ///
    /// Never for these types.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact trace serializes")
    }

    /// Parses a serialized bundle.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the full profile view of the bundle: the per-cell profile
    /// blocks, the runner-pool report, then the Prometheus exposition of
    /// the metrics delta.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "=== {} ({:.0} ms wall) ===\n\n{}\n{}\n{}",
            self.artifact,
            self.wall_ms,
            profile_report(&self.runs),
            pool_report(&self.pool, &self.metrics),
            prometheus_exposition(&self.metrics, &self.spec_timings),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_trace_round_trips() {
        let bundle = ArtifactTrace {
            artifact: "table1".into(),
            wall_ms: 12.5,
            metrics: MetricsSnapshot { runs_completed: 2, ..MetricsSnapshot::default() },
            spec_timings: vec![SpecTiming { label: "a/cls".into(), wall_ms: 3.0 }],
            pool: PoolSnapshot::default(),
            runs: Vec::new(),
        };
        let parsed = ArtifactTrace::from_json(&bundle.to_json()).unwrap();
        assert_eq!(parsed, bundle);
    }

    #[test]
    fn render_includes_profile_and_exposition() {
        let bundle = ArtifactTrace {
            artifact: "figure6".into(),
            wall_ms: 1.0,
            metrics: MetricsSnapshot::default(),
            spec_timings: Vec::new(),
            pool: PoolSnapshot::default(),
            runs: Vec::new(),
        };
        let text = bundle.render();
        assert!(text.contains("figure6"));
        assert!(text.contains("no traces"));
        assert!(text.contains("mlperf_runs_completed_total"));
    }
}
