//! Per-cell trace analysis: engine occupancy, DVFS residency, thermal
//! throttling onset, latency distribution, and the energy split — the
//! numbers behind the `reproduce --profile` report and the `explain`
//! subcommand.

use crate::harness::{BenchmarkTrace, RunEnergy};
use crate::report::render_table;
use loadgen::trace::RunTrace;
use mobile_metrics::hist::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// One engine's occupancy over a run, derived from per-stage telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineOccupancy {
    /// Engine name ("npu0", "gpu", ...).
    pub engine: String,
    /// Queries that scheduled at least one stage on the engine.
    pub queries: u64,
    /// Total compute time on the engine (ns).
    pub busy_ns: u64,
    /// `busy_ns` over the analyzed window.
    pub busy_fraction: f64,
    /// Gaps between consecutive queries touching this engine (count).
    pub idle_gaps: u64,
    /// Mean idle gap between uses (ns); 0 when the engine ran once.
    pub mean_idle_gap_ns: u64,
    /// Longest idle gap between uses (ns).
    pub max_idle_gap_ns: u64,
}

/// Queries dispatched at one DVFS operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsResidency {
    /// Index into the DVFS ladder (0 = fastest).
    pub level: usize,
    /// Queries dispatched at this level.
    pub queries: u64,
}

/// The analyzed view of one benchmark-matrix cell's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellProfile {
    /// `chip/task/backend` cell label.
    pub label: String,
    /// Queries in the single-stream timeline.
    pub queries: u64,
    /// Analyzed window: first issue to last completion (ns).
    pub window_ns: u64,
    /// Log-bucketed latency distribution of the single-stream queries.
    pub latency: LatencyHistogram,
    /// Per-engine occupancy, in first-appearance order.
    pub engines: Vec<EngineOccupancy>,
    /// Queries per DVFS operating point, ascending by level.
    pub dvfs: Vec<DvfsResidency>,
    /// Time from first issue to the first throttled dispatch, when the
    /// device throttled at all (ns).
    pub time_to_first_throttle_ns: Option<u64>,
    /// Queries dispatched while throttled.
    pub throttled_queries: u64,
    /// Transitions into throttling.
    pub throttle_events: u64,
    /// Hottest dispatch-time die temperature (°C).
    pub peak_temperature_c: Option<f64>,
    /// Run-end energy accounting carried over from the trace.
    pub energy: RunEnergy,
}

/// Per-engine busy intervals: (start, end) per query the engine touched.
fn engine_intervals(ss: &RunTrace) -> Vec<(String, Vec<(u64, u64)>)> {
    let mut engines: Vec<(String, Vec<(u64, u64)>)> = Vec::new();
    for span in &ss.spans {
        let Some(t) = &span.telemetry else { continue };
        // Mirror the Perfetto layout: stages run back to back after the
        // launch/dispatch overhead.
        let mut cursor =
            span.issue_ns + t.overhead_ns.saturating_sub(t.sync_ns);
        for stage in &t.stages {
            let interval = (cursor, cursor + stage.compute_ns);
            cursor += stage.compute_ns;
            match engines.iter_mut().find(|(n, _)| *n == stage.engine) {
                Some((_, ivs)) => ivs.push(interval),
                None => engines.push((stage.engine.clone(), vec![interval])),
            }
        }
    }
    engines
}

impl CellProfile {
    /// Analyzes one benchmark trace.
    #[must_use]
    pub fn from_trace(trace: &BenchmarkTrace) -> CellProfile {
        let ss = &trace.single_stream;
        let window_ns = match (ss.spans.first(), ss.spans.last()) {
            (Some(first), Some(last)) => last.complete_ns - first.issue_ns,
            _ => 0,
        };
        let start_ns = ss.spans.first().map_or(0, |s| s.issue_ns);

        let mut latency = LatencyHistogram::new();
        for span in &ss.spans {
            latency.record(span.latency_ns);
        }

        let engines = engine_intervals(ss)
            .into_iter()
            .map(|(engine, intervals)| {
                // Coalesce per-stage intervals into per-query visits, then
                // measure the gaps between visits.
                let busy_ns: u64 = intervals.iter().map(|(s, e)| e - s).sum();
                let mut gaps: Vec<u64> = Vec::new();
                for pair in intervals.windows(2) {
                    let (_, prev_end) = pair[0];
                    let (next_start, _) = pair[1];
                    if next_start > prev_end {
                        gaps.push(next_start - prev_end);
                    }
                }
                EngineOccupancy {
                    engine,
                    queries: intervals.len() as u64,
                    busy_ns,
                    busy_fraction: if window_ns > 0 {
                        busy_ns as f64 / window_ns as f64
                    } else {
                        0.0
                    },
                    idle_gaps: gaps.len() as u64,
                    mean_idle_gap_ns: if gaps.is_empty() {
                        0
                    } else {
                        gaps.iter().sum::<u64>() / gaps.len() as u64
                    },
                    max_idle_gap_ns: gaps.iter().copied().max().unwrap_or(0),
                }
            })
            .collect();

        let mut dvfs: Vec<DvfsResidency> = Vec::new();
        for span in &ss.spans {
            let Some(t) = &span.telemetry else { continue };
            match dvfs.iter_mut().find(|d| d.level == t.dvfs_level) {
                Some(d) => d.queries += 1,
                None => dvfs.push(DvfsResidency { level: t.dvfs_level, queries: 1 }),
            }
        }
        dvfs.sort_by_key(|d| d.level);

        let time_to_first_throttle_ns = ss
            .spans
            .iter()
            .find(|s| s.telemetry.as_ref().is_some_and(loadgen::trace::QueryTelemetry::is_throttled))
            .map(|s| s.issue_ns - start_ns);

        CellProfile {
            label: trace.label(),
            queries: ss.span_count(),
            window_ns,
            latency,
            engines,
            dvfs,
            time_to_first_throttle_ns,
            throttled_queries: trace.throttled_queries(),
            throttle_events: trace.throttle_events(),
            peak_temperature_c: trace.peak_temperature_c(),
            energy: trace.energy.clone(),
        }
    }

    /// Renders the profile as a plain-text report block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== profile: {} ==\n", self.label);
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str(&format!(
            "  window           {:.2} ms over {} queries\n",
            ms(self.window_ns),
            self.queries
        ));
        if !self.latency.is_empty() {
            out.push_str(&format!(
                "  latency          p50 {:.2} ms | p90 {:.2} ms | p99 {:.2} ms | max {:.2} ms\n",
                ms(self.latency.value_at_percentile(50.0)),
                ms(self.latency.value_at_percentile(90.0)),
                ms(self.latency.value_at_percentile(99.0)),
                ms(self.latency.max()),
            ));
        }
        out.push_str(&format!(
            "  energy           {:.3} J single-stream | {:.2} mJ/query | {:.2} W avg\n",
            self.energy.single_stream_joules,
            self.energy.joules_per_query * 1e3,
            self.energy.average_power_w,
        ));

        // DVFS residency + thermal behaviour.
        let residency = self
            .dvfs
            .iter()
            .map(|d| format!("L{} x{}", d.level, d.queries))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  dvfs residency   {}\n",
            if residency.is_empty() { "(no telemetry)".to_owned() } else { residency }
        ));
        match self.time_to_first_throttle_ns {
            Some(ns) => out.push_str(&format!(
                "  throttling       first at {:.2} ms | {} queries throttled ({} events) | peak {:.1} °C\n",
                ms(ns),
                self.throttled_queries,
                self.throttle_events,
                self.peak_temperature_c.unwrap_or(0.0),
            )),
            None => out.push_str(&format!(
                "  throttling       none{}\n",
                self.peak_temperature_c
                    .map(|c| format!(" | peak {c:.1} °C"))
                    .unwrap_or_default()
            )),
        }

        // Per-engine occupancy and energy attribution.
        if !self.engines.is_empty() {
            let rows: Vec<Vec<String>> = self
                .engines
                .iter()
                .map(|e| {
                    let joules = self
                        .energy
                        .engines
                        .iter()
                        .find(|a| a.engine == e.engine)
                        .map_or(0.0, |a| a.joules);
                    vec![
                        e.engine.clone(),
                        format!("{}", e.queries),
                        format!("{:.2}", ms(e.busy_ns)),
                        format!("{:.1}%", e.busy_fraction * 100.0),
                        format!("{:.3}", ms(e.mean_idle_gap_ns)),
                        format!("{:.3}", ms(e.max_idle_gap_ns)),
                        format!("{joules:.3}"),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &["engine", "queries", "busy ms", "busy", "mean gap ms", "max gap ms", "J"],
                &rows,
            ));
        }
        out
    }
}

/// Renders the profile report for a set of traces: one
/// [`CellProfile`] block per cell, in input order.
#[must_use]
pub fn profile_report(traces: &[BenchmarkTrace]) -> String {
    if traces.is_empty() {
        return "(no traces to profile)\n".to_owned();
    }
    traces
        .iter()
        .map(|t| CellProfile::from_trace(t).render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark_with_trace, RunRules};
    use crate::sut_impl::DatasetScale;
    use crate::task::{suite, SuiteVersion};
    use mobile_backend::backend::Backend;
    use mobile_backend::backends::Neuron;
    use soc_sim::catalog::ChipId;
    use std::sync::Arc;

    fn traced_cell() -> BenchmarkTrace {
        let def = &suite(SuiteVersion::V1_0)[0];
        let soc = Arc::new(ChipId::Dimensity1100.build());
        let deployment = Arc::new(Neuron.compile(&def.model.build(), &soc).unwrap());
        let (_, trace) = run_benchmark_with_trace(
            ChipId::Dimensity1100,
            soc,
            deployment,
            def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(64),
            true,
        );
        trace
    }

    #[test]
    fn profile_covers_real_run() {
        let trace = traced_cell();
        let p = CellProfile::from_trace(&trace);
        assert_eq!(p.queries, trace.single_stream.span_count());
        assert_eq!(p.latency.count(), p.queries);
        assert!(p.window_ns > 0);
        assert!(!p.engines.is_empty());
        let total_busy: u64 = p.engines.iter().map(|e| e.busy_ns).sum();
        assert!(total_busy <= p.window_ns, "engines cannot be busier than the window");
        assert_eq!(
            p.dvfs.iter().map(|d| d.queries).sum::<u64>(),
            p.queries,
            "every traced query sits at exactly one DVFS level"
        );
        // The trace's energy accounting rides along unmodified.
        assert_eq!(p.energy, trace.energy);
    }

    #[test]
    fn render_names_every_section() {
        let text = CellProfile::from_trace(&traced_cell()).render();
        assert!(text.contains("profile:"));
        assert!(text.contains("latency"));
        assert!(text.contains("dvfs residency"));
        assert!(text.contains("throttling"));
        assert!(text.contains("engine"));
        assert!(text.contains("mJ/query"));
    }

    #[test]
    fn empty_report_is_graceful() {
        assert!(profile_report(&[]).contains("no traces"));
    }
}
