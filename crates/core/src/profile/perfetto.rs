//! Perfetto / Chrome trace-event JSON export.
//!
//! Turns [`BenchmarkTrace`]s into the [trace-event format] both
//! `chrome://tracing` and [ui.perfetto.dev] open directly: one process per
//! benchmark-matrix cell, one thread track per SoC engine plus a loadgen
//! track and an interconnect track, complete (`ph:"X"`) slices for query
//! spans and their launch/dispatch/compute/transfer/sync decomposition,
//! counter (`ph:"C"`) tracks for the DVFS frequency factor, die
//! temperature and cumulative energy, and instant (`ph:"i"`) events at
//! throttle transitions.
//!
//! The JSON is rendered by hand rather than through a serializer so the
//! bytes are a pure function of the trace: field order is fixed, floats
//! print in shortest round-trip form, and no map iteration order leaks in.
//! The golden-suite guard in `tests/profile_export.rs` holds repeated
//! exports of the same cell byte-identical.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::harness::BenchmarkTrace;
use loadgen::trace::RunTrace;
use std::fmt::Write as _;

/// Timestamps: the trace-event format wants microseconds; the simulator
/// keeps nanoseconds.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One trace-event line. Events accumulate in emission order; emission is
/// arranged so `ts` is non-decreasing per `(pid, tid)` track.
pub(crate) struct Events {
    lines: Vec<String>,
}

impl Events {
    pub(crate) fn new() -> Self {
        Events { lines: Vec::new() }
    }

    /// Thread/process metadata (`ph:"M"`).
    pub(crate) fn meta(&mut self, pid: u32, tid: u32, what: &str, name: &str) {
        self.lines.push(format!(
            "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\"name\":\"{what}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// Complete slice (`ph:"X"`).
    pub(crate) fn slice(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64, dur_ns: u64) {
        self.lines.push(format!(
            "{{\"ph\":\"X\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"dur\":{}}}",
            us(ts_ns),
            esc(name),
            us(dur_ns)
        ));
    }

    /// Counter sample (`ph:"C"`).
    fn counter(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64, value: f64) {
        self.lines.push(format!(
            "{{\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"args\":{{\"value\":{value}}}}}",
            us(ts_ns),
            esc(name)
        ));
    }

    /// Process-scoped instant event (`ph:"i"`).
    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64) {
        self.lines.push(format!(
            "{{\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"s\":\"p\"}}",
            us(ts_ns),
            esc(name)
        ));
    }

    pub(crate) fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// Engine thread ids in first-appearance order along the span timeline
/// (deterministic — no map iteration), starting at tid 1.
fn engine_tids(trace: &RunTrace) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for span in &trace.spans {
        let Some(t) = &span.telemetry else { continue };
        for name in t.engines() {
            if !names.iter().any(|n| n == name) {
                names.push(name.to_owned());
            }
        }
    }
    names
}

/// Emits one run's single-stream timeline into `events` at process `pid`.
///
/// Track layout: tid 0 is the loadgen (query spans with launch/dispatch/
/// sync sub-slices, counters, throttle instants), tids `1..=n` are the
/// run's engines in first-appearance order, tid `n+1` is the interconnect
/// (inter-engine transfers), tid `n+2` carries the offline burst when one
/// is passed.
fn emit_run(events: &mut Events, pid: u32, ss: &RunTrace, offline: Option<&RunTrace>) {
    const LOADGEN: u32 = 0;
    let engines = engine_tids(ss);
    events.meta(pid, LOADGEN, "thread_name", "loadgen");
    for (i, name) in engines.iter().enumerate() {
        events.meta(pid, i as u32 + 1, "thread_name", name);
    }
    let interconnect = engines.len() as u32 + 1;
    events.meta(pid, interconnect, "thread_name", "interconnect");

    let mut was_throttled = false;
    for span in &ss.spans {
        events.slice(
            pid,
            LOADGEN,
            &format!("query {}", span.query_index),
            span.issue_ns,
            span.latency_ns,
        );
        let Some(t) = &span.telemetry else { continue };

        // Issue-time observations, all at ts = issue_ns.
        events.slice(pid, LOADGEN, "launch", span.issue_ns, t.launch_ns);
        events.counter(pid, LOADGEN, "freq_factor", span.issue_ns, t.freq_factor);
        events.counter(pid, LOADGEN, "temperature_c", span.issue_ns, t.temperature_c);
        if t.is_throttled() != was_throttled {
            was_throttled = t.is_throttled();
            let name = if was_throttled { "throttle on" } else { "throttle off" };
            events.instant(pid, LOADGEN, name, span.issue_ns);
        }

        // Dispatch overhead beyond launch + sync sits after the launch.
        let dispatch_ns = t.overhead_ns.saturating_sub(t.launch_ns + t.sync_ns);
        events.slice(pid, LOADGEN, "dispatch", span.issue_ns + t.launch_ns, dispatch_ns);

        // Per-stage compute on the engine tracks, back to back after the
        // dispatch overhead (pure op time; DVFS stretch shows up as the
        // otherwise-unaccounted remainder of the query span).
        let mut cursor = span.issue_ns + t.launch_ns + dispatch_ns;
        for (k, stage) in t.stages.iter().enumerate() {
            let tid = engines
                .iter()
                .position(|n| *n == stage.engine)
                .map_or(interconnect, |i| i as u32 + 1);
            events.slice(
                pid,
                tid,
                &format!("q{} stage {k}", span.query_index),
                cursor,
                stage.compute_ns,
            );
            cursor += stage.compute_ns;
        }

        // Inter-engine transfer on the interconnect track, ending where
        // the final sync begins.
        if t.transfer_ns > 0 {
            let sync_start = span.complete_ns.saturating_sub(t.sync_ns);
            events.slice(
                pid,
                interconnect,
                &format!("q{} transfer", span.query_index),
                sync_start.saturating_sub(t.transfer_ns),
                t.transfer_ns,
            );
        }

        // Completion-time observations.
        if t.sync_ns > 0 {
            events.slice(
                pid,
                LOADGEN,
                "sync",
                span.complete_ns.saturating_sub(t.sync_ns),
                t.sync_ns,
            );
        }
        events.counter(pid, LOADGEN, "energy_j", span.complete_ns, t.energy_j);
    }

    if let Some(off) = offline {
        if let Some(b) = &off.burst {
            let tid = engines.len() as u32 + 2;
            events.meta(pid, tid, "thread_name", "offline");
            events.slice(
                pid,
                tid,
                &format!("offline burst ({} samples)", b.samples),
                b.start_ns,
                b.end_ns.saturating_sub(b.start_ns),
            );
        }
    }
}

/// Exports a set of benchmark traces as one trace-event JSON document:
/// one process per cell (named after the cell label), laid out as
/// described on [`module`][self] level.
#[must_use]
pub fn benchmark_perfetto_json(traces: &[BenchmarkTrace]) -> String {
    let mut events = Events::new();
    for (i, t) in traces.iter().enumerate() {
        let pid = i as u32 + 1;
        events.meta(pid, 0, "process_name", &t.label());
        emit_run(&mut events, pid, &t.single_stream, t.offline.as_ref());
    }
    events.finish()
}

/// Exports a single [`RunTrace`] as a standalone trace-event JSON
/// document — the entry point for examples that drive the simulator
/// directly rather than through the harness.
#[must_use]
pub fn run_perfetto_json(name: &str, trace: &RunTrace) -> String {
    let mut events = Events::new();
    events.meta(1, 0, "process_name", name);
    if trace.burst.is_some() {
        emit_run(&mut events, 1, &RunTrace::new(), Some(trace));
    } else {
        emit_run(&mut events, 1, trace, None);
    }
    events.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadgen::trace::{QuerySpan, QueryTelemetry, StageTelemetry};

    fn telemetry(freq: f64) -> QueryTelemetry {
        QueryTelemetry {
            freq_factor: freq,
            dvfs_level: usize::from(freq < 1.0),
            temperature_c: 40.0,
            compute_ns: 120,
            transfer_ns: 15,
            overhead_ns: 30,
            launch_ns: 20,
            sync_ns: 5,
            energy_j: 0.25,
            stages: vec![
                StageTelemetry { engine: "npu0".into(), compute_ns: 100 },
                StageTelemetry { engine: "gpu".into(), compute_ns: 20 },
            ],
        }
    }

    fn traced_run(queries: u64) -> RunTrace {
        let mut t = RunTrace::new();
        let mut now = 0u64;
        for i in 0..queries {
            let latency = 200 + i * 10;
            t.record_span(QuerySpan {
                query_index: i,
                sample_index: i as usize,
                issue_ns: now,
                dispatch_ns: now,
                complete_ns: now + latency,
                latency_ns: latency,
                telemetry: Some(telemetry(if i >= queries / 2 { 0.8 } else { 1.0 })),
            });
            now += latency;
        }
        t
    }

    #[test]
    fn export_is_valid_json_with_required_fields() {
        let json = run_perfetto_json("cell", &traced_run(4));
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .unwrap();
        assert!(!events.is_empty());
        for e in events {
            let fields = e.as_object().unwrap();
            for required in ["ph", "ts", "pid", "tid", "name"] {
                assert!(
                    fields.iter().any(|(k, _)| k == required),
                    "event missing {required}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn export_is_deterministic() {
        let run = traced_run(6);
        assert_eq!(run_perfetto_json("cell", &run), run_perfetto_json("cell", &run));
    }

    #[test]
    fn throttle_transitions_emit_instants() {
        let json = run_perfetto_json("cell", &traced_run(6));
        assert_eq!(json.matches("throttle on").count(), 1);
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn engine_tracks_are_named() {
        let json = run_perfetto_json("cell", &traced_run(2));
        assert!(json.contains("npu0"));
        assert!(json.contains("gpu"));
        assert!(json.contains("interconnect"));
        assert!(json.contains("loadgen"));
    }

    #[test]
    fn offline_burst_exports_single_slice() {
        let mut t = RunTrace::new();
        t.record_burst(0, 5_000_000, 256);
        let json = run_perfetto_json("offline cell", &t);
        assert!(json.contains("offline burst (256 samples)"));
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(v.as_object().is_some());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
