//! Prometheus text exposition of the metrics registry.
//!
//! Renders a [`MetricsSnapshot`] (plus optional per-spec wall-clock
//! timings) in the [Prometheus text format]: `# HELP`/`# TYPE` headers
//! followed by one sample per line. The output is a pure function of its
//! inputs — counters in declaration order, timings in the caller's order
//! (the registry drains them label-sorted) — so scrape files diff cleanly
//! run over run.
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{MetricsSnapshot, SpecTiming};
use std::fmt::Write as _;

/// Escapes a Prometheus label value (backslash, quote, newline).
fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn sample(out: &mut String, name: &str, help: &str, kind: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the snapshot (and per-spec timings) in the Prometheus text
/// exposition format.
#[must_use]
pub fn prometheus_exposition(snap: &MetricsSnapshot, timings: &[SpecTiming]) -> String {
    let mut out = String::new();
    sample(
        &mut out,
        "mlperf_compile_cache_hits_total",
        "Deployment lookups answered from a compile cache.",
        "counter",
        snap.compile_hits,
    );
    sample(
        &mut out,
        "mlperf_compile_cache_misses_total",
        "Deployment lookups that triggered a compile.",
        "counter",
        snap.compile_misses,
    );
    sample(
        &mut out,
        "mlperf_plan_cache_hits_total",
        "Query-plan lookups answered from a plan cache.",
        "counter",
        snap.plan_hits,
    );
    sample(
        &mut out,
        "mlperf_plan_cache_misses_total",
        "Query-plan lookups that triggered a plan compilation.",
        "counter",
        snap.plan_misses,
    );
    sample(
        &mut out,
        "mlperf_plan_batch_runs_total",
        "Batched single-stream runs completed through the lockstep plan executor.",
        "counter",
        snap.plan_batch_runs,
    );
    sample(
        &mut out,
        "mlperf_plan_batch_lanes_executed_total",
        "Lane-queries executed by the batched plan executor.",
        "counter",
        snap.plan_batch_lanes_executed,
    );
    sample(
        &mut out,
        "mlperf_sweep_cache_hits_total",
        "Sweep-engine lookups answered from a sweep cache.",
        "counter",
        snap.sweep_hits,
    );
    sample(
        &mut out,
        "mlperf_sweep_cache_misses_total",
        "Sweep-engine lookups that had to do the full computation.",
        "counter",
        snap.sweep_misses,
    );
    sample(
        &mut out,
        "mlperf_runs_completed_total",
        "Benchmark runs completed.",
        "counter",
        snap.runs_completed,
    );
    sample(
        &mut out,
        "mlperf_queries_issued_total",
        "Performance queries issued across all runs.",
        "counter",
        snap.queries_issued,
    );
    sample(
        &mut out,
        "mlperf_throttled_queries_total",
        "Queries dispatched while the device was throttled (traced runs).",
        "counter",
        snap.throttled_queries,
    );
    sample(
        &mut out,
        "mlperf_throttle_events_total",
        "Transitions into throttling along traced span timelines.",
        "counter",
        snap.throttle_events,
    );
    if !timings.is_empty() {
        let _ = writeln!(
            out,
            "# HELP mlperf_spec_wall_ms Host wall-clock one run spec took."
        );
        let _ = writeln!(out, "# TYPE mlperf_spec_wall_ms gauge");
        for t in timings {
            let _ = writeln!(
                out,
                "mlperf_spec_wall_ms{{spec=\"{}\"}} {}",
                esc_label(&t.label),
                t.wall_ms
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_well_formed() {
        let snap = MetricsSnapshot {
            compile_hits: 3,
            compile_misses: 1,
            plan_hits: 6,
            plan_misses: 2,
            plan_batch_runs: 7,
            plan_batch_lanes_executed: 512,
            sweep_hits: 9,
            sweep_misses: 3,
            runs_completed: 4,
            queries_issued: 128,
            throttled_queries: 5,
            throttle_events: 2,
        };
        let timings = vec![
            SpecTiming { label: "a/cls".into(), wall_ms: 1.5 },
            SpecTiming { label: "b/seg".into(), wall_ms: 2.25 },
        ];
        let text = prometheus_exposition(&snap, &timings);
        assert!(text.contains("mlperf_queries_issued_total 128"));
        assert!(text.contains("mlperf_spec_wall_ms{spec=\"a/cls\"} 1.5"));
        // Every sample line is preceded by HELP and TYPE headers.
        assert!(text.contains("mlperf_plan_cache_hits_total 6"));
        assert!(text.contains("mlperf_plan_batch_runs_total 7"));
        assert!(text.contains("mlperf_plan_batch_lanes_executed_total 512"));
        for name in [
            "mlperf_compile_cache_hits_total",
            "mlperf_compile_cache_misses_total",
            "mlperf_plan_cache_hits_total",
            "mlperf_plan_cache_misses_total",
            "mlperf_plan_batch_runs_total",
            "mlperf_plan_batch_lanes_executed_total",
            "mlperf_sweep_cache_hits_total",
            "mlperf_sweep_cache_misses_total",
            "mlperf_runs_completed_total",
            "mlperf_queries_issued_total",
            "mlperf_throttled_queries_total",
            "mlperf_throttle_events_total",
            "mlperf_spec_wall_ms",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "{name}");
            assert!(text.contains(&format!("# TYPE {name} ")), "{name}");
        }
        // Deterministic: same inputs, same bytes.
        assert_eq!(text, prometheus_exposition(&snap, &timings));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(esc_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn timings_section_is_optional() {
        let text = prometheus_exposition(&MetricsSnapshot::default(), &[]);
        assert!(!text.contains("mlperf_spec_wall_ms"));
        assert!(text.contains("mlperf_runs_completed_total 0"));
    }
}
