//! Prometheus text exposition of the metrics registry.
//!
//! Renders a [`MetricsSnapshot`] (plus optional per-spec wall-clock
//! timings) in the [Prometheus text format]: `# HELP`/`# TYPE` headers
//! followed by one sample per line. The output is a pure function of its
//! inputs — counters in declaration order, timings in the caller's order
//! (the registry drains them label-sorted) — so scrape files diff cleanly
//! run over run.
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{MetricsSnapshot, SpecTiming};
use loadgen::par::PoolSnapshot;
use mobile_metrics::hist::LatencyHistogram;
use std::fmt::Write as _;

/// Escapes a Prometheus label value (backslash, quote, newline).
fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes `# HELP` text (backslash, newline — quotes stay literal in
/// help position per the exposition format).
fn esc_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", esc_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, help: &str, kind: &str, value: impl std::fmt::Display) {
    header(out, name, help, kind);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the snapshot (and per-spec timings) in the Prometheus text
/// exposition format.
#[must_use]
pub fn prometheus_exposition(snap: &MetricsSnapshot, timings: &[SpecTiming]) -> String {
    let mut out = String::new();
    sample(
        &mut out,
        "mlperf_compile_cache_hits_total",
        "Deployment lookups answered from a compile cache.",
        "counter",
        snap.compile_hits,
    );
    sample(
        &mut out,
        "mlperf_compile_cache_misses_total",
        "Deployment lookups that triggered a compile.",
        "counter",
        snap.compile_misses,
    );
    sample(
        &mut out,
        "mlperf_plan_cache_hits_total",
        "Query-plan lookups answered from a plan cache.",
        "counter",
        snap.plan_hits,
    );
    sample(
        &mut out,
        "mlperf_plan_cache_misses_total",
        "Query-plan lookups that triggered a plan compilation.",
        "counter",
        snap.plan_misses,
    );
    sample(
        &mut out,
        "mlperf_plan_batch_runs_total",
        "Batched single-stream runs completed through the lockstep plan executor.",
        "counter",
        snap.plan_batch_runs,
    );
    sample(
        &mut out,
        "mlperf_plan_batch_lanes_executed_total",
        "Lane-queries executed by the batched plan executor.",
        "counter",
        snap.plan_batch_lanes_executed,
    );
    sample(
        &mut out,
        "mlperf_fleet_devices_simulated_total",
        "Fleet devices fully simulated by the fleet executor.",
        "counter",
        snap.fleet_devices_simulated,
    );
    sample(
        &mut out,
        "mlperf_fleet_lanes_deduped_total",
        "Fleet lane-queries that shared another lane's op-array walk.",
        "counter",
        snap.fleet_lanes_deduped,
    );
    sample(
        &mut out,
        "mlperf_sweep_cache_hits_total",
        "Sweep-engine lookups answered from a sweep cache.",
        "counter",
        snap.sweep_hits,
    );
    sample(
        &mut out,
        "mlperf_sweep_cache_misses_total",
        "Sweep-engine lookups that had to do the full computation.",
        "counter",
        snap.sweep_misses,
    );
    sample(
        &mut out,
        "mlperf_runs_completed_total",
        "Benchmark runs completed.",
        "counter",
        snap.runs_completed,
    );
    sample(
        &mut out,
        "mlperf_queries_issued_total",
        "Performance queries issued across all runs.",
        "counter",
        snap.queries_issued,
    );
    sample(
        &mut out,
        "mlperf_throttled_queries_total",
        "Queries dispatched while the device was throttled (traced runs).",
        "counter",
        snap.throttled_queries,
    );
    sample(
        &mut out,
        "mlperf_throttle_events_total",
        "Transitions into throttling along traced span timelines.",
        "counter",
        snap.throttle_events,
    );
    sample(
        &mut out,
        "mlperf_tuned_cache_hits_total",
        "Tuned-schedule lookups answered from the tuned compile cache.",
        "counter",
        snap.tuned_hits,
    );
    sample(
        &mut out,
        "mlperf_tuned_cache_misses_total",
        "Tuned-schedule lookups that ran the auto-tuner search.",
        "counter",
        snap.tuned_misses,
    );
    sample(
        &mut out,
        "mlperf_tuner_candidates_total",
        "Complete schedule candidates exactly evaluated by the auto-tuner.",
        "counter",
        snap.tuner_candidates,
    );
    sample(
        &mut out,
        "mlperf_tuner_pruned_total",
        "Partial assignments eliminated by the tuner's admissible bound.",
        "counter",
        snap.tuner_pruned,
    );
    if !timings.is_empty() {
        header(&mut out, "mlperf_spec_wall_ms", "Host wall-clock one run spec took.", "gauge");
        for t in timings {
            let _ = writeln!(
                out,
                "mlperf_spec_wall_ms{{spec=\"{}\"}} {}",
                esc_label(&t.label),
                t.wall_ms
            );
        }
    }
    out
}

/// Renders a runner-pool snapshot in the Prometheus text exposition
/// format: per-worker task/busy/steal counters (labelled by worker
/// index) plus the queue-depth gauges. Deterministic bytes — workers are
/// already index-sorted in the snapshot.
#[must_use]
pub fn pool_exposition(pool: &PoolSnapshot) -> String {
    let mut out = String::new();
    sample(
        &mut out,
        "mlperf_pool_par_map_calls_total",
        "Parallel-map passes the runner pool started.",
        "counter",
        pool.calls,
    );
    header(
        &mut out,
        "mlperf_pool_worker_tasks_total",
        "Tasks completed, per pool worker.",
        "counter",
    );
    for w in &pool.workers {
        let _ = writeln!(out, "mlperf_pool_worker_tasks_total{{worker=\"{}\"}} {}", w.worker, w.tasks);
    }
    header(
        &mut out,
        "mlperf_pool_worker_busy_ns_total",
        "Host wall-clock spent inside tasks (ns), per pool worker.",
        "counter",
    );
    for w in &pool.workers {
        let _ = writeln!(out, "mlperf_pool_worker_busy_ns_total{{worker=\"{}\"}} {}", w.worker, w.busy_ns);
    }
    header(
        &mut out,
        "mlperf_pool_worker_steals_total",
        "Tasks executed outside the worker's static fair share, per pool worker.",
        "counter",
    );
    for w in &pool.workers {
        let _ = writeln!(out, "mlperf_pool_worker_steals_total{{worker=\"{}\"}} {}", w.worker, w.steals);
    }
    sample(
        &mut out,
        "mlperf_pool_queue_depth",
        "Ready-queue depth (items not yet claimed by a worker).",
        "gauge",
        pool.queue_depth,
    );
    sample(
        &mut out,
        "mlperf_pool_max_queue_depth",
        "Deepest ready queue observed.",
        "gauge",
        pool.max_queue_depth,
    );
    out
}

/// Renders a latency histogram as a Prometheus summary: quantile samples
/// plus `_count`, `_min`, and `_max`. Empty histograms emit only the
/// headers and a zero count (quantiles of nothing are undefined).
#[must_use]
pub fn hist_exposition(name: &str, help: &str, hist: &LatencyHistogram) -> String {
    let mut out = String::new();
    header(&mut out, name, help, "summary");
    if !hist.is_empty() {
        for q in [50.0, 90.0, 99.0] {
            let _ = writeln!(
                out,
                "{name}{{quantile=\"{}\"}} {}",
                q / 100.0,
                hist.value_at_percentile(q)
            );
        }
        let _ = writeln!(out, "{name}_min {}", hist.min());
        let _ = writeln!(out, "{name}_max {}", hist.max());
    }
    let _ = writeln!(out, "{name}_count {}", hist.count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_well_formed() {
        let snap = MetricsSnapshot {
            compile_hits: 3,
            compile_misses: 1,
            plan_hits: 6,
            plan_misses: 2,
            plan_batch_runs: 7,
            plan_batch_lanes_executed: 512,
            fleet_devices_simulated: 4096,
            fleet_lanes_deduped: 300,
            sweep_hits: 9,
            sweep_misses: 3,
            runs_completed: 4,
            queries_issued: 128,
            throttled_queries: 5,
            throttle_events: 2,
            tuned_hits: 11,
            tuned_misses: 4,
            tuner_candidates: 256,
            tuner_pruned: 7000,
        };
        let timings = vec![
            SpecTiming { label: "a/cls".into(), wall_ms: 1.5 },
            SpecTiming { label: "b/seg".into(), wall_ms: 2.25 },
        ];
        let text = prometheus_exposition(&snap, &timings);
        assert!(text.contains("mlperf_queries_issued_total 128"));
        assert!(text.contains("mlperf_spec_wall_ms{spec=\"a/cls\"} 1.5"));
        // Every sample line is preceded by HELP and TYPE headers.
        assert!(text.contains("mlperf_plan_cache_hits_total 6"));
        assert!(text.contains("mlperf_plan_batch_runs_total 7"));
        assert!(text.contains("mlperf_plan_batch_lanes_executed_total 512"));
        assert!(text.contains("mlperf_fleet_devices_simulated_total 4096"));
        assert!(text.contains("mlperf_fleet_lanes_deduped_total 300"));
        assert!(text.contains("mlperf_tuned_cache_hits_total 11"));
        assert!(text.contains("mlperf_tuner_candidates_total 256"));
        assert!(text.contains("mlperf_tuner_pruned_total 7000"));
        for name in [
            "mlperf_compile_cache_hits_total",
            "mlperf_compile_cache_misses_total",
            "mlperf_plan_cache_hits_total",
            "mlperf_plan_cache_misses_total",
            "mlperf_plan_batch_runs_total",
            "mlperf_plan_batch_lanes_executed_total",
            "mlperf_fleet_devices_simulated_total",
            "mlperf_fleet_lanes_deduped_total",
            "mlperf_sweep_cache_hits_total",
            "mlperf_sweep_cache_misses_total",
            "mlperf_runs_completed_total",
            "mlperf_queries_issued_total",
            "mlperf_throttled_queries_total",
            "mlperf_throttle_events_total",
            "mlperf_tuned_cache_hits_total",
            "mlperf_tuned_cache_misses_total",
            "mlperf_tuner_candidates_total",
            "mlperf_tuner_pruned_total",
            "mlperf_spec_wall_ms",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "{name}");
            assert!(text.contains(&format!("# TYPE {name} ")), "{name}");
        }
        // Deterministic: same inputs, same bytes.
        assert_eq!(text, prometheus_exposition(&snap, &timings));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(esc_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn help_text_is_escaped() {
        assert_eq!(esc_help("line\nbreak\\slash"), "line\\nbreak\\\\slash");
        let mut out = String::new();
        sample(&mut out, "m_total", "multi\nline", "counter", 1);
        assert!(out.contains("# HELP m_total multi\\nline\n"));
    }

    #[test]
    fn pool_exposition_matches_golden_text() {
        use loadgen::par::WorkerStats;
        let pool = PoolSnapshot {
            workers: vec![
                WorkerStats { worker: 0, tasks: 12, busy_ns: 3400, steals: 0 },
                WorkerStats { worker: 1, tasks: 9, busy_ns: 2100, steals: 3 },
            ],
            calls: 4,
            queue_depth: 2,
            max_queue_depth: 17,
        };
        let expected = "\
# HELP mlperf_pool_par_map_calls_total Parallel-map passes the runner pool started.
# TYPE mlperf_pool_par_map_calls_total counter
mlperf_pool_par_map_calls_total 4
# HELP mlperf_pool_worker_tasks_total Tasks completed, per pool worker.
# TYPE mlperf_pool_worker_tasks_total counter
mlperf_pool_worker_tasks_total{worker=\"0\"} 12
mlperf_pool_worker_tasks_total{worker=\"1\"} 9
# HELP mlperf_pool_worker_busy_ns_total Host wall-clock spent inside tasks (ns), per pool worker.
# TYPE mlperf_pool_worker_busy_ns_total counter
mlperf_pool_worker_busy_ns_total{worker=\"0\"} 3400
mlperf_pool_worker_busy_ns_total{worker=\"1\"} 2100
# HELP mlperf_pool_worker_steals_total Tasks executed outside the worker's static fair share, per pool worker.
# TYPE mlperf_pool_worker_steals_total counter
mlperf_pool_worker_steals_total{worker=\"0\"} 0
mlperf_pool_worker_steals_total{worker=\"1\"} 3
# HELP mlperf_pool_queue_depth Ready-queue depth (items not yet claimed by a worker).
# TYPE mlperf_pool_queue_depth gauge
mlperf_pool_queue_depth 2
# HELP mlperf_pool_max_queue_depth Deepest ready queue observed.
# TYPE mlperf_pool_max_queue_depth gauge
mlperf_pool_max_queue_depth 17
";
        assert_eq!(pool_exposition(&pool), expected);
    }

    #[test]
    fn every_pool_family_has_type_and_help_lines() {
        let text = pool_exposition(&PoolSnapshot::default());
        for name in [
            "mlperf_pool_par_map_calls_total",
            "mlperf_pool_worker_tasks_total",
            "mlperf_pool_worker_busy_ns_total",
            "mlperf_pool_worker_steals_total",
            "mlperf_pool_queue_depth",
            "mlperf_pool_max_queue_depth",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "{name}");
            assert!(text.contains(&format!("# TYPE {name} ")), "{name}");
        }
    }

    #[test]
    fn hist_exposition_emits_summary_quantiles() {
        let mut hist = LatencyHistogram::new();
        for v in 1..=100u64 {
            hist.record(v);
        }
        let text = hist_exposition("mlperf_run_wall_ns", "Host wall per run.", &hist);
        assert!(text.contains("# TYPE mlperf_run_wall_ns summary"));
        assert!(text.contains("mlperf_run_wall_ns{quantile=\"0.5\"} 50"));
        assert!(text.contains("mlperf_run_wall_ns{quantile=\"0.99\"} 99"));
        assert!(text.contains("mlperf_run_wall_ns_count 100"));
        assert!(text.contains("mlperf_run_wall_ns_min 1"));
        assert!(text.contains("mlperf_run_wall_ns_max 100"));

        let empty = hist_exposition("m", "h", &LatencyHistogram::new());
        assert!(empty.contains("m_count 0"));
        assert!(!empty.contains("quantile"));
    }

    #[test]
    fn timings_section_is_optional() {
        let text = prometheus_exposition(&MetricsSnapshot::default(), &[]);
        assert!(!text.contains("mlperf_spec_wall_ms"));
        assert!(text.contains("mlperf_runs_completed_total 0"));
    }
}
