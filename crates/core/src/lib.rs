//! `mlperf-mobile` — a Rust reproduction of the MLPerf Mobile inference
//! benchmark (MLSys 2022).
//!
//! This is the top-level harness tying the substrates together:
//!
//! - [`task`]: the Table 1 suite (tasks, reference models, quality gates),
//! - [`sut_impl`]: the device SUT binding a compiled backend deployment to
//!   a simulated SoC and synthetic datasets,
//! - [`sim_infer`]: the statistical quality model producing predictions
//!   that the real metrics score,
//! - [`harness`]: the accuracy-then-performance run flow with run rules,
//! - [`app`]: the full-suite "mobile app" with per-vendor backend
//!   selection (Table 2),
//! - [`runner`]: the parallel suite runner with compilation caching
//!   (bit-identical to the serial app, many times faster on a sweep),
//! - [`metrics`]: the process-wide metrics registry and the trace
//!   collector behind `SuiteRunner::with_trace`,
//! - [`profile`]: trace analysis & export — Perfetto timelines, engine
//!   occupancy and energy attribution, Prometheus exposition,
//! - [`obs`]: harness self-observability — wall-clock span tracing of
//!   the runner pool, sharded streaming metrics, and the live `/metrics`
//!   HTTP endpoint,
//! - [`fleet`]: fleet-scale population sweeps — millions of sampled
//!   field devices streamed through the batched lockstep executor into
//!   sharded percentile histograms,
//! - [`tuning`]: the heuristic-vs-optimal scheduling-gap artifact —
//!   the schedule auto-tuner run over the benchmark matrix, quantifying
//!   what vendor placement heuristics leave on the table,
//! - [`audit`]: submission validation and independent reproduction
//!   (Section 6.2),
//! - [`related`]: the Table 4 comparison matrix,
//! - [`report`]: plain-text result rendering.
//!
//! # Examples
//!
//! ```no_run
//! use mlperf_mobile::app::{run_suite, AppConfig};
//! use mlperf_mobile::sut_impl::DatasetScale;
//! use mlperf_mobile::task::SuiteVersion;
//! use soc_sim::catalog::ChipId;
//!
//! let report = run_suite(
//!     ChipId::Dimensity1100,
//!     SuiteVersion::V1_0,
//!     &AppConfig::default(),
//!     DatasetScale::Full,
//! )?;
//! println!("{}", mlperf_mobile::report::format_report(&report));
//! # Ok::<(), mobile_backend::backend::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ai_tax;
pub mod app;
pub mod audit;
pub mod extensions;
pub mod fleet;
pub mod harness;
pub mod metrics;
pub mod obs;
pub mod profile;
pub mod related;
pub mod report;
pub mod runner;
pub mod sim_infer;
pub mod submission;
pub mod sut_impl;
pub mod task;
pub mod tuning;

pub use app::{run_suite, run_suite_traced, submission_backend, AppConfig, SuiteReport};
pub use ai_tax::{host_stage_time, EndToEndSut};
pub use extensions::{extended_suite, extension_defs};
pub use fleet::{
    fleet_report_text, render_fleet_report, run_fleet, FleetConfig, FleetReport, FleetUnitMemo,
};
pub use submission::{Date, SubmissionEntry, SubmissionRegistry};
pub use audit::{audit, AuditFinding, AuditReport, SubmissionPackage};
pub use harness::{
    run_benchmark, run_benchmark_with, run_benchmark_with_trace, run_single_stream_lanes,
    BenchmarkScore, BenchmarkTrace, RunRules,
};
pub use harness::{EngineActivity, RunEnergy};
pub use metrics::{metrics, MetricsRegistry, MetricsSnapshot, SpecTiming, TraceCollector};
pub use obs::{ObsServer, SelfProfile};
pub use profile::{
    benchmark_perfetto_json, profile_report, prometheus_exposition, ArtifactTrace, CellProfile,
};
pub use runner::{par_map, CompileCache, RunSpec, SuiteRunner};
pub use sut_impl::{BatchDeviceSut, DatasetScale, DeviceSut, Prediction, TaskData};
pub use task::{suite, BenchmarkDef, SuiteVersion, Task};
pub use tuning::{render_tuning_report, run_tuning, tuning_report_text, TuningConfig, TuningReport};
