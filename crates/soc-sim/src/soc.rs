//! SoC definitions: engine sets, interconnect, thermal envelope.

use crate::battery::BatteryState;
use crate::dvfs::DvfsLadder;
use crate::engine::{EngineId, EngineKind, EngineSpec};
use crate::power::EnergyMeter;
use crate::thermal::{ThermalSpec, ThermalState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inter-engine data movement characteristics.
///
/// Moving intermediate tensors between IP blocks costs real time — the
/// paper attributes the Exynos 2100's 6x software uplift on segmentation
/// largely to "critical features that reduce data transfer between IP
/// blocks, enabled in software through improved scheduling".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Effective bandwidth for engine-to-engine tensor handoff (GB/s).
    pub transfer_gbps: f64,
    /// Fixed per-handoff latency (driver + cache maintenance), in µs.
    pub handoff_latency_us: f64,
}

impl InterconnectSpec {
    /// Time to move `bytes` between two engines, in seconds.
    #[must_use]
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.handoff_latency_us * 1e-6 + bytes as f64 / (self.transfer_gbps * 1e9)
    }
}

/// A complete system-on-chip (or laptop platform) description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Soc {
    /// Commercial name ("Snapdragon 888").
    pub name: String,
    /// Vendor ("Qualcomm").
    pub vendor: String,
    /// Compute engines, indexed by [`EngineId`].
    pub engines: Vec<EngineSpec>,
    /// Inter-engine interconnect.
    pub interconnect: InterconnectSpec,
    /// Thermal envelope.
    pub thermal: ThermalSpec,
    /// Baseline platform power (rails, DRAM refresh), watts.
    pub idle_power_w: f64,
    /// Whether this is a laptop-class platform (headless app path).
    pub is_laptop: bool,
}

impl Soc {
    /// Engine lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn engine(&self, id: EngineId) -> &EngineSpec {
        &self.engines[id.0]
    }

    /// Iterator over `(EngineId, &EngineSpec)`.
    pub fn engines(&self) -> impl Iterator<Item = (EngineId, &EngineSpec)> {
        self.engines.iter().enumerate().map(|(i, e)| (EngineId(i), e))
    }

    /// Finds the first engine of a kind.
    #[must_use]
    pub fn engine_of_kind(&self, kind: EngineKind) -> Option<EngineId> {
        self.engines().find(|(_, e)| e.kind == kind).map(|(id, _)| id)
    }

    /// All engines of a kind.
    #[must_use]
    pub fn engines_of_kind(&self, kind: EngineKind) -> Vec<EngineId> {
        self.engines()
            .filter(|(_, e)| e.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// The CPU engine every schedule can fall back to.
    ///
    /// # Panics
    ///
    /// Panics if the SoC has no CPU (catalog invariant: all do).
    #[must_use]
    pub fn cpu(&self) -> EngineId {
        self.engines()
            .find(|(_, e)| e.kind.is_cpu())
            .map(|(id, _)| id)
            .expect("every SoC has a CPU")
    }

    /// Creates the mutable run-time state for this SoC at an ambient
    /// temperature (paper run rules: 20–25 °C), mains-powered (no battery).
    #[must_use]
    pub fn new_state(&self, ambient_c: f64) -> SocState {
        SocState {
            thermal: ThermalState::new(self.thermal, ambient_c),
            energy: EnergyMeter::new(self.idle_power_w),
            battery: None,
            dvfs: DvfsLadder::default(),
        }
    }

    /// Creates run-time state on battery power — the configuration the
    /// run rules prescribe for phones ("the benchmark runs while the phone
    /// is battery powered").
    #[must_use]
    pub fn new_state_on_battery(&self, ambient_c: f64, battery: BatteryState) -> SocState {
        SocState {
            thermal: ThermalState::new(self.thermal, ambient_c),
            energy: EnergyMeter::new(self.idle_power_w),
            battery: Some(battery),
            dvfs: DvfsLadder::default(),
        }
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} (", self.vendor, self.name)?;
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", e.name)?;
        }
        write!(f, ")")
    }
}

/// Mutable run-time state: thermal trajectory and energy accounting.
///
/// Persisted across queries by the harness so that long performance runs
/// genuinely heat the device and throttle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocState {
    /// Thermal trajectory.
    pub thermal: ThermalState,
    /// Energy meter.
    pub energy: EnergyMeter,
    /// Battery state, when running on battery power.
    pub battery: Option<BatteryState>,
    /// DVFS operating-point ladder the governor snaps to.
    pub dvfs: DvfsLadder,
}

impl SocState {
    /// The DVFS frequency factor in effect: the thermal governor's
    /// continuous target combined with any battery power-saving cap,
    /// snapped down to the nearest operating point.
    #[must_use]
    pub fn freq_factor(&self) -> f64 {
        let battery_cap = self.battery.as_ref().map_or(1.0, BatteryState::freq_cap);
        self.dvfs.snap(self.thermal.freq_factor().min(battery_cap))
    }

    /// The ladder index of the operating point currently in effect
    /// (0 = fastest) — the "DVFS level" reported in run traces.
    #[must_use]
    pub fn dvfs_level(&self) -> usize {
        let battery_cap = self.battery.as_ref().map_or(1.0, BatteryState::freq_cap);
        self.dvfs.level_of(self.thermal.freq_factor().min(battery_cap))
    }

    /// Surfaces the energy meter's run-end totals over an elapsed window —
    /// what the harness stamps into run traces and reports.
    #[must_use]
    pub fn energy_snapshot(&self, elapsed: crate::time::SimDuration) -> crate::power::EnergySnapshot {
        self.energy.snapshot(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSpecBuilder;

    fn soc() -> Soc {
        Soc {
            name: "TestChip".into(),
            vendor: "Acme".into(),
            engines: vec![
                EngineSpecBuilder::new("big", EngineKind::CpuBig, 50.0, 50.0, 25.0).build(),
                EngineSpecBuilder::new("gpu", EngineKind::Gpu, 200.0, 400.0, 200.0).build(),
                EngineSpecBuilder::new("npu0", EngineKind::Npu, 1000.0, 250.0, 0.0).build(),
                EngineSpecBuilder::new("npu1", EngineKind::Npu, 1000.0, 250.0, 0.0).build(),
            ],
            interconnect: InterconnectSpec { transfer_gbps: 10.0, handoff_latency_us: 100.0 },
            thermal: ThermalSpec::default(),
            idle_power_w: 0.4,
            is_laptop: false,
        }
    }

    #[test]
    fn engine_lookup() {
        let s = soc();
        assert_eq!(s.engine(EngineId(1)).name, "gpu");
        assert_eq!(s.engine_of_kind(EngineKind::Npu), Some(EngineId(2)));
        assert_eq!(s.engines_of_kind(EngineKind::Npu), vec![EngineId(2), EngineId(3)]);
        assert_eq!(s.cpu(), EngineId(0));
        assert_eq!(s.engine_of_kind(EngineKind::Hta), None);
    }

    #[test]
    fn transfer_cost() {
        let ic = InterconnectSpec { transfer_gbps: 10.0, handoff_latency_us: 100.0 };
        // 10 MB at 10 GB/s = 1 ms, plus 0.1 ms latency.
        let t = ic.transfer_secs(10_000_000);
        assert!((t - 0.0011).abs() < 1e-9);
    }

    #[test]
    fn state_starts_cold() {
        let s = soc();
        let state = s.new_state(22.0);
        assert_eq!(state.thermal.temperature_c(), 22.0);
        assert_eq!(state.energy.total_joules(), 0.0);
    }

    #[test]
    fn display_lists_engines() {
        let text = soc().to_string();
        assert!(text.contains("Acme TestChip"));
        assert!(text.contains("npu1"));
    }
}
