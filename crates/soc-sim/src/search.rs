//! Search support for schedule auto-tuning.
//!
//! The tuner (in `mobile-backend`) explores per-op engine assignments:
//! each node of a graph is mapped to one of a small set of
//! [`SearchTarget`]s (an `(engine, dtype)` pair), and consecutive runs of
//! equal targets form the stages of a [`Schedule`]. This module provides
//! the *evaluation substrate* for that search:
//!
//! - [`CostModel`] pre-computes, once per (soc, graph, target-set), every
//!   per-(node, target) roofline term that [`StreamPlan::lower`] would
//!   derive — so candidate schedules are costed without re-lowering.
//! - [`PartialAssign`] is an incrementally-extended prefix assignment
//!   whose accumulators reproduce `StreamPlan::lower` +
//!   [`StreamPlan::sample_secs`]`(1.0, 1)` **bit-exactly** when the
//!   prefix is completed ([`CostModel::finish`]). This is what makes a
//!   branch-and-bound search sound at 0 ULPs: the incumbent and the
//!   candidates are scored by the same arithmetic as the executor.
//! - [`CostModel::bound_latency`] / [`CostModel::bound_energy`] give an
//!   admissible lower bound (committed exact cost + best-case roofline
//!   suffix) used to prune partials that cannot beat the incumbent.
//! - [`CostModel::evaluate_batch`] scores up to [`MAX_LANES`] complete
//!   assignments per pass, node-major over the lanes, with per-lane
//!   arithmetic identical to the scalar path (bit-equal results).
//! - [`active_energy_j`] is the canonical energy objective: the active
//!   compute energy at nominal frequency — exactly the `power_time`
//!   numerator accumulated by `StreamPlan::lower` for
//!   [`StreamPlan::power_w`]. Launch/sync/transfer overheads draw
//!   platform idle power in the thermal model and are excluded here.
//!
//! [`StreamPlan::lower`]: crate::plan::StreamPlan::lower
//! [`StreamPlan::sample_secs`]: crate::plan::StreamPlan::sample_secs
//! [`StreamPlan::power_w`]: crate::plan::StreamPlan::power_w

use crate::engine::EngineId;
use crate::schedule::{Schedule, Stage};
use crate::soc::{InterconnectSpec, Soc};
use nn_graph::graph::{Graph, NodeId};
use nn_graph::DataType;
use serde::{Deserialize, Serialize};

/// Maximum number of assignment lanes per [`CostModel::evaluate_batch`]
/// pass — matches the SoA lane width of `plan_batch`.
pub const MAX_LANES: usize = 8;

/// One point of the per-op assignment space: run an op on `engine` at
/// `dtype`. The tuner derives the legal target set from the vendor
/// heuristic's stages, so every target is one the backend really uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchTarget {
    /// Engine to place the op on.
    pub engine: EngineId,
    /// Precision the stage runs at.
    pub dtype: DataType,
}

/// Scores of one complete assignment under both objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchScore {
    /// Single-query latency in seconds at nominal frequency — bit-equal
    /// to [`crate::executor::estimate_query_secs`] on the induced
    /// schedule.
    pub latency_secs: f64,
    /// Active compute energy in joules — bit-equal to
    /// [`active_energy_j`] on the induced schedule.
    pub energy_j: f64,
}

/// A prefix of a per-op assignment, with exact incremental cost state.
///
/// Extended one node at a time (in topological order) via
/// [`CostModel::extend`]; the accumulators mirror the fold order of
/// `StreamPlan::lower` so that completing the prefix reproduces the
/// executor's score bit-for-bit.
#[derive(Debug, Clone)]
pub struct PartialAssign {
    /// Target index per assigned node, in node order.
    pub assign: Vec<u8>,
    /// Stage index of each assigned node.
    stage_of: Vec<u32>,
    /// Target index of each stage opened so far (last = open stage).
    stage_target: Vec<u8>,
    /// Σ per-node roofline terms, in node order (the `ops` sum).
    ops_sum: f64,
    /// Σ transfer terms of *closed* stages, in stage order.
    transfer: f64,
    /// Query + launch + sync overheads committed so far.
    overhead: f64,
    /// Roofline time accumulated in the open stage.
    stage_time: f64,
    /// Active energy of closed stages.
    energy: f64,
    /// Cross-engine bytes flowing into the open stage.
    open_bytes: u64,
    /// Bitmask of engines already launched (by engine index).
    launched: u64,
}

impl PartialAssign {
    /// Number of nodes assigned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether no node has been assigned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of stages the prefix spans so far.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stage_target.len()
    }
}

/// Pre-computed per-(node, target) roofline terms for one
/// (soc, graph, target-set) triple, plus the admissible suffix bounds.
#[derive(Debug, Clone)]
pub struct CostModel {
    num_nodes: usize,
    targets: Vec<SearchTarget>,
    node_ids: Vec<NodeId>,
    /// `compute.max(memory) + per_op_secs` per (node, target); infinity
    /// where unsupported. Row-major `[node][target]`.
    term: Vec<f64>,
    /// Whether (node, target) is legal: flops == 0 nodes run anywhere,
    /// else the engine must support the op class at the target dtype.
    supported: Vec<bool>,
    /// Output bytes of each node at each target's dtype (producer-stage
    /// dtype governs transfer size).
    out_bytes: Vec<u64>,
    /// Input node indices per node.
    inputs: Vec<Vec<u32>>,
    /// Engine index per target.
    engine_of: Vec<usize>,
    /// Active power (W) per target's engine.
    power_w: Vec<f64>,
    /// Launch overhead (secs) per engine of the SoC.
    launch_secs: Vec<f64>,
    /// Per-stage sync overhead, µs and secs.
    sync_us: f64,
    sync_secs: f64,
    /// Per-query overhead, µs and secs.
    query_us: f64,
    query_secs: f64,
    interconnect: InterconnectSpec,
    /// `suffix_term[i]` = Σ_{j ≥ i} best supported roofline term of node
    /// `j` — the admissible latency remainder.
    suffix_term: Vec<f64>,
    /// Suffix sums of the best supported `power · term` per node — the
    /// admissible energy remainder.
    suffix_energy: Vec<f64>,
}

impl CostModel {
    /// Builds the cost table for `graph` on `soc` over `targets`.
    ///
    /// `sync_overhead_us` / `query_overhead_us` are the transition
    /// penalties candidate schedules will carry — the tuner reads them
    /// off the vendor heuristic so candidates pay the same framework
    /// costs the heuristic does.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or exceeds 32 entries, if the SoC has
    /// more than 64 engines, or if some op is supported by no target at
    /// all (the heuristic's own target always supports its ops, so a
    /// target set derived from a valid schedule never trips this).
    #[must_use]
    pub fn new(
        soc: &Soc,
        graph: &Graph,
        targets: &[SearchTarget],
        sync_overhead_us: f64,
        query_overhead_us: f64,
    ) -> CostModel {
        assert!(!targets.is_empty(), "search needs at least one target");
        assert!(targets.len() <= 32, "target set too large: {}", targets.len());
        assert!(soc.engines.len() <= 64, "engine bitmask limited to 64 engines");
        let n = graph.len();
        let t = targets.len();
        let mut term = vec![f64::INFINITY; n * t];
        let mut supported = vec![false; n * t];
        let mut out_bytes = vec![0u64; n * t];
        let mut best_term = vec![f64::INFINITY; n];
        let mut best_energy = vec![f64::INFINITY; n];
        for (i, node) in graph.iter().enumerate() {
            for (k, tgt) in targets.iter().enumerate() {
                let engine = &soc.engines[tgt.engine.0];
                out_bytes[i * t + k] = node.output.shape.byte_size(tgt.dtype) as u64;
                let ok = node.cost.flops == 0 || engine.supports(node.class(), tgt.dtype);
                if !ok {
                    continue;
                }
                // Exactly the arithmetic of `StreamPlan::lower`, term by
                // term: same operands, same operation order.
                let compute = if node.cost.flops == 0 {
                    0.0
                } else {
                    node.cost.flops as f64
                        / (engine.peak_ops(tgt.dtype) * engine.efficiency(node.class()))
                };
                let memory =
                    node.cost.total_bytes(tgt.dtype) as f64 / (engine.mem_bandwidth_gbps * 1e9);
                let v = compute.max(memory) + engine.per_op_overhead_us * 1e-6;
                term[i * t + k] = v;
                supported[i * t + k] = true;
                if v < best_term[i] {
                    best_term[i] = v;
                }
                let e = engine.active_power_w * v;
                if e < best_energy[i] {
                    best_energy[i] = e;
                }
            }
            assert!(
                best_term[i].is_finite(),
                "node {} ({}) supported by no search target",
                node.id,
                node.name
            );
        }
        let mut suffix_term = vec![0.0; n + 1];
        let mut suffix_energy = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix_term[i] = best_term[i] + suffix_term[i + 1];
            suffix_energy[i] = best_energy[i] + suffix_energy[i + 1];
        }
        CostModel {
            num_nodes: n,
            targets: targets.to_vec(),
            node_ids: graph.iter().map(|nd| nd.id).collect(),
            term,
            supported,
            out_bytes,
            inputs: graph
                .iter()
                .map(|nd| nd.inputs.iter().map(|id| id.index() as u32).collect())
                .collect(),
            engine_of: targets.iter().map(|tgt| tgt.engine.0).collect(),
            power_w: targets.iter().map(|tgt| soc.engines[tgt.engine.0].active_power_w).collect(),
            launch_secs: soc.engines.iter().map(|e| e.launch_overhead_us * 1e-6).collect(),
            sync_us: sync_overhead_us,
            sync_secs: sync_overhead_us * 1e-6,
            query_us: query_overhead_us,
            query_secs: query_overhead_us * 1e-6,
            interconnect: soc.interconnect,
            suffix_term,
            suffix_energy,
        }
    }

    /// Number of graph nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The target set being searched.
    #[must_use]
    pub fn targets(&self) -> &[SearchTarget] {
        &self.targets
    }

    /// Whether target `k` may run node `i`.
    #[must_use]
    pub fn is_supported(&self, node: usize, target: usize) -> bool {
        self.supported[node * self.targets.len() + target]
    }

    /// The roofline term of node `i` on target `k` (infinite when
    /// unsupported).
    #[must_use]
    pub fn term(&self, node: usize, target: usize) -> f64 {
        self.term[node * self.targets.len() + target]
    }

    /// The empty prefix: only the per-query overhead is committed.
    #[must_use]
    pub fn root(&self) -> PartialAssign {
        PartialAssign {
            assign: Vec::with_capacity(self.num_nodes),
            stage_of: Vec::with_capacity(self.num_nodes),
            stage_target: Vec::new(),
            ops_sum: 0.0,
            transfer: 0.0,
            overhead: self.query_secs,
            stage_time: 0.0,
            energy: 0.0,
            open_bytes: 0,
            launched: 0,
        }
    }

    /// Extends `p` in place by assigning the next node to target `k`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the target supports the node and the prefix is not
    /// already complete.
    pub fn extend_in_place(&self, p: &mut PartialAssign, k: u8) {
        let i = p.assign.len();
        debug_assert!(i < self.num_nodes, "assignment already complete");
        debug_assert!(self.supported[i * self.targets.len() + k as usize]);
        if p.stage_target.last() != Some(&k) {
            // Close the open stage (energy + transfer become committed)…
            if let Some(&prev) = p.stage_target.last() {
                p.energy += self.power_w[prev as usize] * p.stage_time;
                if p.open_bytes > 0 {
                    p.transfer += self.interconnect.transfer_secs(p.open_bytes);
                }
                p.stage_time = 0.0;
                p.open_bytes = 0;
            }
            // …and open a new one: launch-if-first-use, then sync.
            p.stage_target.push(k);
            let e = self.engine_of[k as usize];
            if p.launched & (1 << e) == 0 {
                p.launched |= 1 << e;
                p.overhead += self.launch_secs[e];
            }
            p.overhead += self.sync_secs;
        }
        let si = (p.stage_target.len() - 1) as u32;
        p.stage_of.push(si);
        p.assign.push(k);
        let term = self.term[i * self.targets.len() + k as usize];
        p.ops_sum += term;
        p.stage_time += term;
        // Cross-engine inputs feed bytes into the open stage (producer
        // stage dtype sizes the tensor, as in `Schedule::cross_engine_bytes`).
        let my_engine = self.engine_of[k as usize];
        for &u in &self.inputs[i] {
            let ps = p.stage_of[u as usize];
            if ps != si {
                let pt = p.stage_target[ps as usize];
                if self.engine_of[pt as usize] != my_engine {
                    p.open_bytes += self.out_bytes[u as usize * self.targets.len() + pt as usize];
                }
            }
        }
    }

    /// Clone-and-extend: the beam-search expansion step.
    #[must_use]
    pub fn extend(&self, p: &PartialAssign, k: u8) -> PartialAssign {
        let mut q = p.clone();
        self.extend_in_place(&mut q, k);
        q
    }

    /// Completes a full assignment's scores.
    ///
    /// For the latency score this is bit-equal to
    /// `estimate_query_secs(soc, graph, &self.schedule(&p.assign))`; for
    /// the energy score, to [`active_energy_j`] on the same schedule.
    ///
    /// # Panics
    ///
    /// Debug-asserts the assignment covers every node.
    #[must_use]
    pub fn finish(&self, p: &PartialAssign) -> SearchScore {
        debug_assert_eq!(p.assign.len(), self.num_nodes, "assignment incomplete");
        let mut transfer = p.transfer;
        let mut energy = p.energy;
        if let Some(&t) = p.stage_target.last() {
            energy += self.power_w[t as usize] * p.stage_time;
            if p.open_bytes > 0 {
                transfer += self.interconnect.transfer_secs(p.open_bytes);
            }
        }
        // Matches `sample_secs(1.0, 1)` fold order:
        //   Σ ops  +  transfer_secs  +  overhead_secs.
        SearchScore { latency_secs: (p.ops_sum + transfer) + p.overhead, energy_j: energy }
    }

    /// Admissible latency lower bound for any completion of `p`:
    /// committed exact cost (including the open stage's transfer, whose
    /// bytes only grow) plus each remaining node's best supported term.
    ///
    /// Mathematically `bound ≤ finish(completion)` for every completion;
    /// floating-point association differences are covered by the pruning
    /// slack applied at the comparison site.
    #[must_use]
    pub fn bound_latency(&self, p: &PartialAssign) -> f64 {
        let open_transfer = if p.open_bytes > 0 {
            self.interconnect.transfer_secs(p.open_bytes)
        } else {
            0.0
        };
        p.ops_sum + p.transfer + p.overhead + open_transfer + self.suffix_term[p.assign.len()]
    }

    /// Admissible energy lower bound: committed stage energy (the open
    /// stage's time only grows) plus each remaining node's best
    /// supported `power · term`.
    #[must_use]
    pub fn bound_energy(&self, p: &PartialAssign) -> f64 {
        let open = p
            .stage_target
            .last()
            .map_or(0.0, |&t| self.power_w[t as usize] * p.stage_time);
        p.energy + open + self.suffix_energy[p.assign.len()]
    }

    /// Greedily completes a prefix: each remaining node takes the
    /// supported target minimizing the objective's lower bound after the
    /// extension (lowest target index on ties — deterministic). Used by
    /// the tuner's rollout step to obtain early incumbents that tighten
    /// pruning; the completion's score is still evaluated exactly.
    #[must_use]
    pub fn greedy_complete(&self, p: &PartialAssign, energy_objective: bool) -> PartialAssign {
        let t = self.targets.len();
        let mut q = p.clone();
        let mut scratch = q.clone();
        for i in q.assign.len()..self.num_nodes {
            let mut best_k = u8::MAX;
            let mut best_bound = f64::INFINITY;
            for k in 0..t {
                if !self.supported[i * t + k] {
                    continue;
                }
                scratch.clone_from(&q);
                self.extend_in_place(&mut scratch, k as u8);
                let bound = if energy_objective {
                    self.bound_energy(&scratch)
                } else {
                    self.bound_latency(&scratch)
                };
                if bound < best_bound {
                    best_bound = bound;
                    best_k = k as u8;
                }
            }
            self.extend_in_place(&mut q, best_k);
        }
        q
    }

    /// Scores one complete assignment through the scalar incremental
    /// path (the K=1 baseline the batched evaluator is compared against).
    #[must_use]
    pub fn evaluate(&self, assign: &[u8]) -> SearchScore {
        let mut p = self.root();
        for &k in assign {
            self.extend_in_place(&mut p, k);
        }
        self.finish(&p)
    }

    /// Scores up to [`MAX_LANES`] complete assignments per pass,
    /// node-major across the lanes so the per-node cost-table row and
    /// adjacency list are fetched once for all lanes. Lane state lives
    /// in fixed struct-of-arrays accumulators — no per-lane
    /// [`PartialAssign`] vectors to grow, no heap traffic in the walk —
    /// which is what makes the K=8 pass faster than eight scalar
    /// [`CostModel::evaluate`] calls. Per-lane arithmetic is identical
    /// to the scalar path (same operands, same operation order), so
    /// results are bit-equal lane by lane.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_LANES`] lanes are passed or a lane's
    /// length differs from the node count.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn evaluate_batch(&self, lanes: &[&[u8]]) -> Vec<SearchScore> {
        assert!(lanes.len() <= MAX_LANES, "at most {MAX_LANES} lanes per pass");
        for lane in lanes {
            assert_eq!(lane.len(), self.num_nodes, "lane length != node count");
        }
        let n = self.num_nodes;
        let t = self.targets.len();
        // Per-lane accumulators, mirroring `PartialAssign` field by
        // field. `u8::MAX` marks "no open stage" (target sets are ≤ 32).
        let mut ops_sum = [0.0f64; MAX_LANES];
        let mut transfer = [0.0f64; MAX_LANES];
        let mut overhead = [0.0f64; MAX_LANES];
        let mut stage_time = [0.0f64; MAX_LANES];
        let mut energy = [0.0f64; MAX_LANES];
        let mut open_bytes = [0u64; MAX_LANES];
        let mut launched = [0u64; MAX_LANES];
        let mut cur_target = [u8::MAX; MAX_LANES];
        let mut stage_count = [0u32; MAX_LANES];
        overhead[..lanes.len()].fill(self.query_secs);
        // Flat (lane, node) → stage index and (lane, stage) → target
        // tables; stages never outnumber nodes.
        let mut stage_of = vec![0u32; lanes.len() * n];
        let mut stage_target = vec![0u8; lanes.len() * n];
        for i in 0..n {
            let row = i * t;
            let inputs = &self.inputs[i];
            for (l, lane) in lanes.iter().enumerate() {
                let k = lane[i];
                debug_assert!(self.supported[row + k as usize]);
                if cur_target[l] != k {
                    // Close the open stage (energy + transfer commit)…
                    if cur_target[l] != u8::MAX {
                        energy[l] += self.power_w[cur_target[l] as usize] * stage_time[l];
                        if open_bytes[l] > 0 {
                            transfer[l] += self.interconnect.transfer_secs(open_bytes[l]);
                        }
                        stage_time[l] = 0.0;
                        open_bytes[l] = 0;
                    }
                    // …and open a new one: launch-if-first-use, then sync.
                    stage_target[l * n + stage_count[l] as usize] = k;
                    stage_count[l] += 1;
                    let e = self.engine_of[k as usize];
                    if launched[l] & (1 << e) == 0 {
                        launched[l] |= 1 << e;
                        overhead[l] += self.launch_secs[e];
                    }
                    overhead[l] += self.sync_secs;
                    cur_target[l] = k;
                }
                let si = stage_count[l] - 1;
                stage_of[l * n + i] = si;
                let term = self.term[row + k as usize];
                ops_sum[l] += term;
                stage_time[l] += term;
                let my_engine = self.engine_of[k as usize];
                for &u in inputs {
                    let ps = stage_of[l * n + u as usize];
                    if ps != si {
                        let pt = stage_target[l * n + ps as usize];
                        if self.engine_of[pt as usize] != my_engine {
                            open_bytes[l] += self.out_bytes[u as usize * t + pt as usize];
                        }
                    }
                }
            }
        }
        (0..lanes.len())
            .map(|l| {
                // Same close-out as `finish`: the open stage's energy and
                // transfer, then the `sample_secs(1.0, 1)` fold order.
                let mut tr = transfer[l];
                let mut en = energy[l];
                if cur_target[l] != u8::MAX {
                    en += self.power_w[cur_target[l] as usize] * stage_time[l];
                    if open_bytes[l] > 0 {
                        tr += self.interconnect.transfer_secs(open_bytes[l]);
                    }
                }
                SearchScore { latency_secs: (ops_sum[l] + tr) + overhead[l], energy_j: en }
            })
            .collect()
    }

    /// Materializes the [`Schedule`] induced by a complete assignment:
    /// consecutive runs of equal targets become stages, every stage
    /// carries the model's sync overhead, and the schedule carries its
    /// query overhead.
    #[must_use]
    pub fn schedule(&self, assign: &[u8]) -> Schedule {
        assert_eq!(assign.len(), self.num_nodes, "assignment incomplete");
        let mut stages: Vec<Stage> = Vec::new();
        for (i, &k) in assign.iter().enumerate() {
            let tgt = self.targets[k as usize];
            match stages.last_mut() {
                Some(s) if s.engine == tgt.engine && s.dtype == tgt.dtype => {
                    s.nodes.push(self.node_ids[i]);
                }
                _ => stages.push(Stage {
                    engine: tgt.engine,
                    dtype: tgt.dtype,
                    nodes: vec![self.node_ids[i]],
                    sync_overhead_us: self.sync_us,
                }),
            }
        }
        Schedule { stages, query_overhead_us: self.query_us }
    }

    /// Maps a schedule back to a per-node target-index assignment, or
    /// `None` if some stage's `(engine, dtype)` is outside the target
    /// set. The schedule must be valid for the graph the model was built
    /// from.
    #[must_use]
    pub fn assignment_of(&self, schedule: &Schedule) -> Option<Vec<u8>> {
        let mut assign = vec![u8::MAX; self.num_nodes];
        for stage in &schedule.stages {
            let k = self
                .targets
                .iter()
                .position(|tgt| tgt.engine == stage.engine && tgt.dtype == stage.dtype)?
                as u8;
            for nid in &stage.nodes {
                assign[nid.index()] = k;
            }
        }
        if assign.contains(&u8::MAX) {
            return None;
        }
        Some(assign)
    }
}

/// Active compute energy of one query in joules, at nominal frequency:
/// the `Σ engine.active_power_w · stage_time` numerator that
/// `StreamPlan::lower` folds for [`StreamPlan::power_w`], replicated
/// term-for-term. Launch/sync/transfer intervals draw platform idle
/// power in the thermal model and are excluded — this is the energy the
/// *placement* controls, which is what the tuner's energy objective
/// optimizes.
///
/// [`StreamPlan::power_w`]: crate::plan::StreamPlan::power_w
///
/// # Panics
///
/// Panics if the schedule is invalid for the graph.
#[must_use]
pub fn active_energy_j(soc: &Soc, graph: &Graph, schedule: &Schedule) -> f64 {
    schedule
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
    let mut power_time = 0.0;
    for stage in &schedule.stages {
        let engine = &soc.engines[stage.engine.0];
        let mut stage_time = 0.0;
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            let compute = if node.cost.flops == 0 {
                0.0
            } else {
                node.cost.flops as f64
                    / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()))
            };
            let memory =
                node.cost.total_bytes(stage.dtype) as f64 / (engine.mem_bandwidth_gbps * 1e9);
            stage_time += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
        }
        power_time += engine.active_power_w * stage_time;
    }
    power_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ChipId;
    use crate::engine::EngineKind;
    use crate::executor::estimate_query_secs;
    use nn_graph::graph::retype;
    use nn_graph::models::ModelId;

    fn setup() -> (Soc, Graph, Vec<SearchTarget>) {
        let soc = ChipId::Dimensity1100.build();
        let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let cpu = soc.cpu();
        let targets = vec![
            SearchTarget { engine: npu, dtype: DataType::U8 },
            SearchTarget { engine: cpu, dtype: DataType::U8 },
        ];
        (soc, graph, targets)
    }

    /// Deterministic pseudo-random assignment stream (xorshift), mapped
    /// to supported targets only.
    fn random_assignments(model: &CostModel, count: usize, mut seed: u64) -> Vec<Vec<u8>> {
        let t = model.targets().len();
        (0..count)
            .map(|_| {
                (0..model.num_nodes())
                    .map(|i| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let mut k = (seed % t as u64) as usize;
                        while !model.is_supported(i, k) {
                            k = (k + 1) % t;
                        }
                        k as u8
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn incremental_matches_executor_bit_exactly() {
        let (soc, graph, targets) = setup();
        let model = CostModel::new(&soc, &graph, &targets, 10.0, 0.0);
        for assign in random_assignments(&model, 32, 0x5eed_cafe) {
            let score = model.evaluate(&assign);
            let schedule = model.schedule(&assign);
            let canon_lat = estimate_query_secs(&soc, &graph, &schedule);
            let canon_j = active_energy_j(&soc, &graph, &schedule);
            assert_eq!(score.latency_secs.to_bits(), canon_lat.to_bits(), "latency ULP drift");
            assert_eq!(score.energy_j.to_bits(), canon_j.to_bits(), "energy ULP drift");
        }
    }

    #[test]
    fn batch_matches_scalar_bit_exactly() {
        let (soc, graph, targets) = setup();
        let model = CostModel::new(&soc, &graph, &targets, 10.0, 190.0);
        let assigns = random_assignments(&model, MAX_LANES, 0xfeed_f00d);
        let lanes: Vec<&[u8]> = assigns.iter().map(Vec::as_slice).collect();
        let batch = model.evaluate_batch(&lanes);
        for (lane, got) in assigns.iter().zip(&batch) {
            let want = model.evaluate(lane);
            assert_eq!(got.latency_secs.to_bits(), want.latency_secs.to_bits());
            assert_eq!(got.energy_j.to_bits(), want.energy_j.to_bits());
        }
    }

    #[test]
    fn bounds_are_admissible_along_random_paths() {
        let (soc, graph, targets) = setup();
        let model = CostModel::new(&soc, &graph, &targets, 10.0, 0.0);
        // Relative slack for fold-order differences between the bound
        // (one big suffix sum) and the exact completion.
        let slack = 1e-9;
        for assign in random_assignments(&model, 8, 0xab5e_11e5) {
            let final_score = model.evaluate(&assign);
            let mut p = model.root();
            for &k in &assign {
                assert!(
                    model.bound_latency(&p) <= final_score.latency_secs * (1.0 + slack),
                    "latency bound overshoots completion"
                );
                assert!(
                    model.bound_energy(&p) <= final_score.energy_j * (1.0 + slack),
                    "energy bound overshoots completion"
                );
                model.extend_in_place(&mut p, k);
            }
            let done = model.finish(&p);
            assert_eq!(done.latency_secs.to_bits(), final_score.latency_secs.to_bits());
        }
    }

    #[test]
    fn assignment_round_trips_through_schedule() {
        let (soc, graph, targets) = setup();
        let model = CostModel::new(&soc, &graph, &targets, 10.0, 0.0);
        for assign in random_assignments(&model, 4, 0x0dd_ba11) {
            let schedule = model.schedule(&assign);
            schedule.validate(&graph).expect("induced schedule is valid");
            assert_eq!(model.assignment_of(&schedule), Some(assign));
        }
    }
}
