//! Discrete-event execution of scheduled graphs on a simulated SoC.
//!
//! Two entry points mirror the benchmark's scenarios:
//! - [`run_query`] executes one inference end-to-end (single-stream), and
//! - [`run_offline`] executes many samples across concurrent engine
//!   streams (offline, exercising accelerator-level parallelism), with
//!   thermal state integrated throughout.

use crate::schedule::Schedule;
use crate::soc::{Soc, SocState};
use crate::time::SimDuration;
use nn_graph::Graph;
use serde::{Deserialize, Serialize};

/// Timing decomposition of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryBreakdown {
    /// Pure op execution time per stage.
    pub stage_compute: Vec<SimDuration>,
    /// Engine each stage occupied, parallel to `stage_compute`.
    pub stage_engines: Vec<crate::engine::EngineId>,
    /// Inter-engine tensor transfer time.
    pub transfer: SimDuration,
    /// Launch + framework synchronization overhead (total, including the
    /// fixed per-query cost).
    pub overhead: SimDuration,
    /// The per-engine runtime-launch share of `overhead`.
    pub launch: SimDuration,
    /// The per-stage framework-synchronization share of `overhead`.
    pub sync: SimDuration,
}

impl QueryBreakdown {
    /// Total pure-compute time across all stages.
    #[must_use]
    pub fn compute(&self) -> SimDuration {
        self.stage_compute.iter().copied().sum()
    }
}

/// Result of one simulated inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// End-to-end latency.
    pub latency: SimDuration,
    /// DVFS frequency factor in effect (1.0 = unthrottled).
    pub freq_factor: f64,
    /// DVFS ladder index in effect at dispatch (0 = fastest point).
    pub dvfs_level: usize,
    /// Die temperature at dispatch, before this query's heat was
    /// deposited (°C).
    pub temperature_c: f64,
    /// Cumulative device energy after this query completed (joules) — the
    /// energy meter's running total, read back so trace sinks can plot a
    /// joules counter without touching the meter.
    pub total_joules: f64,
    /// Decomposition.
    pub breakdown: QueryBreakdown,
}

/// Per-(compute, memory) seconds for one stream, used by the offline loop
/// to re-evaluate latency as the frequency factor changes.
#[derive(Debug, Clone)]
struct StreamProfile {
    /// (compute_secs_at_full_freq, memory_secs, scheduling_secs) per op.
    ops: Vec<(f64, f64, f64)>,
    /// Per-sample overhead at full batch amortization (seconds).
    overhead_secs: f64,
    /// Transfers between engines (seconds, frequency independent).
    transfer_secs: f64,
    /// Mean active power of the engines this stream occupies (watts).
    power_w: f64,
}

impl StreamProfile {
    fn sample_secs(&self, freq: f64, batch: usize) -> f64 {
        let ops: f64 = self.ops.iter().map(|&(c, m, s)| (c / freq).max(m) + s).sum();
        ops + self.transfer_secs + self.overhead_secs / batch.max(1) as f64
    }
}

fn build_profile(soc: &Soc, graph: &Graph, schedule: &Schedule) -> StreamProfile {
    let cross_bytes = schedule.cross_engine_bytes(graph);
    let mut ops = Vec::with_capacity(graph.len());
    let mut overhead_secs = 0.0;
    let mut transfer_secs = 0.0;
    let mut power_time = 0.0;
    let mut total_time = 0.0;

    let mut launched: Vec<bool> = vec![false; soc.engines.len()];
    overhead_secs += schedule.query_overhead_us * 1e-6;
    for (si, stage) in schedule.stages.iter().enumerate() {
        let engine = soc.engine(stage.engine);
        // Launch (runtime init) is paid once per engine per query; the
        // per-stage framework synchronization is paid on every partition.
        if !launched[stage.engine.0] {
            overhead_secs += engine.launch_overhead_us * 1e-6;
            launched[stage.engine.0] = true;
        }
        overhead_secs += stage.sync_overhead_us * 1e-6;
        if cross_bytes[si] > 0 {
            transfer_secs += soc.interconnect.transfer_secs(cross_bytes[si]);
        }
        let mut stage_time = 0.0;
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            let compute = if node.cost.flops == 0 {
                0.0
            } else {
                node.cost.flops as f64
                    / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()))
            };
            let memory = node.cost.total_bytes(stage.dtype) as f64
                / (engine.mem_bandwidth_gbps * 1e9);
            // Per-op scheduling cost is frequency-independent.
            ops.push((compute, memory, engine.per_op_overhead_us * 1e-6));
            stage_time += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
        }
        power_time += engine.active_power_w * stage_time;
        total_time += stage_time;
    }
    let power_w = if total_time > 0.0 { power_time / total_time } else { 0.0 };
    StreamProfile { ops, overhead_secs, transfer_secs, power_w }
}

/// Estimates one query's latency in seconds at nominal frequency without
/// touching any mutable state — used by backends for cost-based placement
/// decisions (e.g. OpenVINO's CPU-vs-iGPU choice, paper Section 7.4).
///
/// # Panics
///
/// Panics if the schedule is invalid for the graph.
#[must_use]
pub fn estimate_query_secs(soc: &Soc, graph: &Graph, schedule: &Schedule) -> f64 {
    schedule
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
    build_profile(soc, graph, schedule).sample_secs(1.0, 1)
}

/// Executes one inference under `schedule`, advancing the SoC state.
///
/// # Examples
///
/// ```
/// use soc_sim::{catalog::ChipId, executor::run_query, schedule::Schedule};
/// use nn_graph::{graph::retype, models::ModelId, DataType};
///
/// let soc = ChipId::Snapdragon888.build();
/// let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::I8);
/// let schedule = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
/// let mut state = soc.new_state(22.0);
/// let result = run_query(&soc, &graph, &schedule, &mut state);
/// assert!(result.latency.as_millis_f64() > 0.0);
/// ```
///
/// # Panics
///
/// Panics if the schedule is invalid for the graph or places work on an
/// engine that cannot execute it (backends validate before running).
#[must_use]
pub fn run_query(soc: &Soc, graph: &Graph, schedule: &Schedule, state: &mut SocState) -> QueryResult {
    schedule
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
    for stage in &schedule.stages {
        let engine = soc.engine(stage.engine);
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            if node.cost.flops > 0 {
                assert!(
                    engine.supports(node.class(), stage.dtype),
                    "{} cannot execute {} ({}) at {}",
                    engine.name,
                    node.name,
                    node.class(),
                    stage.dtype
                );
            }
        }
    }

    let freq = state.freq_factor();
    let dvfs_level = state.dvfs_level();
    let temperature_c = state.thermal.temperature_c();
    let cross_bytes = schedule.cross_engine_bytes(graph);

    let mut stage_compute = Vec::with_capacity(schedule.stages.len());
    let mut stage_engines = Vec::with_capacity(schedule.stages.len());
    let mut transfer = 0.0f64;
    let mut overhead = 0.0f64;
    // Launch/sync shares are tracked in separate accumulators so the
    // `overhead` sum keeps its exact historical addition order (scores are
    // locked to 0 ULPs by the golden suite).
    let mut launch_secs = 0.0f64;
    let mut sync_secs = 0.0f64;
    let mut energy_terms = 0.0f64;

    let mut launched: Vec<bool> = vec![false; soc.engines.len()];
    overhead += schedule.query_overhead_us * 1e-6;
    for (si, stage) in schedule.stages.iter().enumerate() {
        let engine = soc.engine(stage.engine);
        if !launched[stage.engine.0] {
            overhead += engine.launch_overhead_us * 1e-6;
            launch_secs += engine.launch_overhead_us * 1e-6;
            launched[stage.engine.0] = true;
        }
        overhead += stage.sync_overhead_us * 1e-6;
        sync_secs += stage.sync_overhead_us * 1e-6;
        stage_engines.push(stage.engine);
        if cross_bytes[si] > 0 {
            transfer += soc.interconnect.transfer_secs(cross_bytes[si]);
        }
        let mut t = 0.0f64;
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            let compute = if node.cost.flops == 0 {
                0.0
            } else {
                node.cost.flops as f64
                    / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()) * freq)
            };
            let memory =
                node.cost.total_bytes(stage.dtype) as f64 / (engine.mem_bandwidth_gbps * 1e9);
            t += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
        }
        energy_terms += engine.active_power_w * t;
        stage_compute.push(SimDuration::from_secs_f64(t));
    }

    let total = stage_compute.iter().copied().sum::<SimDuration>()
        + SimDuration::from_secs_f64(transfer)
        + SimDuration::from_secs_f64(overhead);

    // Thermal/energy bookkeeping over the query duration.
    let avg_power = if total > SimDuration::ZERO {
        energy_terms / total.as_secs_f64()
    } else {
        0.0
    };
    state.thermal.advance(avg_power, total);
    state.energy.record_active(avg_power, total);
    if let Some(battery) = state.battery.as_mut() {
        battery.drain(avg_power, total);
    }

    QueryResult {
        latency: total,
        freq_factor: freq,
        dvfs_level,
        temperature_c,
        total_joules: state.energy.total_joules(),
        breakdown: QueryBreakdown {
            stage_compute,
            stage_engines,
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        },
    }
}

/// Result of an offline (batched, multi-stream) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineResult {
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimDuration,
    /// Samples per second.
    pub throughput_fps: f64,
    /// Fraction of the run spent thermally throttled.
    pub throttled_fraction: f64,
    /// Samples processed per stream.
    pub per_stream_samples: Vec<u64>,
}

/// Simulation step for the offline loop.
const OFFLINE_CHUNK: SimDuration = SimDuration::from_millis(250);

/// Executes `total_samples` inferences spread across concurrent engine
/// streams (accelerator-level parallelism, paper Insight 3).
///
/// Each stream is an independent `Schedule`; samples are dispatched to
/// whichever stream frees up first (modeled fluidly: each stream consumes
/// samples at its own rate). Overheads amortize over `batch_size`.
///
/// # Panics
///
/// Panics if `streams` is empty, any schedule is invalid, or
/// `total_samples == 0`.
#[must_use]
pub fn run_offline(
    soc: &Soc,
    graph: &Graph,
    streams: &[Schedule],
    state: &mut SocState,
    total_samples: u64,
    batch_size: usize,
) -> OfflineResult {
    assert!(!streams.is_empty(), "offline needs at least one stream");
    assert!(total_samples > 0, "offline needs samples");
    for s in streams {
        s.validate(graph)
            .unwrap_or_else(|e| panic!("invalid offline schedule: {e}"));
    }
    let profiles: Vec<StreamProfile> =
        streams.iter().map(|s| build_profile(soc, graph, s)).collect();
    let total_power: f64 = profiles.iter().map(|p| p.power_w).sum::<f64>() + soc.idle_power_w;

    let mut remaining = total_samples as f64;
    let mut per_stream = vec![0.0f64; streams.len()];
    let mut elapsed = SimDuration::ZERO;
    let mut throttled = SimDuration::ZERO;

    while remaining > 0.0 {
        let freq = state.freq_factor();
        if freq < 1.0 {
            throttled += OFFLINE_CHUNK;
        }
        let chunk_secs = OFFLINE_CHUNK.as_secs_f64();
        let mut processed_this_chunk = 0.0;
        for (i, p) in profiles.iter().enumerate() {
            let rate = 1.0 / p.sample_secs(freq, batch_size);
            let done = (rate * chunk_secs).min(remaining);
            per_stream[i] += done;
            processed_this_chunk += done;
            remaining -= done;
            if remaining <= 0.0 {
                break;
            }
        }
        // All streams active concurrently: total power dissipates together.
        state.thermal.advance(total_power, OFFLINE_CHUNK);
        state.energy.record_active(total_power - soc.idle_power_w, OFFLINE_CHUNK);
        if let Some(battery) = state.battery.as_mut() {
            battery.drain(total_power, OFFLINE_CHUNK);
        }
        elapsed += OFFLINE_CHUNK;
        assert!(
            processed_this_chunk > 0.0,
            "offline run stalled: no stream makes progress"
        );
    }

    let fps = total_samples as f64 / elapsed.as_secs_f64();
    OfflineResult {
        duration: elapsed,
        throughput_fps: fps,
        throttled_fraction: throttled.as_secs_f64() / elapsed.as_secs_f64(),
        per_stream_samples: per_stream.iter().map(|&s| s.round() as u64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineId, EngineKind, EngineSpecBuilder};
    use crate::soc::InterconnectSpec;
    use crate::thermal::ThermalSpec;
    use nn_graph::builder::GraphBuilder;
    use nn_graph::{Activation, DataType, OpClass, Shape};

    fn soc() -> Soc {
        Soc {
            name: "TestChip".into(),
            vendor: "Acme".into(),
            engines: vec![
                EngineSpecBuilder::new("cpu", EngineKind::CpuBig, 100.0, 100.0, 50.0)
                    .bandwidth(15.0)
                    .launch_us(5.0)
                    .power_w(2.0)
                    .eff_all(&[OpClass::Conv, OpClass::FullyConnected], 0.4)
                    .build(),
                EngineSpecBuilder::new("npu", EngineKind::Npu, 2000.0, 500.0, 0.0)
                    .bandwidth(25.0)
                    .launch_us(80.0)
                    .power_w(1.5)
                    .eff(OpClass::Conv, 0.5)
                    .build(),
            ],
            interconnect: InterconnectSpec { transfer_gbps: 8.0, handoff_latency_us: 120.0 },
            thermal: ThermalSpec::default(),
            idle_power_w: 0.3,
            is_laptop: false,
        }
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("t", Shape::nhwc(56, 56, 32), DataType::F32);
        let c1 = b.conv2d("c1", b.input_id(), 3, 1, 64, Activation::Relu6);
        let c2 = b.conv2d("c2", c1, 3, 1, 64, Activation::Relu6);
        let p = b.global_avg_pool("gap", c2);
        let _ = b.fully_connected("fc", p, 10, Activation::None);
        b.finish()
    }

    #[test]
    fn single_stage_query_runs() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &g, &sched, &mut state);
        assert!(r.latency > SimDuration::ZERO);
        assert_eq!(r.freq_factor, 1.0);
        assert_eq!(r.breakdown.stage_compute.len(), 1);
        assert_eq!(r.breakdown.transfer, SimDuration::ZERO);
    }

    #[test]
    fn npu_is_faster_than_cpu_for_convs() {
        let soc = soc();
        let g = graph();
        let mut s1 = soc.new_state(22.0);
        let mut s2 = soc.new_state(22.0);
        let cpu = run_query(&soc, &g, &Schedule::single(&g, EngineId(0), DataType::I8, 0.0), &mut s1);
        let npu = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 0.0), &mut s2);
        assert!(npu.latency < cpu.latency);
    }

    #[test]
    fn cross_engine_split_pays_transfer() {
        let soc = soc();
        let g = graph();
        let all: Vec<_> = g.iter().map(|n| n.id).collect();
        let split = Schedule {
            query_overhead_us: 0.0,
            stages: vec![
                crate::schedule::Stage {
                    engine: EngineId(1),
                    dtype: DataType::I8,
                    nodes: all[..3].to_vec(),
                    sync_overhead_us: 0.0,
                },
                crate::schedule::Stage {
                    engine: EngineId(0),
                    dtype: DataType::I8,
                    nodes: all[3..].to_vec(),
                    sync_overhead_us: 0.0,
                },
            ],
        };
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &g, &split, &mut state);
        assert!(r.breakdown.transfer > SimDuration::ZERO);
    }

    #[test]
    fn sync_overhead_adds_latency() {
        let soc = soc();
        let g = graph();
        let mut s1 = soc.new_state(22.0);
        let mut s2 = soc.new_state(22.0);
        let plain = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 0.0), &mut s1);
        let nnapi = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 500.0), &mut s2);
        let delta = nnapi.latency - plain.latency;
        assert!((delta.as_secs_f64() - 500e-6).abs() < 1e-9, "delta {delta}");
    }

    #[test]
    fn sustained_load_throttles_and_slows() {
        let mut hot_soc = soc();
        // Make the chip hot-headed: high power, tiny thermal mass.
        hot_soc.engines[1].active_power_w = 12.0;
        hot_soc.thermal = ThermalSpec {
            resistance_c_per_w: 12.0,
            capacitance_j_per_c: 0.5,
            throttle_onset_c: 65.0,
            throttle_full_c: 85.0,
            min_freq_factor: 0.45,
        };
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let mut state = hot_soc.new_state(25.0);
        let first = run_query(&hot_soc, &g, &sched, &mut state);
        // Hammer the device for a while.
        for _ in 0..20_000 {
            let _ = run_query(&hot_soc, &g, &sched, &mut state);
        }
        let later = run_query(&hot_soc, &g, &sched, &mut state);
        assert!(state.thermal.is_throttling(), "temp {}", state.thermal.temperature_c());
        assert!(later.latency > first.latency);
        assert!(later.freq_factor < 1.0);
    }

    #[test]
    fn offline_alp_beats_single_stream() {
        let soc = soc();
        let g = graph();
        let npu = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let cpu = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);

        let mut s1 = soc.new_state(22.0);
        let solo = run_offline(&soc, &g, std::slice::from_ref(&npu), &mut s1, 24_576, 32);
        let mut s2 = soc.new_state(22.0);
        let alp = run_offline(&soc, &g, &[npu, cpu], &mut s2, 24_576, 32);
        assert!(
            alp.throughput_fps > solo.throughput_fps,
            "ALP {:.1} fps must beat solo {:.1} fps",
            alp.throughput_fps,
            solo.throughput_fps
        );
        assert_eq!(alp.per_stream_samples.len(), 2);
        assert!(alp.per_stream_samples[0] > alp.per_stream_samples[1]);
    }

    #[test]
    fn offline_batching_amortizes_overhead() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 300.0);
        let mut s1 = soc.new_state(22.0);
        let b1 = run_offline(&soc, &g, std::slice::from_ref(&sched), &mut s1, 4096, 1);
        let mut s2 = soc.new_state(22.0);
        let b64 = run_offline(&soc, &g, &[sched], &mut s2, 4096, 64);
        assert!(b64.throughput_fps > b1.throughput_fps);
    }

    #[test]
    fn energy_accounted() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let mut state = soc.new_state(22.0);
        let _ = run_query(&soc, &g, &sched, &mut state);
        assert!(state.energy.total_joules() > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot execute")]
    fn fp32_on_int_only_npu_panics() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::F32, 0.0);
        let mut state = soc.new_state(22.0);
        let _ = run_query(&soc, &g, &sched, &mut state);
    }
}
