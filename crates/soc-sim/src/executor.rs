//! Discrete-event execution of scheduled graphs on a simulated SoC.
//!
//! Two entry points mirror the benchmark's scenarios:
//! - [`run_query`] executes one inference end-to-end (single-stream), and
//! - [`run_offline`] executes many samples across concurrent engine
//!   streams (offline, exercising accelerator-level parallelism), with
//!   thermal state integrated throughout.
//!
//! Both are thin wrappers that compile a [`crate::plan::QueryPlan`] /
//! [`crate::plan::OfflinePlan`] and execute it once. Hot loops that issue
//! many queries against one deployment should compile the plan themselves
//! and call [`crate::plan::QueryPlan::execute`] per query — bit-identical
//! results, minus the per-query graph traversal.

use crate::plan::{OfflinePlan, QueryPlan, StreamPlan};
use crate::schedule::Schedule;
use crate::soc::{Soc, SocState};
use crate::time::SimDuration;
use nn_graph::Graph;
use serde::{Deserialize, Serialize};

/// Timing decomposition of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryBreakdown {
    /// Pure op execution time per stage.
    pub stage_compute: Vec<SimDuration>,
    /// Engine each stage occupied, parallel to `stage_compute`.
    pub stage_engines: Vec<crate::engine::EngineId>,
    /// Inter-engine tensor transfer time.
    pub transfer: SimDuration,
    /// Launch + framework synchronization overhead (total, including the
    /// fixed per-query cost).
    pub overhead: SimDuration,
    /// The per-engine runtime-launch share of `overhead`.
    pub launch: SimDuration,
    /// The per-stage framework-synchronization share of `overhead`.
    pub sync: SimDuration,
}

impl QueryBreakdown {
    /// Total pure-compute time across all stages.
    #[must_use]
    pub fn compute(&self) -> SimDuration {
        self.stage_compute.iter().copied().sum()
    }
}

/// Result of one simulated inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// End-to-end latency.
    pub latency: SimDuration,
    /// DVFS frequency factor in effect (1.0 = unthrottled).
    pub freq_factor: f64,
    /// DVFS ladder index in effect at dispatch (0 = fastest point).
    pub dvfs_level: usize,
    /// Die temperature at dispatch, before this query's heat was
    /// deposited (°C).
    pub temperature_c: f64,
    /// Cumulative device energy after this query completed (joules) — the
    /// energy meter's running total, read back so trace sinks can plot a
    /// joules counter without touching the meter.
    pub total_joules: f64,
    /// Decomposition.
    pub breakdown: QueryBreakdown,
}

/// Estimates one query's latency in seconds at nominal frequency without
/// touching any mutable state — used by backends for cost-based placement
/// decisions (e.g. OpenVINO's CPU-vs-iGPU choice, paper Section 7.4).
///
/// # Panics
///
/// Panics if the schedule is invalid for the graph.
#[must_use]
pub fn estimate_query_secs(soc: &Soc, graph: &Graph, schedule: &Schedule) -> f64 {
    schedule
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
    StreamPlan::lower(soc, graph, schedule).sample_secs(1.0, 1)
}

/// Executes one inference under `schedule`, advancing the SoC state.
///
/// # Examples
///
/// ```
/// use soc_sim::{catalog::ChipId, executor::run_query, schedule::Schedule};
/// use nn_graph::{graph::retype, models::ModelId, DataType};
///
/// let soc = ChipId::Snapdragon888.build();
/// let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::I8);
/// let schedule = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
/// let mut state = soc.new_state(22.0);
/// let result = run_query(&soc, &graph, &schedule, &mut state);
/// assert!(result.latency.as_millis_f64() > 0.0);
/// ```
///
/// # Panics
///
/// Panics if the schedule is invalid for the graph or places work on an
/// engine that cannot execute it (backends validate before running).
#[must_use]
pub fn run_query(soc: &Soc, graph: &Graph, schedule: &Schedule, state: &mut SocState) -> QueryResult {
    QueryPlan::new(soc, graph, schedule).execute(state)
}

/// Result of an offline (batched, multi-stream) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineResult {
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimDuration,
    /// Samples per second.
    pub throughput_fps: f64,
    /// Fraction of the run spent thermally throttled.
    pub throttled_fraction: f64,
    /// Samples processed per stream. Counts always sum to exactly the
    /// requested `total_samples` (the fluid-model rounding contract —
    /// see [`crate::plan::OfflinePlan`]).
    pub per_stream_samples: Vec<u64>,
}

/// Executes `total_samples` inferences spread across concurrent engine
/// streams (accelerator-level parallelism, paper Insight 3).
///
/// Each stream is an independent `Schedule`; samples are dispatched to
/// whichever stream frees up first (modeled fluidly: each stream consumes
/// samples at its own rate). Overheads amortize over `batch_size`.
///
/// # Panics
///
/// Panics if `streams` is empty, any schedule is invalid, or
/// `total_samples == 0`.
#[must_use]
pub fn run_offline(
    soc: &Soc,
    graph: &Graph,
    streams: &[Schedule],
    state: &mut SocState,
    total_samples: u64,
    batch_size: usize,
) -> OfflineResult {
    OfflinePlan::new(soc, graph, streams).execute(state, total_samples, batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineId, EngineKind, EngineSpecBuilder};
    use crate::soc::InterconnectSpec;
    use crate::thermal::ThermalSpec;
    use nn_graph::builder::GraphBuilder;
    use nn_graph::{Activation, DataType, OpClass, Shape};

    fn soc() -> Soc {
        Soc {
            name: "TestChip".into(),
            vendor: "Acme".into(),
            engines: vec![
                EngineSpecBuilder::new("cpu", EngineKind::CpuBig, 100.0, 100.0, 50.0)
                    .bandwidth(15.0)
                    .launch_us(5.0)
                    .power_w(2.0)
                    .eff_all(&[OpClass::Conv, OpClass::FullyConnected], 0.4)
                    .build(),
                EngineSpecBuilder::new("npu", EngineKind::Npu, 2000.0, 500.0, 0.0)
                    .bandwidth(25.0)
                    .launch_us(80.0)
                    .power_w(1.5)
                    .eff(OpClass::Conv, 0.5)
                    .build(),
            ],
            interconnect: InterconnectSpec { transfer_gbps: 8.0, handoff_latency_us: 120.0 },
            thermal: ThermalSpec::default(),
            idle_power_w: 0.3,
            is_laptop: false,
        }
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("t", Shape::nhwc(56, 56, 32), DataType::F32);
        let c1 = b.conv2d("c1", b.input_id(), 3, 1, 64, Activation::Relu6);
        let c2 = b.conv2d("c2", c1, 3, 1, 64, Activation::Relu6);
        let p = b.global_avg_pool("gap", c2);
        let _ = b.fully_connected("fc", p, 10, Activation::None);
        b.finish()
    }

    #[test]
    fn single_stage_query_runs() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &g, &sched, &mut state);
        assert!(r.latency > SimDuration::ZERO);
        assert_eq!(r.freq_factor, 1.0);
        assert_eq!(r.breakdown.stage_compute.len(), 1);
        assert_eq!(r.breakdown.transfer, SimDuration::ZERO);
    }

    #[test]
    fn npu_is_faster_than_cpu_for_convs() {
        let soc = soc();
        let g = graph();
        let mut s1 = soc.new_state(22.0);
        let mut s2 = soc.new_state(22.0);
        let cpu = run_query(&soc, &g, &Schedule::single(&g, EngineId(0), DataType::I8, 0.0), &mut s1);
        let npu = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 0.0), &mut s2);
        assert!(npu.latency < cpu.latency);
    }

    #[test]
    fn cross_engine_split_pays_transfer() {
        let soc = soc();
        let g = graph();
        let all: Vec<_> = g.iter().map(|n| n.id).collect();
        let split = Schedule {
            query_overhead_us: 0.0,
            stages: vec![
                crate::schedule::Stage {
                    engine: EngineId(1),
                    dtype: DataType::I8,
                    nodes: all[..3].to_vec(),
                    sync_overhead_us: 0.0,
                },
                crate::schedule::Stage {
                    engine: EngineId(0),
                    dtype: DataType::I8,
                    nodes: all[3..].to_vec(),
                    sync_overhead_us: 0.0,
                },
            ],
        };
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &g, &split, &mut state);
        assert!(r.breakdown.transfer > SimDuration::ZERO);
    }

    #[test]
    fn sync_overhead_adds_latency() {
        let soc = soc();
        let g = graph();
        let mut s1 = soc.new_state(22.0);
        let mut s2 = soc.new_state(22.0);
        let plain = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 0.0), &mut s1);
        let nnapi = run_query(&soc, &g, &Schedule::single(&g, EngineId(1), DataType::I8, 500.0), &mut s2);
        let delta = nnapi.latency - plain.latency;
        assert!((delta.as_secs_f64() - 500e-6).abs() < 1e-9, "delta {delta}");
    }

    #[test]
    fn sustained_load_throttles_and_slows() {
        let mut hot_soc = soc();
        // Make the chip hot-headed: high power, tiny thermal mass.
        hot_soc.engines[1].active_power_w = 12.0;
        hot_soc.thermal = ThermalSpec {
            resistance_c_per_w: 12.0,
            capacitance_j_per_c: 0.5,
            throttle_onset_c: 65.0,
            throttle_full_c: 85.0,
            min_freq_factor: 0.45,
        };
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let mut state = hot_soc.new_state(25.0);
        let first = run_query(&hot_soc, &g, &sched, &mut state);
        // Hammer the device for a while.
        for _ in 0..20_000 {
            let _ = run_query(&hot_soc, &g, &sched, &mut state);
        }
        let later = run_query(&hot_soc, &g, &sched, &mut state);
        assert!(state.thermal.is_throttling(), "temp {}", state.thermal.temperature_c());
        assert!(later.latency > first.latency);
        assert!(later.freq_factor < 1.0);
    }

    #[test]
    fn offline_alp_beats_single_stream() {
        let soc = soc();
        let g = graph();
        let npu = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let cpu = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);

        let mut s1 = soc.new_state(22.0);
        let solo = run_offline(&soc, &g, std::slice::from_ref(&npu), &mut s1, 24_576, 32);
        let mut s2 = soc.new_state(22.0);
        let alp = run_offline(&soc, &g, &[npu, cpu], &mut s2, 24_576, 32);
        assert!(
            alp.throughput_fps > solo.throughput_fps,
            "ALP {:.1} fps must beat solo {:.1} fps",
            alp.throughput_fps,
            solo.throughput_fps
        );
        assert_eq!(alp.per_stream_samples.len(), 2);
        assert!(alp.per_stream_samples[0] > alp.per_stream_samples[1]);
    }

    #[test]
    fn offline_batching_amortizes_overhead() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 300.0);
        let mut s1 = soc.new_state(22.0);
        let b1 = run_offline(&soc, &g, std::slice::from_ref(&sched), &mut s1, 4096, 1);
        let mut s2 = soc.new_state(22.0);
        let b64 = run_offline(&soc, &g, &[sched], &mut s2, 4096, 64);
        assert!(b64.throughput_fps > b1.throughput_fps);
    }

    #[test]
    fn energy_accounted() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let mut state = soc.new_state(22.0);
        let _ = run_query(&soc, &g, &sched, &mut state);
        assert!(state.energy.total_joules() > 0.0);
    }

    #[test]
    fn offline_accounts_every_sample() {
        // The fluid-model rounding contract: per-stream integer counts sum
        // to exactly the requested sample total, whatever the fractional
        // split between streams came out to.
        let soc = soc();
        let g = graph();
        let npu = Schedule::single(&g, EngineId(1), DataType::I8, 0.0);
        let cpu = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);
        for total in [1u64, 7, 1000, 24_576, 24_577] {
            let mut state = soc.new_state(22.0);
            let r = run_offline(&soc, &g, &[npu.clone(), cpu.clone()], &mut state, total, 32);
            assert_eq!(
                r.per_stream_samples.iter().sum::<u64>(),
                total,
                "streams must account for all {total} samples, got {:?}",
                r.per_stream_samples
            );
        }
    }

    #[test]
    fn planned_queries_match_run_query_bit_for_bit() {
        // Compiling once and executing many times is the whole point of
        // the plan; it must be invisible in every result bit.
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::I8, 10.0);
        let plan = crate::plan::QueryPlan::new(&soc, &g, &sched);
        let mut direct_state = soc.new_state(22.0);
        let mut planned_state = soc.new_state(22.0);
        for _ in 0..100 {
            let direct = run_query(&soc, &g, &sched, &mut direct_state);
            let planned = plan.execute(&mut planned_state);
            assert_eq!(direct, planned);
        }
        assert_eq!(direct_state, planned_state);
    }

    #[test]
    #[should_panic(expected = "cannot execute")]
    fn fp32_on_int_only_npu_panics() {
        let soc = soc();
        let g = graph();
        let sched = Schedule::single(&g, EngineId(1), DataType::F32, 0.0);
        let mut state = soc.new_state(22.0);
        let _ = run_query(&soc, &g, &sched, &mut state);
    }
}
