//! Execution schedules: the partition/placement a backend produces.
//!
//! A schedule assigns every graph node to a stage; each stage runs on one
//! engine at one precision. The stage list is ordered (stages execute
//! sequentially for a single query), and carries the per-partition
//! framework synchronization overhead — the HAL cost that makes NNAPI
//! slower than vendor delegates (paper Table 3).

use crate::engine::EngineId;
use nn_graph::{DataType, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One contiguous partition of the graph placed on a single engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Engine executing this partition.
    pub engine: EngineId,
    /// Deployment precision of this partition.
    pub dtype: DataType,
    /// Nodes executed, in topological order.
    pub nodes: Vec<NodeId>,
    /// Framework synchronization overhead paid once per stage per query
    /// (µs) — e.g. the NNAPI hardware-abstraction-layer hop.
    pub sync_overhead_us: f64,
}

/// A complete placement of a graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Ordered stages.
    pub stages: Vec<Stage>,
    /// One-time per-query framework overhead (µs) — e.g. the NNAPI HAL's
    /// request setup, paid once per inference regardless of partitioning.
    pub query_overhead_us: f64,
}

/// Schedule validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A node appears in no stage.
    MissingNode(NodeId),
    /// A node appears in more than one stage.
    DuplicateNode(NodeId),
    /// Stage node lists are not in global topological order.
    OrderViolation(NodeId),
    /// Schedule has no stages.
    Empty,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingNode(n) => write!(f, "node {n} is not scheduled"),
            ScheduleError::DuplicateNode(n) => write!(f, "node {n} scheduled twice"),
            ScheduleError::OrderViolation(n) => write!(f, "node {n} breaks topological order"),
            ScheduleError::Empty => write!(f, "schedule has no stages"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Single-stage schedule: the whole graph on one engine.
    #[must_use]
    pub fn single(graph: &Graph, engine: EngineId, dtype: DataType, sync_overhead_us: f64) -> Self {
        Schedule {
            stages: vec![Stage {
                engine,
                dtype,
                nodes: graph.iter().map(|n| n.id).collect(),
                sync_overhead_us,
            }],
            query_overhead_us: 0.0,
        }
    }

    /// Number of stages (partitions).
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of engine transitions (boundaries where the engine changes).
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.stages
            .windows(2)
            .filter(|w| w[0].engine != w[1].engine)
            .count()
    }

    /// Map from node index to stage index.
    ///
    /// # Panics
    ///
    /// Panics if a node id exceeds the graph size implied by the maximum id.
    #[must_use]
    pub fn stage_of(&self, graph: &Graph) -> Vec<usize> {
        let mut map = vec![usize::MAX; graph.len()];
        for (si, stage) in self.stages.iter().enumerate() {
            for &n in &stage.nodes {
                map[n.index()] = si;
            }
        }
        map
    }

    /// Validates that the schedule covers the graph exactly once, in order.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, graph: &Graph) -> Result<(), ScheduleError> {
        if self.stages.is_empty() {
            return Err(ScheduleError::Empty);
        }
        let mut seen = vec![false; graph.len()];
        let mut last: Option<NodeId> = None;
        for stage in &self.stages {
            for &n in &stage.nodes {
                if seen[n.index()] {
                    return Err(ScheduleError::DuplicateNode(n));
                }
                seen[n.index()] = true;
                if let Some(prev) = last {
                    if n <= prev {
                        return Err(ScheduleError::OrderViolation(n));
                    }
                }
                last = Some(n);
            }
        }
        if let Some(idx) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::MissingNode(
                graph.iter().nth(idx).expect("index in range").id,
            ));
        }
        Ok(())
    }

    /// Bytes crossing each stage boundary where the engine changes:
    /// tensors produced in one stage and consumed in a *different-engine*
    /// stage. Returned per consuming stage index.
    #[must_use]
    pub fn cross_engine_bytes(&self, graph: &Graph) -> Vec<u64> {
        let stage_of = self.stage_of(graph);
        let mut bytes = vec![0u64; self.stages.len()];
        for node in graph {
            let ns = stage_of[node.id.index()];
            for &inp in &node.inputs {
                let ps = stage_of[inp.index()];
                if ps != ns && self.stages[ps].engine != self.stages[ns].engine {
                    let producer = graph.node(inp);
                    bytes[ns] += producer.output.shape.byte_size(self.stages[ps].dtype) as u64;
                }
            }
        }
        bytes
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            writeln!(
                f,
                "stage {i}: {} nodes on {} @ {} (sync {:.0}us)",
                s.nodes.len(),
                s.engine,
                s.dtype,
                s.sync_overhead_us
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::builder::GraphBuilder;
    use nn_graph::{Activation, Shape};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 3), DataType::F32);
        let c1 = b.conv2d("c1", b.input_id(), 3, 1, 16, Activation::Relu6);
        let c2 = b.conv2d("c2", c1, 3, 1, 16, Activation::Relu6);
        let p = b.global_avg_pool("gap", c2);
        let _ = b.fully_connected("fc", p, 10, Activation::None);
        b.finish()
    }

    fn ids(graph: &Graph) -> Vec<NodeId> {
        graph.iter().map(|n| n.id).collect()
    }

    #[test]
    fn single_schedule_validates() {
        let g = graph();
        let s = Schedule::single(&g, EngineId(0), DataType::I8, 0.0);
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.num_transitions(), 0);
    }

    #[test]
    fn split_schedule_counts_transitions() {
        let g = graph();
        let all = ids(&g);
        let s = Schedule {
            stages: vec![
                Stage { engine: EngineId(1), dtype: DataType::I8, nodes: all[..3].to_vec(), sync_overhead_us: 10.0 },
                Stage { engine: EngineId(0), dtype: DataType::F32, nodes: all[3..].to_vec(), sync_overhead_us: 10.0 },
            ],
            query_overhead_us: 0.0,
        };
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.num_transitions(), 1);
    }

    #[test]
    fn missing_node_detected() {
        let g = graph();
        let all = ids(&g);
        let s = Schedule {
            stages: vec![Stage {
                engine: EngineId(0),
                dtype: DataType::F32,
                nodes: all[..3].to_vec(),
                sync_overhead_us: 0.0,
            }],
            query_overhead_us: 0.0,
        };
        assert!(matches!(s.validate(&g), Err(ScheduleError::MissingNode(_))));
    }

    #[test]
    fn duplicate_node_detected() {
        let g = graph();
        let all = ids(&g);
        let mut nodes = all.clone();
        nodes.push(all[0]);
        let s = Schedule {
            stages: vec![Stage { engine: EngineId(0), dtype: DataType::F32, nodes, sync_overhead_us: 0.0 }],
            query_overhead_us: 0.0,
        };
        assert!(matches!(s.validate(&g), Err(ScheduleError::DuplicateNode(_))));
    }

    #[test]
    fn order_violation_detected() {
        let g = graph();
        let mut nodes = ids(&g);
        nodes.swap(1, 2);
        let s = Schedule {
            stages: vec![Stage { engine: EngineId(0), dtype: DataType::F32, nodes, sync_overhead_us: 0.0 }],
            query_overhead_us: 0.0,
        };
        assert!(matches!(s.validate(&g), Err(ScheduleError::OrderViolation(_))));
    }

    #[test]
    fn empty_schedule_rejected() {
        let g = graph();
        assert_eq!(Schedule::default().validate(&g), Err(ScheduleError::Empty));
    }

    #[test]
    fn cross_engine_bytes_counts_cut_tensors() {
        let g = graph();
        let all = ids(&g);
        // Cut after c2 (node index 2): the 8x8x16 tensor crosses engines at I8.
        let s = Schedule {
            stages: vec![
                Stage { engine: EngineId(1), dtype: DataType::I8, nodes: all[..3].to_vec(), sync_overhead_us: 0.0 },
                Stage { engine: EngineId(0), dtype: DataType::I8, nodes: all[3..].to_vec(), sync_overhead_us: 0.0 },
            ],
            query_overhead_us: 0.0,
        };
        let bytes = s.cross_engine_bytes(&g);
        assert_eq!(bytes[0], 0);
        assert_eq!(bytes[1], 8 * 8 * 16);
    }

    #[test]
    fn same_engine_split_transfers_nothing() {
        let g = graph();
        let all = ids(&g);
        let s = Schedule {
            stages: vec![
                Stage { engine: EngineId(0), dtype: DataType::I8, nodes: all[..3].to_vec(), sync_overhead_us: 0.0 },
                Stage { engine: EngineId(0), dtype: DataType::I8, nodes: all[3..].to_vec(), sync_overhead_us: 0.0 },
            ],
            query_overhead_us: 0.0,
        };
        assert_eq!(s.cross_engine_bytes(&g), vec![0, 0]);
    }
}
