//! Batched lockstep plan execution: K device lanes per pass over the op
//! arrays.
//!
//! The compiled [`QueryPlan`] evaluates one `(device, query)` pair per
//! call. Fleet-scale population sweeps and the schedule auto-tuner want
//! the *same* plan evaluated against many device variants — different
//! thermal states, battery caps, DVFS ladders, or re-lowered overhead
//! knobs — and paying one full traversal of the op arrays per variant is
//! the binding cost. [`BatchPlan`] executes K lanes in lockstep: one
//! pass over the per-op roofline arrays updates K `f64` accumulator
//! lanes (a manually unrolled fixed-width block — no `std::simd`), then
//! per-lane DVFS/thermal/energy stepping runs in the exact scalar order.
//!
//! # Lane layout
//!
//! [`BatchState`] is a structure-of-arrays transpose of [`SocState`]:
//! one vector per field, indexed by lane. [`BatchState::gather`] /
//! [`BatchState::scatter`] convert between the two layouts losslessly.
//!
//! ```text
//!  K × SocState (AoS)                BatchState (SoA)
//!  ┌─────────────────┐
//!  │ thermal energy … │ lane 0       thermal: [t0 t1 … tK]
//!  │ thermal energy … │ lane 1   ⇄   energy:  [e0 e1 … eK]
//!  │       …          │              battery: [b0 b1 … bK]
//!  └─────────────────┘              dvfs:    [d0 d1 … dK]
//! ```
//!
//! # Bit-identity contract
//!
//! Lane `k` of [`BatchPlan::execute`] is **bit-identical** — every `f64`,
//! 0 ULPs — to a scalar [`QueryPlan::execute`] of the same device through
//! the same query sequence: identical latencies, breakdowns, energy and
//! DVFS/thermal trajectories. Two mechanisms preserve this:
//!
//! * The per-op accumulation keeps the scalar operand and addition order
//!   *per lane* (`t += (flops / (denom * freq)).max(memory) + sched`);
//!   lanes only share the loop, never intermediate values, and IEEE-754
//!   arithmetic is deterministic per lane regardless of how the compiler
//!   packs the independent divides.
//! * Lanes whose dispatch frequency has **identical bits** share one set
//!   of accumulator lanes outright — same inputs through the same
//!   operations are the same bits, so deduplication is unobservable.
//!   This is what makes a uniform fleet (K clones marching through one
//!   trajectory) cost one walk per step instead of K.
//! * The same reasoning dedups the expensive part of the per-lane
//!   stepping: the RC decay factor `exp(-dt/tau)` is a pure function of
//!   the step duration and the lane's thermal time constant, so lanes
//!   with bit-equal `(dt, tau)` share one `exp`
//!   ([`ThermalState::advance_with_alpha`]).
//!
//! `tests/plan_equivalence.rs` fuzzes the contract over random graphs,
//! schedules, lane counts and heterogeneous states.

use crate::battery::BatteryState;
use crate::dvfs::DvfsLadder;
use crate::engine::EngineId;
use crate::executor::{QueryBreakdown, QueryResult};
use crate::plan::{PlanOp, QueryPlan};
use crate::power::EnergyMeter;
use crate::soc::SocState;
use crate::thermal::ThermalState;
use crate::time::SimDuration;
use std::sync::Arc;

/// Width of the manually unrolled accumulator block: four independent
/// `f64` lanes per iteration, enough for the autovectorizer to emit
/// packed divides on the x86-64 baseline without any `std::simd`
/// dependency.
const LANE_WIDTH: usize = 4;

/// Adds one op's roofline term to every accumulator lane, preserving the
/// scalar executor's exact per-lane operand order:
/// `t += (flops / (denom * freq)).max(memory) + sched`.
#[inline]
fn accumulate_op(op: &PlanOp, freq: &[f64], acc: &mut [f64]) {
    debug_assert_eq!(freq.len(), acc.len());
    let PlanOp { flops, denom, memory_secs, sched_secs } = *op;
    if flops == 0.0 {
        // The scalar loop short-circuits the divide for memory-only ops;
        // the max/add still run in the same order.
        for t in acc.iter_mut() {
            *t += (0.0f64).max(memory_secs) + sched_secs;
        }
        return;
    }
    let mut freq_blocks = freq.chunks_exact(LANE_WIDTH);
    let mut acc_blocks = acc.chunks_exact_mut(LANE_WIDTH);
    for (f, t) in (&mut freq_blocks).zip(&mut acc_blocks) {
        // Fixed-width block of independent lanes: each lane runs exactly
        // the scalar arithmetic, so packing the divides cannot change any
        // lane's result bits.
        for l in 0..LANE_WIDTH {
            t[l] += (flops / (denom * f[l])).max(memory_secs) + sched_secs;
        }
    }
    for (f, t) in freq_blocks.remainder().iter().zip(acc_blocks.into_remainder()) {
        *t += (flops / (denom * *f)).max(memory_secs) + sched_secs;
    }
}

/// Structure-of-arrays transpose of K [`SocState`]s plus the reusable
/// per-step scratch lanes, so a steady-state batch step allocates
/// nothing.
///
/// Built with [`BatchState::gather`], consumed lane-by-lane via
/// [`BatchState::remove_lane`] or all at once via
/// [`BatchState::scatter`].
#[derive(Debug, Clone, Default)]
pub struct BatchState {
    /// Thermal trajectory per lane.
    thermal: Vec<ThermalState>,
    /// Energy meter per lane.
    energy: Vec<EnergyMeter>,
    /// Battery state per lane (`None` = wall power).
    battery: Vec<Option<BatteryState>>,
    /// DVFS ladder per lane.
    dvfs: Vec<DvfsLadder>,
    // ---- per-step scratch, refilled by every BatchPlan step ----
    /// Dispatch-time frequency factor per lane.
    freq: Vec<f64>,
    /// Dispatch-time DVFS ladder index per lane.
    level: Vec<usize>,
    /// Dispatch-time die temperature per lane.
    temp: Vec<f64>,
    /// Distinct dispatch frequencies this step (by exact bits).
    uniq_freq: Vec<f64>,
    /// Lane → index into `uniq_freq`.
    uniq_of: Vec<usize>,
    /// Per-distinct-frequency stage accumulator.
    stage_t: Vec<f64>,
    /// Per-distinct-frequency duration of the stage just walked.
    stage_d: Vec<SimDuration>,
    /// Per-distinct-frequency energy term accumulator.
    uniq_energy: Vec<f64>,
    /// Per-distinct-frequency compute total.
    uniq_total: Vec<SimDuration>,
    /// Latency of the most recent step, per lane.
    latency: Vec<SimDuration>,
    /// Cumulative joules after the most recent step, per lane.
    joules: Vec<f64>,
    /// Per-step memo of thermal decay factors keyed by
    /// `(step duration, RC time-constant bits)`: lanes agreeing on both
    /// share one `exp` — the dominant per-lane stepping cost.
    alpha_memo: Vec<(SimDuration, u64, f64)>,
}

impl BatchState {
    /// Transposes K scalar states into lane vectors (SoA).
    #[must_use]
    pub fn gather(states: &[SocState]) -> Self {
        BatchState {
            thermal: states.iter().map(|s| s.thermal.clone()).collect(),
            energy: states.iter().map(|s| s.energy).collect(),
            battery: states.iter().map(|s| s.battery).collect(),
            dvfs: states.iter().map(|s| s.dvfs.clone()).collect(),
            ..BatchState::default()
        }
    }

    /// Re-targets the batch at a fresh set of scalar states **in place**,
    /// reusing every lane and scratch allocation — the per-wave path for
    /// fleet sweeps, where one `BatchState` serves thousands of
    /// consecutive K-lane waves and a `gather` per wave would pay four
    /// vector allocations each time. The lane count may change between
    /// waves. Telemetry from the previous wave
    /// ([`Self::last_freq_factors`] and friends) is cleared; the per-step
    /// scratch keeps its capacity.
    pub fn refill(&mut self, states: &[SocState]) {
        self.thermal.clear();
        self.thermal.extend(states.iter().map(|s| s.thermal.clone()));
        self.energy.clear();
        self.energy.extend(states.iter().map(|s| s.energy));
        self.battery.clear();
        self.battery.extend(states.iter().map(|s| s.battery));
        // Ladders own a heap buffer: copy into surviving slots so their
        // allocations are reused, then clone only net-new lanes.
        self.dvfs.truncate(states.len());
        let reused = self.dvfs.len();
        for (slot, state) in self.dvfs.iter_mut().zip(states) {
            slot.copy_from(&state.dvfs);
        }
        self.dvfs.extend(states[reused..].iter().map(|s| s.dvfs.clone()));
        // Stale step telemetry must not leak into the new wave.
        self.freq.clear();
        self.level.clear();
        self.temp.clear();
        self.uniq_freq.clear();
        self.uniq_of.clear();
        self.latency.clear();
        self.joules.clear();
    }

    /// Transposes the lane vectors back into scalar states, in lane
    /// order. Non-consuming, so trajectories can be compared mid-run.
    #[must_use]
    pub fn scatter(&self) -> Vec<SocState> {
        (0..self.lanes()).map(|k| self.lane(k)).collect()
    }

    /// Number of in-flight lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.thermal.len()
    }

    /// Whether the batch has no lanes left.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.thermal.is_empty()
    }

    /// The scalar state of lane `lane` (a copy; the lane stays in
    /// flight).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn lane(&self, lane: usize) -> SocState {
        SocState {
            thermal: self.thermal[lane].clone(),
            energy: self.energy[lane],
            battery: self.battery[lane],
            dvfs: self.dvfs[lane].clone(),
        }
    }

    /// Removes lane `lane` from the batch and returns its scalar state;
    /// surviving lanes shift down one position. Used by the harness to
    /// retire a device that met its run rules while the rest keep
    /// stepping.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn remove_lane(&mut self, lane: usize) -> SocState {
        let state = SocState {
            thermal: self.thermal.remove(lane),
            energy: self.energy.remove(lane),
            battery: self.battery.remove(lane),
            dvfs: self.dvfs.remove(lane),
        };
        // Keep the step-scratch slices aligned with the surviving lanes
        // so telemetry reads between a step and the next stay valid.
        for scratch_len in [self.freq.len(), self.level.len()] {
            debug_assert!(scratch_len == 0 || scratch_len > lane);
        }
        if lane < self.freq.len() {
            self.freq.remove(lane);
        }
        if lane < self.level.len() {
            self.level.remove(lane);
        }
        if lane < self.temp.len() {
            self.temp.remove(lane);
        }
        if lane < self.latency.len() {
            self.latency.remove(lane);
        }
        if lane < self.joules.len() {
            self.joules.remove(lane);
        }
        state
    }

    /// Dispatch-time frequency factors of the most recent step, per lane
    /// (empty before the first step).
    #[must_use]
    pub fn last_freq_factors(&self) -> &[f64] {
        &self.freq
    }

    /// Dispatch-time die temperatures (°C) of the most recent step, per
    /// lane (empty before the first step).
    #[must_use]
    pub fn last_temperatures_c(&self) -> &[f64] {
        &self.temp
    }

    /// Per-lane latencies of the most recent step (empty before the
    /// first step).
    #[must_use]
    pub fn last_latencies(&self) -> &[SimDuration] {
        &self.latency
    }

    /// Cumulative joules per lane after the most recent step (empty
    /// before the first step).
    #[must_use]
    pub fn last_total_joules(&self) -> &[f64] {
        &self.joules
    }

    /// Distinct dispatch-frequency bit patterns the most recent step
    /// observed (0 before the first step). `lanes()` minus this is the
    /// number of lanes that shared another lane's op-array walk — the
    /// dedup win the fleet executor counts per wave.
    #[must_use]
    pub fn last_distinct_frequencies(&self) -> usize {
        self.uniq_freq.len()
    }
}

/// One compiled [`QueryPlan`] fanned out to K lockstep lanes, each lane
/// carrying its own overhead terms.
///
/// Two constructors cover the two batching shapes:
/// * [`BatchPlan::broadcast`] — K devices running the *same* deployment
///   (population sweeps): every lane shares the plan's own overheads.
/// * [`crate::plan::SweepPlan::relower_query_batch`] — K knob variants of
///   one deployment (ablations / auto-tuning): lanes share the op arrays
///   and differ only in re-lowered overhead terms.
///
/// See the [module docs](crate::plan_batch) for the bit-identity
/// contract.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The shared op/stage arrays.
    plan: Arc<QueryPlan>,
    /// Inter-engine transfer time per lane.
    transfer: Vec<SimDuration>,
    /// Total overhead per lane.
    overhead: Vec<SimDuration>,
    /// Runtime-launch share of `overhead` per lane.
    launch: Vec<SimDuration>,
    /// Framework-synchronization share of `overhead` per lane.
    sync: Vec<SimDuration>,
}

impl BatchPlan {
    /// Fans one plan out to `lanes` identical lockstep lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn broadcast(plan: Arc<QueryPlan>, lanes: usize) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        BatchPlan {
            transfer: vec![plan.transfer; lanes],
            overhead: vec![plan.overhead; lanes],
            launch: vec![plan.launch; lanes],
            sync: vec![plan.sync; lanes],
            plan,
        }
    }

    /// Assembles a batch from shared op arrays plus per-lane overhead
    /// terms (the [`crate::plan::SweepPlan::relower_query_batch`] path).
    pub(crate) fn from_lanes(
        plan: Arc<QueryPlan>,
        transfer: Vec<SimDuration>,
        overhead: Vec<SimDuration>,
        launch: Vec<SimDuration>,
        sync: Vec<SimDuration>,
    ) -> Self {
        assert!(!transfer.is_empty(), "batch needs at least one lane");
        assert!(
            transfer.len() == overhead.len()
                && overhead.len() == launch.len()
                && launch.len() == sync.len(),
            "per-lane overhead vectors must agree on the lane count"
        );
        BatchPlan { plan, transfer, overhead, launch, sync }
    }

    /// Re-targets this batch at a new set of re-lowered lanes **in
    /// place**: clears and refills the per-lane overhead vectors without
    /// touching the shared op arrays — the allocation-free path behind
    /// [`crate::plan::SweepPlan::relower_query_batch_into`]. The lane
    /// count may change between refills.
    ///
    /// # Panics
    ///
    /// Panics if `plan` is not the very `Arc` this batch shares its op
    /// arrays with, or if `lanes` yields nothing.
    pub(crate) fn refill_lanes(
        &mut self,
        plan: &Arc<QueryPlan>,
        lanes: impl Iterator<Item = (SimDuration, SimDuration, SimDuration, SimDuration)>,
    ) {
        assert!(
            Arc::ptr_eq(&self.plan, plan),
            "batch must share the sweep plan's op arrays"
        );
        self.transfer.clear();
        self.overhead.clear();
        self.launch.clear();
        self.sync.clear();
        for (transfer, overhead, launch, sync) in lanes {
            self.transfer.push(transfer);
            self.overhead.push(overhead);
            self.launch.push(launch);
            self.sync.push(sync);
        }
        assert!(!self.transfer.is_empty(), "batch needs at least one lane");
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.transfer.len()
    }

    /// The scalar [`QueryPlan`] equivalent to lane `lane`: shared op and
    /// stage arrays with that lane's overhead terms. Executing it against
    /// a lane's state reproduces the batched lane bit-for-bit — the
    /// reference the equivalence tests compare against.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn lane_plan(&self, lane: usize) -> QueryPlan {
        QueryPlan {
            ops: self.plan.ops.clone(),
            stages: self.plan.stages.clone(),
            transfer: self.transfer[lane],
            overhead: self.overhead[lane],
            launch: self.launch[lane],
            sync: self.sync[lane],
        }
    }

    /// Removes lane `lane`; surviving lanes shift down one position.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or if it is the last lane (an
    /// empty batch cannot execute — drop the plan instead).
    pub fn remove_lane(&mut self, lane: usize) {
        assert!(self.lanes() > 1, "cannot remove the last lane");
        self.transfer.remove(lane);
        self.overhead.remove(lane);
        self.launch.remove(lane);
        self.sync.remove(lane);
    }

    /// Executes one query on every lane in lockstep, advancing all lane
    /// states, and returns the per-lane [`QueryResult`]s — bit-identical
    /// to a scalar [`QueryPlan::execute`] per lane.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have exactly one state per lane.
    #[must_use]
    pub fn execute(&self, batch: &mut BatchState) -> Vec<QueryResult> {
        let lanes = batch.lanes();
        let mut stage_compute: Vec<Vec<SimDuration>> =
            (0..lanes).map(|_| Vec::with_capacity(self.plan.stages.len())).collect();
        self.step(batch, Some(|lane: usize, d: SimDuration| stage_compute[lane].push(d)));
        let stage_engines: Vec<EngineId> = self.plan.stages.iter().map(|s| s.engine).collect();
        stage_compute
            .into_iter()
            .enumerate()
            .map(|(k, sc)| QueryResult {
                latency: batch.latency[k],
                freq_factor: batch.freq[k],
                dvfs_level: batch.level[k],
                temperature_c: batch.temp[k],
                total_joules: batch.joules[k],
                breakdown: QueryBreakdown {
                    stage_compute: sc,
                    stage_engines: stage_engines.clone(),
                    transfer: self.transfer[k],
                    overhead: self.overhead[k],
                    launch: self.launch[k],
                    sync: self.sync[k],
                },
            })
            .collect()
    }

    /// The allocation-free hot path: executes one query on every lane
    /// and returns the per-lane latencies, skipping the per-lane
    /// breakdown assembly. State trajectories (thermal, energy, battery)
    /// are identical to [`Self::execute`]; telemetry for the step is
    /// readable from the batch state
    /// ([`BatchState::last_freq_factors`] and friends).
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have exactly one state per lane.
    pub fn execute_latencies<'a>(&self, batch: &'a mut BatchState) -> &'a [SimDuration] {
        // `fn`-typed `None` monomorphizes a sink-free step: the latency
        // hot path carries no per-stage sink dispatch at all.
        self.step(batch, None::<fn(usize, SimDuration)>);
        &batch.latency
    }

    /// One lockstep query step: dispatch reads, the shared op-array
    /// traversal, then per-lane thermal/energy/battery stepping — every
    /// per-lane operation in the exact scalar order.
    fn step<F: FnMut(usize, SimDuration)>(&self, batch: &mut BatchState, mut stage_sink: Option<F>) {
        let plan = &*self.plan;
        let lanes = batch.lanes();
        assert_eq!(
            lanes,
            self.lanes(),
            "batch state must have one lane per plan lane"
        );
        debug_assert!(
            plan.stages.last().map_or(plan.ops.is_empty(), |s| s.ops_end == plan.ops.len()),
            "plan op ranges must tile the op array"
        );

        // Dispatch-time reads, per lane, exactly as SocState::freq_factor
        // / dvfs_level derive them.
        batch.freq.clear();
        batch.level.clear();
        batch.temp.clear();
        for k in 0..lanes {
            let battery_cap = batch.battery[k].as_ref().map_or(1.0, BatteryState::freq_cap);
            let target = batch.thermal[k].freq_factor().min(battery_cap);
            // One ladder scan per lane: `snap` is `factors()[level_of(..)]`,
            // so deriving the frequency from the level halves the scans.
            let level = batch.dvfs[k].level_of(target);
            let freq = batch.dvfs[k].factors()[level];
            debug_assert!(
                freq.is_finite() && freq > 0.0,
                "DVFS frequency factor must be positive, got {freq}"
            );
            batch.freq.push(freq);
            batch.level.push(level);
            batch.temp.push(batch.thermal[k].temperature_c());
        }

        // Deduplicate lanes on exact frequency bits: identical bits run
        // identical arithmetic, so they share one accumulator lane.
        batch.uniq_freq.clear();
        batch.uniq_of.clear();
        for k in 0..lanes {
            let bits = batch.freq[k].to_bits();
            let slot = match batch.uniq_freq.iter().position(|u| u.to_bits() == bits) {
                Some(s) => s,
                None => {
                    batch.uniq_freq.push(batch.freq[k]);
                    batch.uniq_freq.len() - 1
                }
            };
            batch.uniq_of.push(slot);
        }
        let uniq = batch.uniq_freq.len();

        // One traversal of the op arrays, `uniq` accumulator lanes in
        // lockstep.
        batch.uniq_energy.clear();
        batch.uniq_energy.resize(uniq, 0.0);
        batch.uniq_total.clear();
        batch.uniq_total.resize(uniq, SimDuration::ZERO);
        batch.stage_t.clear();
        batch.stage_t.resize(uniq, 0.0);
        batch.stage_d.clear();
        batch.stage_d.resize(uniq, SimDuration::ZERO);
        let mut op_start = 0usize;
        for stage in &plan.stages {
            let ops = &plan.ops[op_start..stage.ops_end];
            op_start = stage.ops_end;
            if uniq == 1 {
                // All lanes share one operating point (the uniform-fleet
                // hot case): run the walk in the exact scalar loop shape —
                // accumulator and frequency in registers — instead of
                // through the slice-lane machinery.
                let freq = batch.uniq_freq[0];
                let mut t = 0.0f64;
                for op in ops {
                    let compute =
                        if op.flops == 0.0 { 0.0 } else { op.flops / (op.denom * freq) };
                    t += compute.max(op.memory_secs) + op.sched_secs;
                }
                batch.stage_t[0] = t;
            } else {
                for t in batch.stage_t.iter_mut() {
                    *t = 0.0;
                }
                for op in ops {
                    accumulate_op(op, &batch.uniq_freq, &mut batch.stage_t);
                }
            }
            for u in 0..uniq {
                let t = batch.stage_t[u];
                batch.uniq_energy[u] += stage.power_w * t;
                let d = SimDuration::from_secs_f64(t);
                batch.uniq_total[u] += d;
                batch.stage_d[u] = d;
            }
            if let Some(sink) = &mut stage_sink {
                for k in 0..lanes {
                    sink(k, batch.stage_d[batch.uniq_of[k]]);
                }
            }
        }

        // Per-lane totals and thermal/energy/battery stepping, in the
        // exact scalar operand order. The RC decay factor `exp(-dt/tau)`
        // is a pure function of the step duration and the lane's thermal
        // time constant, so lanes agreeing on both (to the bit) share one
        // `exp` — in a uniform fleet the whole step pays it once.
        batch.latency.clear();
        batch.joules.clear();
        batch.alpha_memo.clear();
        for k in 0..lanes {
            let u = batch.uniq_of[k];
            let total = batch.uniq_total[u] + self.transfer[k] + self.overhead[k];
            let avg_power = if total > SimDuration::ZERO {
                batch.uniq_energy[u] / total.as_secs_f64()
            } else {
                0.0
            };
            let tau_bits = batch.thermal[k].time_constant_secs().to_bits();
            let alpha = match batch
                .alpha_memo
                .iter()
                .find(|(d, t, _)| *d == total && *t == tau_bits)
            {
                Some(&(_, _, a)) => a,
                None => {
                    let a = batch.thermal[k].decay_alpha(total);
                    batch.alpha_memo.push((total, tau_bits, a));
                    a
                }
            };
            batch.thermal[k].advance_with_alpha(avg_power, alpha);
            batch.energy[k].record_active(avg_power, total);
            if let Some(b) = batch.battery[k].as_mut() {
                b.drain(avg_power, total);
            }
            batch.latency.push(total);
            batch.joules.push(batch.energy[k].total_joules());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::BatterySpec;
    use crate::plan::PlanStage;
    use crate::thermal::ThermalSpec;

    /// A hand-lowered two-stage plan: compute-bound, memory-only and
    /// mixed ops, so every roofline branch runs.
    fn tiny_plan() -> QueryPlan {
        QueryPlan {
            ops: vec![
                PlanOp { flops: 2.0e9, denom: 1.0e12, memory_secs: 1.0e-4, sched_secs: 1.0e-6 },
                PlanOp { flops: 0.0, denom: 1.0e12, memory_secs: 5.0e-4, sched_secs: 1.0e-6 },
                PlanOp { flops: 7.3e9, denom: 2.0e12, memory_secs: 2.0e-5, sched_secs: 2.0e-6 },
                PlanOp { flops: 9.1e8, denom: 5.0e11, memory_secs: 3.0e-4, sched_secs: 1.5e-6 },
                PlanOp { flops: 4.4e9, denom: 2.0e12, memory_secs: 1.0e-5, sched_secs: 2.0e-6 },
            ],
            stages: vec![
                PlanStage { ops_end: 2, engine: EngineId(0), power_w: 2.5 },
                PlanStage { ops_end: 5, engine: EngineId(1), power_w: 4.0 },
            ],
            transfer: SimDuration::from_micros(120),
            overhead: SimDuration::from_micros(300),
            launch: SimDuration::from_micros(150),
            sync: SimDuration::from_micros(50),
        }
    }

    /// Heterogeneous lane states: ambients spread across the throttle
    /// ramp plus one low-battery lane, so dispatch frequencies differ
    /// between lanes and evolve over the run.
    fn lane_states(k: usize) -> Vec<SocState> {
        let ambients = [22.0, 55.0, 70.0, 78.0, 84.0, 95.0, 40.0, 66.0];
        (0..k)
            .map(|i| SocState {
                thermal: ThermalState::new(ThermalSpec::default(), ambients[i % ambients.len()]),
                energy: EnergyMeter::new(0.4),
                battery: if i % 3 == 2 {
                    Some(BatteryState::new(BatterySpec::default(), 0.10))
                } else {
                    None
                },
                dvfs: DvfsLadder::default(),
            })
            .collect()
    }

    fn assert_results_bit_identical(a: &QueryResult, b: &QueryResult) {
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.freq_factor.to_bits(), b.freq_factor.to_bits());
        assert_eq!(a.dvfs_level, b.dvfs_level);
        assert_eq!(a.temperature_c.to_bits(), b.temperature_c.to_bits());
        assert_eq!(a.total_joules.to_bits(), b.total_joules.to_bits());
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let states = lane_states(5);
        let batch = BatchState::gather(&states);
        assert_eq!(batch.lanes(), 5);
        assert_eq!(batch.scatter(), states);
        assert_eq!(batch.lane(3), states[3]);
    }

    #[test]
    fn broadcast_lanes_match_scalar_execute() {
        let plan = Arc::new(tiny_plan());
        for k in [1usize, 3, 4, 8] {
            let states = lane_states(k);
            let bp = BatchPlan::broadcast(Arc::clone(&plan), k);
            let mut batch = BatchState::gather(&states);
            let mut scalar: Vec<SocState> = states.clone();
            for _ in 0..200 {
                let results = bp.execute(&mut batch);
                for (i, state) in scalar.iter_mut().enumerate() {
                    let reference = plan.execute(state);
                    assert_results_bit_identical(&reference, &results[i]);
                }
                assert_eq!(batch.scatter(), scalar, "state trajectories diverged");
            }
        }
    }

    #[test]
    fn identical_lanes_stay_identical_through_dedup() {
        let plan = Arc::new(tiny_plan());
        let states = vec![lane_states(1).remove(0); 6];
        let bp = BatchPlan::broadcast(Arc::clone(&plan), 6);
        let mut batch = BatchState::gather(&states);
        let mut reference_state = states[0].clone();
        for _ in 0..100 {
            let results = bp.execute(&mut batch);
            let reference = plan.execute(&mut reference_state);
            for r in &results {
                assert_results_bit_identical(&reference, r);
            }
        }
        assert!(batch.scatter().iter().all(|s| *s == reference_state));
    }

    #[test]
    fn fast_path_matches_full_execute() {
        let plan = Arc::new(tiny_plan());
        let k = 7;
        let states = lane_states(k);
        let bp = BatchPlan::broadcast(Arc::clone(&plan), k);
        let mut full = BatchState::gather(&states);
        let mut fast = BatchState::gather(&states);
        for _ in 0..150 {
            let results = bp.execute(&mut full);
            let latencies = bp.execute_latencies(&mut fast).to_vec();
            for (r, l) in results.iter().zip(&latencies) {
                assert_eq!(r.latency, *l);
            }
            assert_eq!(full.scatter(), fast.scatter());
        }
    }

    #[test]
    fn retired_lanes_leave_survivors_untouched() {
        let plan = Arc::new(tiny_plan());
        let k = 5;
        let states = lane_states(k);
        let mut bp = BatchPlan::broadcast(Arc::clone(&plan), k);
        let mut batch = BatchState::gather(&states);
        let mut scalar: Vec<SocState> = states.clone();
        for _ in 0..40 {
            let _ = bp.execute(&mut batch);
            for state in scalar.iter_mut() {
                let _ = plan.execute(state);
            }
        }
        // Retire the middle lane; its final state matches its scalar twin.
        let retired = batch.remove_lane(2);
        bp.remove_lane(2);
        assert_eq!(retired, scalar.remove(2));
        // Survivors keep matching their scalar twins.
        for _ in 0..40 {
            let results = bp.execute(&mut batch);
            for (i, state) in scalar.iter_mut().enumerate() {
                let reference = plan.execute(state);
                assert_results_bit_identical(&reference, &results[i]);
            }
        }
    }

    #[test]
    fn lane_plan_reproduces_broadcast_lane() {
        let plan = Arc::new(tiny_plan());
        let bp = BatchPlan::broadcast(Arc::clone(&plan), 3);
        let mut a = lane_states(1).remove(0);
        let mut b = a.clone();
        let ra = plan.execute(&mut a);
        let rb = bp.lane_plan(1).execute(&mut b);
        assert_results_bit_identical(&ra, &rb);
        assert_eq!(a, b);
    }

    #[test]
    fn refill_matches_fresh_gather_and_clears_telemetry() {
        let plan = Arc::new(tiny_plan());
        let bp = BatchPlan::broadcast(Arc::clone(&plan), 4);
        let first = lane_states(4);
        let mut batch = BatchState::gather(&first);
        for _ in 0..10 {
            let _ = bp.execute_latencies(&mut batch);
        }
        assert!(!batch.last_latencies().is_empty());
        assert!(batch.last_distinct_frequencies() > 0);

        // Refill with a different wave: indistinguishable from a fresh
        // gather, with the previous wave's telemetry cleared.
        let second: Vec<SocState> = lane_states(8).split_off(4);
        batch.refill(&second);
        assert_eq!(batch.scatter(), BatchState::gather(&second).scatter());
        assert!(batch.last_latencies().is_empty());
        assert!(batch.last_freq_factors().is_empty());
        assert_eq!(batch.last_distinct_frequencies(), 0);
        assert!(batch.last_total_joules().is_empty());

        // Trajectories after a refill match a fresh gather bit-for-bit,
        // including a lane-count change (4 → 3).
        let third = lane_states(3);
        let bp3 = BatchPlan::broadcast(Arc::clone(&plan), 3);
        batch.refill(&third);
        let mut fresh = BatchState::gather(&third);
        for _ in 0..25 {
            let a = bp3.execute_latencies(&mut batch).to_vec();
            let b = bp3.execute_latencies(&mut fresh).to_vec();
            assert_eq!(a, b);
        }
        assert_eq!(batch.scatter(), fresh.scatter());
    }

    #[test]
    fn refill_lanes_matches_from_lanes() {
        let plan = Arc::new(tiny_plan());
        let mut bp = BatchPlan::broadcast(Arc::clone(&plan), 2);
        let lanes = [
            (SimDuration::from_micros(10), SimDuration::from_micros(20), SimDuration::from_micros(12), SimDuration::from_micros(8)),
            (SimDuration::from_micros(30), SimDuration::from_micros(40), SimDuration::from_micros(25), SimDuration::from_micros(15)),
            (SimDuration::from_micros(50), SimDuration::from_micros(60), SimDuration::from_micros(33), SimDuration::from_micros(27)),
        ];
        bp.refill_lanes(&plan, lanes.iter().copied());
        assert_eq!(bp.lanes(), 3);
        let reference = BatchPlan::from_lanes(
            Arc::clone(&plan),
            lanes.iter().map(|l| l.0).collect(),
            lanes.iter().map(|l| l.1).collect(),
            lanes.iter().map(|l| l.2).collect(),
            lanes.iter().map(|l| l.3).collect(),
        );
        let states = lane_states(3);
        let mut a = BatchState::gather(&states);
        let mut b = BatchState::gather(&states);
        for _ in 0..20 {
            assert_eq!(bp.execute_latencies(&mut a).to_vec(), reference.execute_latencies(&mut b).to_vec());
        }
        assert_eq!(a.scatter(), b.scatter());
    }

    #[test]
    #[should_panic(expected = "share the sweep plan's op arrays")]
    fn refill_lanes_rejects_foreign_plan() {
        let mut bp = BatchPlan::broadcast(Arc::new(tiny_plan()), 2);
        let other = Arc::new(tiny_plan());
        bp.refill_lanes(
            &other,
            std::iter::once((SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO)),
        );
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn broadcast_rejects_zero_lanes() {
        let _ = BatchPlan::broadcast(Arc::new(tiny_plan()), 0);
    }

    #[test]
    #[should_panic(expected = "one lane per plan lane")]
    fn lane_count_mismatch_panics() {
        let bp = BatchPlan::broadcast(Arc::new(tiny_plan()), 3);
        let mut batch = BatchState::gather(&lane_states(2));
        let _ = bp.execute(&mut batch);
    }
}
