//! Discrete DVFS operating points.
//!
//! Real governors do not scale frequency continuously: they step through a
//! ladder of voltage/frequency operating points (OPPs). The thermal
//! governor's continuous target is snapped *down* to the nearest available
//! point — which is why throttling on real phones shows up as visible
//! latency plateaus rather than smooth drift.

use serde::{Deserialize, Serialize};

/// A ladder of frequency factors, descending from 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    factors: Vec<f64>,
}

impl Default for DvfsLadder {
    /// A typical six-point mobile ladder.
    fn default() -> Self {
        DvfsLadder::new(vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.45])
    }
}

impl DvfsLadder {
    /// Creates a ladder from descending frequency factors.
    ///
    /// # Panics
    ///
    /// Panics if empty, unsorted (must strictly descend), or any factor is
    /// outside `(0, 1]`.
    #[must_use]
    pub fn new(factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "ladder needs at least one point");
        assert!(
            factors.windows(2).all(|w| w[0] > w[1]),
            "ladder must strictly descend"
        );
        assert!(factors.iter().all(|&f| f > 0.0 && f <= 1.0));
        DvfsLadder { factors }
    }

    /// The operating points, descending.
    #[must_use]
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// In-place copy that reuses this ladder's point buffer — the batched
    /// executor's per-wave lane refill path, where `*self = other.clone()`
    /// would reallocate every wave.
    pub(crate) fn copy_from(&mut self, other: &DvfsLadder) {
        self.factors.clone_from(&other.factors);
    }

    /// Snaps a continuous governor target to the highest OPP that does not
    /// exceed it; saturates at the lowest point.
    #[must_use]
    pub fn snap(&self, target: f64) -> f64 {
        self.factors[self.level_of(target)]
    }

    /// The ladder index [`snap`](DvfsLadder::snap) selects for `target`
    /// (0 = fastest point; `len() - 1` = deepest throttle). This is the
    /// "DVFS level" run traces report per query dispatch.
    #[must_use]
    pub fn level_of(&self, target: f64) -> usize {
        self.factors
            .iter()
            .position(|&f| f <= target + 1e-12)
            .unwrap_or(self.factors.len() - 1)
    }

    /// Number of operating points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Ladders are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn snap_at_full_speed() {
        let l = DvfsLadder::default();
        assert_eq!(l.snap(1.0), 1.0);
        assert_eq!(l.snap(0.99), 0.9);
    }

    #[test]
    fn snap_between_points_goes_down() {
        let l = DvfsLadder::default();
        assert_eq!(l.snap(0.85), 0.8);
        assert_eq!(l.snap(0.70), 0.7);
        assert_eq!(l.snap(0.65), 0.6);
    }

    #[test]
    fn snap_saturates_at_floor() {
        let l = DvfsLadder::default();
        assert_eq!(l.snap(0.1), 0.45);
        assert_eq!(l.snap(0.0), 0.45);
    }

    #[test]
    #[should_panic(expected = "strictly descend")]
    fn unsorted_rejected() {
        let _ = DvfsLadder::new(vec![1.0, 0.5, 0.8]);
    }

    proptest! {
        #[test]
        fn snap_never_exceeds_target_above_floor(target in 0.45f64..1.0) {
            let l = DvfsLadder::default();
            let snapped = l.snap(target);
            prop_assert!(snapped <= target + 1e-9);
            prop_assert!(l.factors().contains(&snapped));
        }

        #[test]
        fn snap_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let l = DvfsLadder::default();
            if a <= b {
                prop_assert!(l.snap(a) <= l.snap(b));
            }
        }
    }
}
