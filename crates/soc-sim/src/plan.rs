//! Compiled query plans: per-query graph traversal hoisted to compile time.
//!
//! Single-stream runs issue thousands of queries per benchmark cell, and
//! the only inputs that change between two queries of the same deployment
//! are the DVFS frequency factor and the thermal state. Everything else —
//! schedule validation, engine-support checks, `cross_engine_bytes`,
//! per-op roofline denominators, launch/sync/transfer/query overheads and
//! per-stage power terms — is a pure function of `(soc, graph, schedule)`
//! and is lowered **once** here, into flat arrays the hot loop streams
//! through.
//!
//! Two plan kinds mirror the executor's two entry points:
//! - [`QueryPlan`] for single-stream queries ([`crate::executor::run_query`]),
//! - [`OfflinePlan`] for batched multi-stream runs
//!   ([`crate::executor::run_offline`]).

use crate::engine::EngineId;
use crate::executor::{OfflineResult, QueryBreakdown, QueryResult};
use crate::plan_batch::BatchPlan;
use crate::schedule::Schedule;
use crate::soc::{Soc, SocState};
use crate::time::SimDuration;
use nn_graph::Graph;
use std::sync::Arc;

/// One lowered graph node: everything the roofline model needs, with all
/// graph/engine lookups already resolved. Crate-visible so the batched
/// lockstep executor ([`crate::plan_batch`]) can stream the same arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanOp {
    /// Node FLOPs as `f64` (0.0 for memory-only ops).
    pub(crate) flops: f64,
    /// Roofline denominator `peak_ops(dtype) × efficiency(class)`; the hot
    /// loop divides by `denom * freq` so the operand order matches the
    /// unplanned executor bit-for-bit.
    pub(crate) denom: f64,
    /// Memory-bound time (seconds) — frequency-independent.
    pub(crate) memory_secs: f64,
    /// Per-op scheduling cost (seconds) — frequency-independent.
    pub(crate) sched_secs: f64,
}

/// One lowered stage: a half-open op range plus the engine-level terms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanStage {
    /// End of this stage's range in [`QueryPlan::ops`] (the start is the
    /// previous stage's end).
    pub(crate) ops_end: usize,
    /// Engine this stage occupies.
    pub(crate) engine: EngineId,
    /// Active power of that engine (watts) — weight for the energy term.
    pub(crate) power_w: f64,
}

/// A compiled single-stream query: `(soc, graph, schedule)` lowered to
/// flat arrays so per-query execution is a tight roofline loop.
///
/// # Bit-identity contract
///
/// For any sequence of queries, [`QueryPlan::execute`] produces results
/// **bit-identical** to calling [`crate::executor::run_query`] with the
/// same `(soc, graph, schedule)` against the same evolving [`SocState`]:
/// every `f64` in the [`QueryResult`] (latency, breakdown, energy, DVFS
/// trajectory, temperatures) matches to 0 ULPs. The lowering preserves the
/// executor's exact operand order (`flops / (denom * freq)` where
/// `denom = peak_ops × efficiency`) and addition order (query overhead,
/// then per stage: first-launch overhead, sync overhead, transfer,
/// per-op `compute.max(memory) + sched`). The golden suite locks this
/// contract across all v1.0 cells; `tests/plan_equivalence.rs` fuzzes it
/// over random graphs, schedules, frequencies and thermal states.
///
/// Validation (schedule coverage/order, engine support) happens once in
/// [`QueryPlan::new`] with the same panics as the unplanned path; the hot
/// loop retains only `debug_assert!`-level checks.
///
/// # Examples
///
/// ```
/// use soc_sim::{catalog::ChipId, plan::QueryPlan, schedule::Schedule};
/// use nn_graph::{graph::retype, models::ModelId, DataType};
///
/// let soc = ChipId::Snapdragon888.build();
/// let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::I8);
/// let schedule = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
/// let plan = QueryPlan::new(&soc, &graph, &schedule);
/// let mut state = soc.new_state(22.0);
/// let result = plan.execute(&mut state);
/// assert!(result.latency.as_millis_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Flat per-op roofline terms, concatenated in stage order.
    pub(crate) ops: Vec<PlanOp>,
    /// Per-stage op ranges + engine terms, in schedule order.
    pub(crate) stages: Vec<PlanStage>,
    /// Precomputed inter-engine transfer time.
    pub(crate) transfer: SimDuration,
    /// Precomputed total overhead (query + launch + sync, accumulated in
    /// the executor's historical order before rounding).
    pub(crate) overhead: SimDuration,
    /// The per-engine runtime-launch share of `overhead`.
    pub(crate) launch: SimDuration,
    /// The per-stage framework-synchronization share of `overhead`.
    pub(crate) sync: SimDuration,
}

impl QueryPlan {
    /// Compiles a plan: validates the schedule, checks engine support and
    /// lowers every stage. All per-query-invariant work happens here.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid for the graph or places work on
    /// an engine that cannot execute it — the same panics (and messages)
    /// [`crate::executor::run_query`] raises.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        schedule
            .validate(graph)
            .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
        for stage in &schedule.stages {
            let engine = soc.engine(stage.engine);
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                if node.cost.flops > 0 {
                    assert!(
                        engine.supports(node.class(), stage.dtype),
                        "{} cannot execute {} ({}) at {}",
                        engine.name,
                        node.name,
                        node.class(),
                        stage.dtype
                    );
                }
            }
        }

        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut ops = Vec::with_capacity(graph.len());
        let mut stages = Vec::with_capacity(schedule.stages.len());
        let mut transfer = 0.0f64;
        let mut overhead = 0.0f64;
        let mut launch_secs = 0.0f64;
        let mut sync_secs = 0.0f64;

        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        overhead += schedule.query_overhead_us * 1e-6;
        for (si, stage) in schedule.stages.iter().enumerate() {
            let engine = soc.engine(stage.engine);
            // Launch (runtime init) is paid once per engine per query; the
            // per-stage framework synchronization on every partition.
            if !launched[stage.engine.0] {
                overhead += engine.launch_overhead_us * 1e-6;
                launch_secs += engine.launch_overhead_us * 1e-6;
                launched[stage.engine.0] = true;
            }
            overhead += stage.sync_overhead_us * 1e-6;
            sync_secs += stage.sync_overhead_us * 1e-6;
            if cross_bytes[si] > 0 {
                transfer += soc.interconnect.transfer_secs(cross_bytes[si]);
            }
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                ops.push(PlanOp {
                    flops: node.cost.flops as f64,
                    denom: engine.peak_ops(stage.dtype) * engine.efficiency(node.class()),
                    memory_secs: node.cost.total_bytes(stage.dtype) as f64
                        / (engine.mem_bandwidth_gbps * 1e9),
                    sched_secs: engine.per_op_overhead_us * 1e-6,
                });
            }
            stages.push(PlanStage {
                ops_end: ops.len(),
                engine: stage.engine,
                power_w: engine.active_power_w,
            });
        }

        QueryPlan {
            ops,
            stages,
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        }
    }

    /// Number of lowered stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of lowered ops across all stages.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Executes one query against the plan, advancing the SoC state —
    /// the single-stream hot loop. Allocates nothing beyond the returned
    /// breakdown. See the type-level docs for the bit-identity contract.
    #[must_use]
    pub fn execute(&self, state: &mut SocState) -> QueryResult {
        self.execute_inner(state, None)
    }

    /// [`Self::execute`] with a steady-state fast-forward memo.
    ///
    /// Every `f64` the per-op roofline loop produces is a pure function of
    /// the plan and the query's DVFS frequency factor: the loop reads
    /// nothing else from [`SocState`]. Once a query has run at a given
    /// `freq.to_bits()`, any later query at the same operating point can
    /// replay the recorded per-stage durations, energy terms and total
    /// latency on the accumulator — bit-identical by construction (the
    /// memo stores the *results* of the original operand and addition
    /// order) but O(1) in the op count. Thermal, energy and battery
    /// bookkeeping still advances per query, so trajectories (and
    /// therefore throttle transitions, which change `freq` and miss the
    /// memo) are untouched.
    ///
    /// This subsumes exact-state repetition detection: a repeated
    /// (freq bits, temperature bits, cycle position) triple necessarily
    /// repeats the frequency bits, so the memo is already warm by the
    /// time the full executor state revisits a fixed point.
    #[must_use]
    pub fn execute_memo(&self, state: &mut SocState, memo: &mut ExecMemo) -> QueryResult {
        self.execute_inner(state, Some(memo))
    }

    fn execute_inner(&self, state: &mut SocState, memo: Option<&mut ExecMemo>) -> QueryResult {
        let freq = state.freq_factor();
        let dvfs_level = state.dvfs_level();
        let temperature_c = state.thermal.temperature_c();
        debug_assert!(
            freq.is_finite() && freq > 0.0,
            "DVFS frequency factor must be positive, got {freq}"
        );
        debug_assert!(
            self.stages.last().map_or(self.ops.is_empty(), |s| s.ops_end == self.ops.len()),
            "plan op ranges must tile the op array"
        );

        let steady = match memo {
            Some(memo) => memo.lookup_or_record(self, freq),
            None => SteadyState::from_plan(self, freq),
        };
        let SteadyState { stage_compute, energy_terms, compute_total } = steady;
        let stage_engines: Vec<EngineId> = self.stages.iter().map(|s| s.engine).collect();

        let total = compute_total + self.transfer + self.overhead;

        // Thermal/energy bookkeeping over the query duration.
        let avg_power = if total > SimDuration::ZERO {
            energy_terms / total.as_secs_f64()
        } else {
            0.0
        };
        state.thermal.advance(avg_power, total);
        state.energy.record_active(avg_power, total);
        if let Some(battery) = state.battery.as_mut() {
            battery.drain(avg_power, total);
        }

        QueryResult {
            latency: total,
            freq_factor: freq,
            dvfs_level,
            temperature_c,
            total_joules: state.energy.total_joules(),
            breakdown: QueryBreakdown {
                stage_compute,
                stage_engines,
                transfer: self.transfer,
                overhead: self.overhead,
                launch: self.launch,
                sync: self.sync,
            },
        }
    }
}

/// The frequency-dependent slice of one executed query: everything the
/// per-op roofline loop produces before the (state-dependent) thermal and
/// energy bookkeeping.
#[derive(Debug, Clone)]
struct SteadyState {
    stage_compute: Vec<SimDuration>,
    energy_terms: f64,
    compute_total: SimDuration,
}

impl SteadyState {
    /// The full O(ops) roofline walk — the exact loop `execute` has always
    /// run, factored so the memoized path can replay its recorded output.
    fn from_plan(plan: &QueryPlan, freq: f64) -> Self {
        let mut stage_compute = Vec::with_capacity(plan.stages.len());
        let mut energy_terms = 0.0f64;
        let mut compute_total = SimDuration::ZERO;
        let mut op_start = 0usize;
        for stage in &plan.stages {
            let mut t = 0.0f64;
            for op in &plan.ops[op_start..stage.ops_end] {
                let compute = if op.flops == 0.0 {
                    0.0
                } else {
                    op.flops / (op.denom * freq)
                };
                t += compute.max(op.memory_secs) + op.sched_secs;
            }
            op_start = stage.ops_end;
            energy_terms += stage.power_w * t;
            let d = SimDuration::from_secs_f64(t);
            compute_total += d;
            stage_compute.push(d);
        }
        SteadyState { stage_compute, energy_terms, compute_total }
    }
}

/// Steady-state fast-forward memo for [`QueryPlan::execute_memo`], keyed
/// by the exact bits of the query's DVFS frequency factor.
///
/// Entries are kept **sorted by frequency bits** so lookups are a binary
/// search, and the number of retained operating points is bounded: past
/// [`ExecMemo::DEFAULT_CAPACITY`] the least-recently-used entry is
/// evicted (a later query at that frequency simply re-records the walk —
/// correctness never depends on residency). Real DVFS ladders have a
/// handful of points, so the default bound never evicts in practice; it
/// exists so adversarial frequency streams (battery caps flapping across
/// fine-grained ladders, fuzzers) cannot grow the memo without limit.
/// The memo belongs to the caller (one per benchmark run), never to the
/// plan: plans are shared across threads and runs.
#[derive(Debug, Clone)]
pub struct ExecMemo {
    /// `(freq bits, recorded walk, last-use stamp)`, sorted by bits.
    entries: Vec<(u64, SteadyState, u64)>,
    hits: u64,
    evictions: u64,
    clock: u64,
    capacity: usize,
}

impl Default for ExecMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecMemo {
    /// Default bound on retained operating points — comfortably above any
    /// catalog DVFS ladder (the deepest ships six points).
    pub const DEFAULT_CAPACITY: usize = 32;

    /// An empty memo with the default operating-point bound; the first
    /// query at each operating point pays the full roofline walk.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty memo retaining at most `capacity` operating points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "memo needs room for at least one operating point");
        ExecMemo { entries: Vec::new(), hits: 0, evictions: 0, clock: 0, capacity }
    }

    /// Queries replayed from the memo so far (excludes the recording
    /// walks).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct DVFS operating points currently resident (≤ capacity).
    #[must_use]
    pub fn operating_points(&self) -> usize {
        self.entries.len()
    }

    /// Recorded walks discarded to stay within the operating-point bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn lookup_or_record(&mut self, plan: &QueryPlan, freq: f64) -> SteadyState {
        let bits = freq.to_bits();
        self.clock += 1;
        match self.entries.binary_search_by_key(&bits, |e| e.0) {
            Ok(i) => {
                self.hits += 1;
                self.entries[i].2 = self.clock;
                self.entries[i].1.clone()
            }
            Err(mut i) => {
                let fresh = SteadyState::from_plan(plan, freq);
                if self.entries.len() >= self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.2)
                        .map(|(j, _)| j)
                        .expect("a full memo has a least-recently-used entry");
                    self.entries.remove(lru);
                    self.evictions += 1;
                    // Removing below the insertion point shifts it left.
                    if lru < i {
                        i -= 1;
                    }
                }
                self.entries.insert(i, (bits, fresh.clone(), self.clock));
                fresh
            }
        }
    }
}

/// One offline stream lowered to the fluid model's per-op terms.
///
/// The compute term is pre-divided by the roofline denominator
/// (`c = flops / (peak_ops × efficiency)`), matching the offline
/// estimator's historical arithmetic — which differs in rounding from the
/// single-stream path's `flops / (denom * freq)` and must stay distinct.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// `(compute_secs_at_full_freq, memory_secs, scheduling_secs)` per op.
    ops: Vec<(f64, f64, f64)>,
    /// Per-sample overhead at full batch amortization (seconds).
    overhead_secs: f64,
    /// Transfers between engines (seconds, frequency independent).
    transfer_secs: f64,
    /// Mean active power of the engines this stream occupies (watts).
    power_w: f64,
}

impl StreamPlan {
    /// Lowers one stream. Unlike [`QueryPlan::new`] this asserts nothing
    /// beyond engine-id bounds: the estimator historically tolerates
    /// unsupported placements (it is used to *cost* candidate placements,
    /// including bad ones).
    #[must_use]
    pub fn lower(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut ops = Vec::with_capacity(graph.len());
        let mut overhead_secs = 0.0;
        let mut transfer_secs = 0.0;
        let mut power_time = 0.0;
        let mut total_time = 0.0;

        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        overhead_secs += schedule.query_overhead_us * 1e-6;
        for (si, stage) in schedule.stages.iter().enumerate() {
            let engine = soc.engine(stage.engine);
            if !launched[stage.engine.0] {
                overhead_secs += engine.launch_overhead_us * 1e-6;
                launched[stage.engine.0] = true;
            }
            overhead_secs += stage.sync_overhead_us * 1e-6;
            if cross_bytes[si] > 0 {
                transfer_secs += soc.interconnect.transfer_secs(cross_bytes[si]);
            }
            let mut stage_time = 0.0;
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                let compute = if node.cost.flops == 0 {
                    0.0
                } else {
                    node.cost.flops as f64
                        / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()))
                };
                let memory = node.cost.total_bytes(stage.dtype) as f64
                    / (engine.mem_bandwidth_gbps * 1e9);
                // Per-op scheduling cost is frequency-independent.
                ops.push((compute, memory, engine.per_op_overhead_us * 1e-6));
                stage_time += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
            }
            power_time += engine.active_power_w * stage_time;
            total_time += stage_time;
        }
        let power_w = if total_time > 0.0 { power_time / total_time } else { 0.0 };
        StreamPlan { ops, overhead_secs, transfer_secs, power_w }
    }

    /// Seconds per sample at DVFS factor `freq` with overheads amortized
    /// over `batch` samples.
    #[must_use]
    pub fn sample_secs(&self, freq: f64, batch: usize) -> f64 {
        let ops: f64 = self.ops.iter().map(|&(c, m, s)| (c / freq).max(m) + s).sum();
        ops + self.transfer_secs + self.overhead_secs / batch.max(1) as f64
    }

    /// Mean active power of the engines this stream occupies (watts).
    #[must_use]
    pub fn power_w(&self) -> f64 {
        self.power_w
    }

    /// [`Self::sample_secs`] through a shared [`RateMemo`]: the first
    /// lookup at a given `freq.to_bits()` pays the per-op sum and records
    /// it; every later lookup — another 250 ms chunk at the same
    /// operating point, another batch lane in lockstep — replays the
    /// recorded value, bit-identical by construction.
    ///
    /// One memo is scoped to exactly one `(stream plan, batch)` pair;
    /// callers evaluating several streams or batch sizes keep one memo
    /// per pair (as [`OfflinePlan::execute`] does per stream).
    #[must_use]
    pub fn sample_secs_memo(&self, freq: f64, batch: usize, memo: &mut RateMemo) -> f64 {
        let bits = freq.to_bits();
        match memo.entries.binary_search_by_key(&bits, |e| e.0) {
            Ok(i) => {
                memo.hits += 1;
                memo.entries[i].1
            }
            Err(i) => {
                let secs = self.sample_secs(freq, batch);
                memo.entries.insert(i, (bits, secs));
                secs
            }
        }
    }
}

/// Per-operating-point memo for [`StreamPlan::sample_secs_memo`], keyed
/// by the exact bits of the DVFS frequency factor and sorted for binary
/// search.
///
/// Historically each caller of the offline estimator re-derived the
/// per-sample cost for identical frequency bits; sharing one memo across
/// the callers that evaluate the same stream — batch lanes, successive
/// offline chunks — collapses those to one walk per operating point.
#[derive(Debug, Clone, Default)]
pub struct RateMemo {
    /// `(freq bits, sample_secs)`, sorted by bits.
    entries: Vec<(u64, f64)>,
    hits: u64,
}

impl RateMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from the memo (excludes the recording walks).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct operating points recorded.
    #[must_use]
    pub fn operating_points(&self) -> usize {
        self.entries.len()
    }
}

/// A single-knob change to an already-lowered plan, for parameter sweeps.
///
/// Each variant names one scalar the ablation studies sweep. Everything
/// else about the `(soc, graph, schedule)` triple — placement, op
/// rooflines, power terms — is unaffected by these knobs, so
/// [`SweepPlan`] can re-lower just the overhead/transfer splits in
/// O(stages) instead of re-validating the schedule and re-walking the
/// graph.
///
/// The two remaining swept knobs need no delta at all: the offline batch
/// size is already an argument of [`OfflinePlan::execute`], and DVFS
/// frequency / thermal parameters are runtime [`SocState`], read fresh on
/// every [`QueryPlan::execute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanDelta {
    /// Set the framework synchronization overhead of **every** stage to
    /// this value (µs) — the schedule-wide knob the partition planner
    /// annotates uniformly onto each stage.
    SyncOverheadUs(f64),
    /// Set the per-query fixed overhead (µs).
    QueryOverheadUs(f64),
    /// Set the interconnect's effective transfer bandwidth (GB/s); the
    /// per-handoff latency is unchanged.
    InterconnectGbps(f64),
}

/// A `(soc, graph, schedule)` triple lowered once, with enough of the
/// lowering inputs cached that any [`PlanDelta`] re-lowers in O(stages).
///
/// # Bit-identity contract
///
/// [`SweepPlan::relower_query`] (resp. [`relower_stream`]) returns a plan
/// bit-identical — every `f64`, 0 ULPs — to a fresh [`QueryPlan::new`]
/// (resp. [`StreamPlan::lower`]) against the knob-modified schedule or
/// SoC. The re-lowering replays the original accumulation loops (query
/// overhead, then per stage: first-launch overhead, sync, transfer) with
/// identical operand order; only the swept scalar changes.
/// `tests/plan_equivalence.rs` fuzzes this over random graphs, schedules
/// and knob values.
///
/// [`relower_stream`]: Self::relower_stream
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Fully-lowered baseline single-stream plan, shared (`Arc`) so
    /// batch re-lowerings hand their lanes the op arrays without
    /// copying them.
    query: Arc<QueryPlan>,
    /// Fully-lowered baseline estimator profile.
    stream: StreamPlan,
    /// The schedule-wide per-query overhead knob (µs).
    query_overhead_us: f64,
    /// Per stage: runtime-launch overhead charged at this stage (µs);
    /// `0.0` when the stage's engine already launched earlier in the
    /// schedule. Adding the zero is bit-identical to skipping it (the
    /// overhead accumulators never go negative).
    launch_us: Vec<f64>,
    /// Per stage: framework synchronization overhead (µs).
    sync_us: Vec<f64>,
    /// Per stage: bytes crossing the interconnect *into* this stage.
    cross_bytes: Vec<u64>,
    /// The SoC's interconnect (bandwidth knob + fixed handoff latency).
    interconnect: crate::soc::InterconnectSpec,
}

impl SweepPlan {
    /// Lowers the triple once, caching the per-stage lowering inputs.
    ///
    /// # Panics
    ///
    /// Panics exactly as [`QueryPlan::new`] does: on an invalid schedule
    /// or an unsupported placement.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        let query = Arc::new(QueryPlan::new(soc, graph, schedule));
        let stream = StreamPlan::lower(soc, graph, schedule);
        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        let mut launch_us = Vec::with_capacity(schedule.stages.len());
        let mut sync_us = Vec::with_capacity(schedule.stages.len());
        for stage in &schedule.stages {
            let engine = soc.engine(stage.engine);
            launch_us.push(if launched[stage.engine.0] {
                0.0
            } else {
                launched[stage.engine.0] = true;
                engine.launch_overhead_us
            });
            sync_us.push(stage.sync_overhead_us);
        }
        SweepPlan {
            query,
            stream,
            query_overhead_us: schedule.query_overhead_us,
            launch_us,
            sync_us,
            cross_bytes,
            interconnect: soc.interconnect,
        }
    }

    /// The baseline (no-delta) single-stream plan.
    #[must_use]
    pub fn query_plan(&self) -> &QueryPlan {
        &self.query
    }

    /// The baseline (no-delta) estimator profile.
    #[must_use]
    pub fn stream_plan(&self) -> &StreamPlan {
        &self.stream
    }

    /// The schedule-wide per-query overhead knob (µs) the plan was
    /// lowered with — the baseline that
    /// [`PlanDelta::QueryOverheadUs`] perturbations replace, so callers
    /// modelling *additional* per-query load pass `base + extra`.
    #[must_use]
    pub fn query_overhead_us(&self) -> f64 {
        self.query_overhead_us
    }

    /// Replays the overhead/transfer accumulation with `delta` applied.
    /// Returns `(transfer, overhead, launch, sync)` in seconds, summed in
    /// the exact order [`QueryPlan::new`] and [`StreamPlan::lower`] use.
    fn relower_overheads(&self, delta: PlanDelta) -> (f64, f64, f64, f64) {
        let query_overhead_us = match delta {
            PlanDelta::QueryOverheadUs(v) => v,
            _ => self.query_overhead_us,
        };
        let interconnect = match delta {
            PlanDelta::InterconnectGbps(v) => crate::soc::InterconnectSpec {
                transfer_gbps: v,
                handoff_latency_us: self.interconnect.handoff_latency_us,
            },
            _ => self.interconnect,
        };
        let mut transfer = 0.0f64;
        let mut overhead = 0.0f64;
        let mut launch_secs = 0.0f64;
        let mut sync_secs = 0.0f64;
        overhead += query_overhead_us * 1e-6;
        for si in 0..self.sync_us.len() {
            let sync_us = match delta {
                PlanDelta::SyncOverheadUs(v) => v,
                _ => self.sync_us[si],
            };
            overhead += self.launch_us[si] * 1e-6;
            launch_secs += self.launch_us[si] * 1e-6;
            overhead += sync_us * 1e-6;
            sync_secs += sync_us * 1e-6;
            if self.cross_bytes[si] > 0 {
                transfer += interconnect.transfer_secs(self.cross_bytes[si]);
            }
        }
        (transfer, overhead, launch_secs, sync_secs)
    }

    /// Re-lowers the single-stream plan under `delta` — O(stages), no
    /// schedule re-validation, no graph walk. Bit-identical to a fresh
    /// [`QueryPlan::new`] against the knob-modified inputs.
    #[must_use]
    pub fn relower_query(&self, delta: PlanDelta) -> QueryPlan {
        let (transfer, overhead, launch_secs, sync_secs) = self.relower_overheads(delta);
        QueryPlan {
            ops: self.query.ops.clone(),
            stages: self.query.stages.clone(),
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        }
    }

    /// Re-lowers the estimator profile under `delta` — the [`StreamPlan`]
    /// analogue of [`Self::relower_query`].
    #[must_use]
    pub fn relower_stream(&self, delta: PlanDelta) -> StreamPlan {
        let (transfer_secs, overhead_secs, _, _) = self.relower_overheads(delta);
        StreamPlan {
            ops: self.stream.ops.clone(),
            overhead_secs,
            transfer_secs,
            power_w: self.stream.power_w,
        }
    }

    /// [`crate::executor::estimate_query_secs`] under `delta`: the
    /// single-sample, full-frequency latency estimate the backends rank
    /// candidate placements by. The schedule was validated once at
    /// construction.
    #[must_use]
    pub fn estimate_query_secs(&self, delta: PlanDelta) -> f64 {
        self.relower_stream(delta).sample_secs(1.0, 1)
    }

    /// Re-lowers the single-stream plan under **each** delta in `deltas`,
    /// packed as one [`BatchPlan`] lane per knob variant: the ablation /
    /// auto-tuner path evaluates K variants in one pass over the op
    /// arrays. All lanes share the baseline op/stage arrays (no swept
    /// knob touches them); each lane carries its own re-lowered overhead
    /// terms. Lane `k` executes bit-identically to
    /// `self.relower_query(deltas[k]).execute(..)` against the same
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty.
    #[must_use]
    pub fn relower_query_batch(&self, deltas: &[PlanDelta]) -> BatchPlan {
        assert!(!deltas.is_empty(), "batch re-lowering needs at least one delta");
        let mut transfer = Vec::with_capacity(deltas.len());
        let mut overhead = Vec::with_capacity(deltas.len());
        let mut launch = Vec::with_capacity(deltas.len());
        let mut sync = Vec::with_capacity(deltas.len());
        for &delta in deltas {
            let (t, o, l, s) = self.relower_overheads(delta);
            transfer.push(SimDuration::from_secs_f64(t));
            overhead.push(SimDuration::from_secs_f64(o));
            launch.push(SimDuration::from_secs_f64(l));
            sync.push(SimDuration::from_secs_f64(s));
        }
        BatchPlan::from_lanes(Arc::clone(&self.query), transfer, overhead, launch, sync)
    }

    /// [`Self::relower_query_batch`] into an existing batch: clears and
    /// refills `batch`'s per-lane overhead vectors in place, reusing the
    /// shared op arrays — the per-wave path for fleet sweeps, where a
    /// fresh [`BatchPlan`] per wave would pay four vector allocations
    /// each time. The lane count may change between refills.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty or `batch` was not produced by
    /// [`Self::relower_query_batch`] on this same `SweepPlan` (the op
    /// arrays must be the very same `Arc`).
    pub fn relower_query_batch_into(&self, deltas: &[PlanDelta], batch: &mut BatchPlan) {
        assert!(!deltas.is_empty(), "batch re-lowering needs at least one delta");
        batch.refill_lanes(
            &self.query,
            deltas.iter().map(|&delta| {
                let (t, o, l, s) = self.relower_overheads(delta);
                (
                    SimDuration::from_secs_f64(t),
                    SimDuration::from_secs_f64(o),
                    SimDuration::from_secs_f64(l),
                    SimDuration::from_secs_f64(s),
                )
            }),
        );
    }
}

/// Simulation step for the offline loop.
const OFFLINE_CHUNK: SimDuration = SimDuration::from_millis(250);

/// A compiled offline (batched, multi-stream) run: every stream lowered
/// once, with total run power precomputed. [`OfflinePlan::execute`]
/// reproduces [`crate::executor::run_offline`] bit-identically, and
/// memoizes per-stream rates on the chunk's `freq.to_bits()` so
/// steady-state chunks (unthrottled, or parked at one DVFS point) skip
/// re-summing the per-op profiles every 250 ms.
#[derive(Debug, Clone)]
pub struct OfflinePlan {
    /// Lowered per-stream profiles, in stream order.
    streams: Vec<StreamPlan>,
    /// Power of all streams running concurrently plus platform idle (W).
    total_power: f64,
    /// Baseline platform power (watts), excluded from active energy.
    idle_power_w: f64,
}

impl OfflinePlan {
    /// Compiles an offline plan: validates every stream schedule and
    /// lowers it.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any schedule is invalid — the same
    /// panics (and messages) [`crate::executor::run_offline`] raises.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, streams: &[Schedule]) -> Self {
        assert!(!streams.is_empty(), "offline needs at least one stream");
        for s in streams {
            s.validate(graph)
                .unwrap_or_else(|e| panic!("invalid offline schedule: {e}"));
        }
        let streams: Vec<StreamPlan> =
            streams.iter().map(|s| StreamPlan::lower(soc, graph, s)).collect();
        let total_power: f64 =
            streams.iter().map(StreamPlan::power_w).sum::<f64>() + soc.idle_power_w;
        OfflinePlan { streams, total_power, idle_power_w: soc.idle_power_w }
    }

    /// Number of lowered streams.
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Executes `total_samples` across the plan's streams under the fluid
    /// model, advancing thermal/energy state chunk by chunk.
    ///
    /// # Panics
    ///
    /// Panics if `total_samples == 0` or no stream makes progress.
    #[must_use]
    pub fn execute(
        &self,
        state: &mut SocState,
        total_samples: u64,
        batch_size: usize,
    ) -> OfflineResult {
        assert!(total_samples > 0, "offline needs samples");

        let mut remaining = total_samples as f64;
        let mut per_stream = vec![0.0f64; self.streams.len()];
        let mut elapsed = SimDuration::ZERO;
        let mut throttled = SimDuration::ZERO;
        // Per-stream sample costs keyed by the chunk's exact frequency
        // bits, one shared memo per stream: steady-state chunks (and any
        // other caller at the same operating point) replay the recorded
        // per-op sum instead of re-deriving it.
        let mut rate_memos: Vec<RateMemo> = vec![RateMemo::new(); self.streams.len()];

        while remaining > 0.0 {
            let freq = state.freq_factor();
            if freq < 1.0 {
                throttled += OFFLINE_CHUNK;
            }

            let chunk_secs = OFFLINE_CHUNK.as_secs_f64();
            let mut processed_this_chunk = 0.0;
            for (i, stream) in self.streams.iter().enumerate() {
                let rate = 1.0 / stream.sample_secs_memo(freq, batch_size, &mut rate_memos[i]);
                let done = (rate * chunk_secs).min(remaining);
                per_stream[i] += done;
                processed_this_chunk += done;
                remaining -= done;
                if remaining <= 0.0 {
                    break;
                }
            }
            // All streams active concurrently: total power dissipates
            // together.
            state.thermal.advance(self.total_power, OFFLINE_CHUNK);
            state
                .energy
                .record_active(self.total_power - self.idle_power_w, OFFLINE_CHUNK);
            if let Some(battery) = state.battery.as_mut() {
                battery.drain(self.total_power, OFFLINE_CHUNK);
            }
            elapsed += OFFLINE_CHUNK;
            assert!(
                processed_this_chunk > 0.0,
                "offline run stalled: no stream makes progress"
            );
        }

        let fps = total_samples as f64 / elapsed.as_secs_f64();
        OfflineResult {
            duration: elapsed,
            throughput_fps: fps,
            throttled_fraction: throttled.as_secs_f64() / elapsed.as_secs_f64(),
            per_stream_samples: apportion_samples(&per_stream, total_samples),
        }
    }
}

/// Rounds the fluid model's fractional per-stream tallies to integers
/// that account for **every** sample: the returned counts always sum to
/// exactly `total_samples`.
///
/// The fluid-model rounding contract: each stream's tally is rounded to
/// the nearest integer first (preserving the historical per-stream
/// counts whenever they already added up); any residual — nearest
/// rounding can drift by up to ±0.5 per stream — is then settled against
/// the streams with the largest leftover fraction (largest-remainder
/// apportionment, ties broken by stream index), never driving a count
/// negative.
fn apportion_samples(per_stream: &[f64], total_samples: u64) -> Vec<u64> {
    let mut counts: Vec<u64> = per_stream.iter().map(|&s| s.round() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    if assigned == total_samples {
        return counts;
    }
    let mut order: Vec<usize> = (0..counts.len()).collect();
    if assigned < total_samples {
        // Hand the missing samples to the streams that rounded down most.
        order.sort_by(|&a, &b| {
            let ra = per_stream[a] - counts[a] as f64;
            let rb = per_stream[b] - counts[b] as f64;
            rb.partial_cmp(&ra).expect("tallies are finite").then(a.cmp(&b))
        });
        let mut deficit = total_samples - assigned;
        let mut i = 0;
        while deficit > 0 {
            counts[order[i % order.len()]] += 1;
            deficit -= 1;
            i += 1;
        }
    } else {
        // Claw back the surplus from the streams that rounded up most.
        order.sort_by(|&a, &b| {
            let ra = counts[a] as f64 - per_stream[a];
            let rb = counts[b] as f64 - per_stream[b];
            rb.partial_cmp(&ra).expect("tallies are finite").then(a.cmp(&b))
        });
        let mut surplus = assigned - total_samples;
        let mut i = 0;
        while surplus > 0 {
            let j = order[i % order.len()];
            if counts[j] > 0 {
                counts[j] -= 1;
                surplus -= 1;
            }
            i += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_identity_when_counts_already_sum() {
        assert_eq!(apportion_samples(&[3.0, 5.0], 8), vec![3, 5]);
        assert_eq!(apportion_samples(&[2.6, 5.4], 8), vec![3, 5]);
    }

    #[test]
    fn apportion_settles_deficit_by_largest_remainder() {
        // round() gives [1, 2] (1.4 -> 1, 2.4 -> 2) but 4 samples ran;
        // stream 0 and 1 tie on remainder 0.4 so index order wins.
        assert_eq!(apportion_samples(&[1.4, 2.4], 4), vec![2, 2]);
        // Half-way ties round away from zero: [1.5, 2.5] -> [2, 3] = 5.
        assert_eq!(apportion_samples(&[1.5, 2.5], 4), vec![1, 3]);
    }

    #[test]
    fn apportion_never_underflows() {
        assert_eq!(apportion_samples(&[0.4, 0.4, 0.2], 1), vec![1, 0, 0]);
        let counts = apportion_samples(&[0.5, 0.5], 1);
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }

    /// A minimal hand-built plan for memo tests: one stage, one op.
    fn memo_plan() -> QueryPlan {
        QueryPlan {
            ops: vec![PlanOp { flops: 1.0e9, denom: 1.0e12, memory_secs: 1.0e-5, sched_secs: 1.0e-6 }],
            stages: vec![PlanStage { ops_end: 1, engine: EngineId(0), power_w: 2.0 }],
            transfer: SimDuration::ZERO,
            overhead: SimDuration::from_micros(100),
            launch: SimDuration::from_micros(100),
            sync: SimDuration::ZERO,
        }
    }

    #[test]
    fn exec_memo_evicts_least_recently_used() {
        let plan = memo_plan();
        let mut memo = ExecMemo::with_capacity(2);
        let _ = memo.lookup_or_record(&plan, 1.0); // {1.0}
        let _ = memo.lookup_or_record(&plan, 0.9); // {1.0, 0.9}
        let _ = memo.lookup_or_record(&plan, 1.0); // touch 1.0 -> 0.9 is LRU
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.evictions(), 0);
        let _ = memo.lookup_or_record(&plan, 0.8); // evicts 0.9
        assert_eq!(memo.evictions(), 1);
        assert_eq!(memo.operating_points(), 2);
        // 1.0 and 0.8 are resident; 0.9 must re-record (and evict again).
        let _ = memo.lookup_or_record(&plan, 1.0);
        let _ = memo.lookup_or_record(&plan, 0.8);
        assert_eq!(memo.hits(), 3);
        let _ = memo.lookup_or_record(&plan, 0.9);
        assert_eq!(memo.hits(), 3);
        assert_eq!(memo.evictions(), 2);
    }

    #[test]
    fn exec_memo_recorded_walks_match_fresh_lowering() {
        let plan = memo_plan();
        let mut memo = ExecMemo::with_capacity(2);
        for freq in [1.0, 0.9, 0.8, 0.9, 1.0] {
            let mut via_memo = crate::soc::SocState {
                thermal: crate::thermal::ThermalState::new(crate::thermal::ThermalSpec::default(), 22.0),
                energy: crate::power::EnergyMeter::new(0.1),
                battery: None,
                dvfs: crate::dvfs::DvfsLadder::new(vec![freq]),
            };
            let mut fresh = via_memo.clone();
            let a = plan.execute_memo(&mut via_memo, &mut memo);
            let b = plan.execute(&mut fresh);
            assert_eq!(a, b, "memoized walk diverged at freq {freq}");
            assert_eq!(via_memo, fresh);
        }
    }

    #[test]
    fn relower_query_batch_into_matches_fresh_batch() {
        let soc = crate::catalog::ChipId::Dimensity1100.build();
        let graph = nn_graph::graph::retype(
            &nn_graph::models::ModelId::MobileNetEdgeTpu.build(),
            nn_graph::DataType::U8,
        );
        let npu = soc.engine_of_kind(crate::engine::EngineKind::Npu).unwrap();
        let schedule = crate::schedule::Schedule::single(&graph, npu, nn_graph::DataType::U8, 0.0);
        let sweep = SweepPlan::new(&soc, &graph, &schedule);
        let base = sweep.query_overhead_us();
        let first: Vec<PlanDelta> =
            (0..4).map(|i| PlanDelta::QueryOverheadUs(base + 100.0 * i as f64)).collect();
        let mut batch = sweep.relower_query_batch(&first);
        // Refill with a different (and differently sized) wave of deltas:
        // the refilled batch must match a fresh re-lowering lane-for-lane.
        let second: Vec<PlanDelta> =
            (0..3).map(|i| PlanDelta::QueryOverheadUs(base + 35.0 * i as f64)).collect();
        sweep.relower_query_batch_into(&second, &mut batch);
        let fresh = sweep.relower_query_batch(&second);
        assert_eq!(batch.lanes(), 3);
        for lane in 0..3 {
            let mut a = soc.new_state(22.0);
            let mut b = a.clone();
            assert_eq!(
                batch.lane_plan(lane).execute(&mut a),
                fresh.lane_plan(lane).execute(&mut b),
                "refilled lane {lane} diverged from fresh re-lowering"
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rate_memo_shares_rate_across_equal_freq_lanes() {
        let soc = crate::catalog::ChipId::Dimensity1100.build();
        let graph = nn_graph::graph::retype(
            &nn_graph::models::ModelId::MobileNetEdgeTpu.build(),
            nn_graph::DataType::U8,
        );
        let npu = soc.engine_of_kind(crate::engine::EngineKind::Npu).unwrap();
        let schedule = crate::schedule::Schedule::single(&graph, npu, nn_graph::DataType::U8, 0.0);
        let stream = StreamPlan::lower(&soc, &graph, &schedule);
        let mut memo = RateMemo::new();
        // Two lanes at the same dispatch frequency: the second lookup
        // must hit instead of re-deriving the rate.
        let lane_a = stream.sample_secs_memo(0.9, 16, &mut memo);
        let lane_b = stream.sample_secs_memo(0.9, 16, &mut memo);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.operating_points(), 1);
        assert_eq!(lane_a.to_bits(), lane_b.to_bits());
        assert_eq!(lane_a.to_bits(), stream.sample_secs(0.9, 16).to_bits());
        // A third lane at a different frequency records a second point.
        let _ = stream.sample_secs_memo(1.0, 16, &mut memo);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.operating_points(), 2);
    }
}
