//! Compiled query plans: per-query graph traversal hoisted to compile time.
//!
//! Single-stream runs issue thousands of queries per benchmark cell, and
//! the only inputs that change between two queries of the same deployment
//! are the DVFS frequency factor and the thermal state. Everything else —
//! schedule validation, engine-support checks, `cross_engine_bytes`,
//! per-op roofline denominators, launch/sync/transfer/query overheads and
//! per-stage power terms — is a pure function of `(soc, graph, schedule)`
//! and is lowered **once** here, into flat arrays the hot loop streams
//! through.
//!
//! Two plan kinds mirror the executor's two entry points:
//! - [`QueryPlan`] for single-stream queries ([`crate::executor::run_query`]),
//! - [`OfflinePlan`] for batched multi-stream runs
//!   ([`crate::executor::run_offline`]).

use crate::engine::EngineId;
use crate::executor::{OfflineResult, QueryBreakdown, QueryResult};
use crate::schedule::Schedule;
use crate::soc::{Soc, SocState};
use crate::time::SimDuration;
use nn_graph::Graph;

/// One lowered graph node: everything the roofline model needs, with all
/// graph/engine lookups already resolved.
#[derive(Debug, Clone, Copy)]
struct PlanOp {
    /// Node FLOPs as `f64` (0.0 for memory-only ops).
    flops: f64,
    /// Roofline denominator `peak_ops(dtype) × efficiency(class)`; the hot
    /// loop divides by `denom * freq` so the operand order matches the
    /// unplanned executor bit-for-bit.
    denom: f64,
    /// Memory-bound time (seconds) — frequency-independent.
    memory_secs: f64,
    /// Per-op scheduling cost (seconds) — frequency-independent.
    sched_secs: f64,
}

/// One lowered stage: a half-open op range plus the engine-level terms.
#[derive(Debug, Clone, Copy)]
struct PlanStage {
    /// End of this stage's range in [`QueryPlan::ops`] (the start is the
    /// previous stage's end).
    ops_end: usize,
    /// Engine this stage occupies.
    engine: EngineId,
    /// Active power of that engine (watts) — weight for the energy term.
    power_w: f64,
}

/// A compiled single-stream query: `(soc, graph, schedule)` lowered to
/// flat arrays so per-query execution is a tight roofline loop.
///
/// # Bit-identity contract
///
/// For any sequence of queries, [`QueryPlan::execute`] produces results
/// **bit-identical** to calling [`crate::executor::run_query`] with the
/// same `(soc, graph, schedule)` against the same evolving [`SocState`]:
/// every `f64` in the [`QueryResult`] (latency, breakdown, energy, DVFS
/// trajectory, temperatures) matches to 0 ULPs. The lowering preserves the
/// executor's exact operand order (`flops / (denom * freq)` where
/// `denom = peak_ops × efficiency`) and addition order (query overhead,
/// then per stage: first-launch overhead, sync overhead, transfer,
/// per-op `compute.max(memory) + sched`). The golden suite locks this
/// contract across all v1.0 cells; `tests/plan_equivalence.rs` fuzzes it
/// over random graphs, schedules, frequencies and thermal states.
///
/// Validation (schedule coverage/order, engine support) happens once in
/// [`QueryPlan::new`] with the same panics as the unplanned path; the hot
/// loop retains only `debug_assert!`-level checks.
///
/// # Examples
///
/// ```
/// use soc_sim::{catalog::ChipId, plan::QueryPlan, schedule::Schedule};
/// use nn_graph::{graph::retype, models::ModelId, DataType};
///
/// let soc = ChipId::Snapdragon888.build();
/// let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::I8);
/// let schedule = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
/// let plan = QueryPlan::new(&soc, &graph, &schedule);
/// let mut state = soc.new_state(22.0);
/// let result = plan.execute(&mut state);
/// assert!(result.latency.as_millis_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Flat per-op roofline terms, concatenated in stage order.
    ops: Vec<PlanOp>,
    /// Per-stage op ranges + engine terms, in schedule order.
    stages: Vec<PlanStage>,
    /// Precomputed inter-engine transfer time.
    transfer: SimDuration,
    /// Precomputed total overhead (query + launch + sync, accumulated in
    /// the executor's historical order before rounding).
    overhead: SimDuration,
    /// The per-engine runtime-launch share of `overhead`.
    launch: SimDuration,
    /// The per-stage framework-synchronization share of `overhead`.
    sync: SimDuration,
}

impl QueryPlan {
    /// Compiles a plan: validates the schedule, checks engine support and
    /// lowers every stage. All per-query-invariant work happens here.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid for the graph or places work on
    /// an engine that cannot execute it — the same panics (and messages)
    /// [`crate::executor::run_query`] raises.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        schedule
            .validate(graph)
            .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
        for stage in &schedule.stages {
            let engine = soc.engine(stage.engine);
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                if node.cost.flops > 0 {
                    assert!(
                        engine.supports(node.class(), stage.dtype),
                        "{} cannot execute {} ({}) at {}",
                        engine.name,
                        node.name,
                        node.class(),
                        stage.dtype
                    );
                }
            }
        }

        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut ops = Vec::with_capacity(graph.len());
        let mut stages = Vec::with_capacity(schedule.stages.len());
        let mut transfer = 0.0f64;
        let mut overhead = 0.0f64;
        let mut launch_secs = 0.0f64;
        let mut sync_secs = 0.0f64;

        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        overhead += schedule.query_overhead_us * 1e-6;
        for (si, stage) in schedule.stages.iter().enumerate() {
            let engine = soc.engine(stage.engine);
            // Launch (runtime init) is paid once per engine per query; the
            // per-stage framework synchronization on every partition.
            if !launched[stage.engine.0] {
                overhead += engine.launch_overhead_us * 1e-6;
                launch_secs += engine.launch_overhead_us * 1e-6;
                launched[stage.engine.0] = true;
            }
            overhead += stage.sync_overhead_us * 1e-6;
            sync_secs += stage.sync_overhead_us * 1e-6;
            if cross_bytes[si] > 0 {
                transfer += soc.interconnect.transfer_secs(cross_bytes[si]);
            }
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                ops.push(PlanOp {
                    flops: node.cost.flops as f64,
                    denom: engine.peak_ops(stage.dtype) * engine.efficiency(node.class()),
                    memory_secs: node.cost.total_bytes(stage.dtype) as f64
                        / (engine.mem_bandwidth_gbps * 1e9),
                    sched_secs: engine.per_op_overhead_us * 1e-6,
                });
            }
            stages.push(PlanStage {
                ops_end: ops.len(),
                engine: stage.engine,
                power_w: engine.active_power_w,
            });
        }

        QueryPlan {
            ops,
            stages,
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        }
    }

    /// Number of lowered stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of lowered ops across all stages.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Executes one query against the plan, advancing the SoC state —
    /// the single-stream hot loop. Allocates nothing beyond the returned
    /// breakdown. See the type-level docs for the bit-identity contract.
    #[must_use]
    pub fn execute(&self, state: &mut SocState) -> QueryResult {
        self.execute_inner(state, None)
    }

    /// [`Self::execute`] with a steady-state fast-forward memo.
    ///
    /// Every `f64` the per-op roofline loop produces is a pure function of
    /// the plan and the query's DVFS frequency factor: the loop reads
    /// nothing else from [`SocState`]. Once a query has run at a given
    /// `freq.to_bits()`, any later query at the same operating point can
    /// replay the recorded per-stage durations, energy terms and total
    /// latency on the accumulator — bit-identical by construction (the
    /// memo stores the *results* of the original operand and addition
    /// order) but O(1) in the op count. Thermal, energy and battery
    /// bookkeeping still advances per query, so trajectories (and
    /// therefore throttle transitions, which change `freq` and miss the
    /// memo) are untouched.
    ///
    /// This subsumes exact-state repetition detection: a repeated
    /// (freq bits, temperature bits, cycle position) triple necessarily
    /// repeats the frequency bits, so the memo is already warm by the
    /// time the full executor state revisits a fixed point.
    #[must_use]
    pub fn execute_memo(&self, state: &mut SocState, memo: &mut ExecMemo) -> QueryResult {
        self.execute_inner(state, Some(memo))
    }

    fn execute_inner(&self, state: &mut SocState, memo: Option<&mut ExecMemo>) -> QueryResult {
        let freq = state.freq_factor();
        let dvfs_level = state.dvfs_level();
        let temperature_c = state.thermal.temperature_c();
        debug_assert!(
            freq.is_finite() && freq > 0.0,
            "DVFS frequency factor must be positive, got {freq}"
        );
        debug_assert!(
            self.stages.last().map_or(self.ops.is_empty(), |s| s.ops_end == self.ops.len()),
            "plan op ranges must tile the op array"
        );

        let steady = match memo {
            Some(memo) => memo.lookup_or_record(self, freq),
            None => SteadyState::from_plan(self, freq),
        };
        let SteadyState { stage_compute, energy_terms, compute_total } = steady;
        let stage_engines: Vec<EngineId> = self.stages.iter().map(|s| s.engine).collect();

        let total = compute_total + self.transfer + self.overhead;

        // Thermal/energy bookkeeping over the query duration.
        let avg_power = if total > SimDuration::ZERO {
            energy_terms / total.as_secs_f64()
        } else {
            0.0
        };
        state.thermal.advance(avg_power, total);
        state.energy.record_active(avg_power, total);
        if let Some(battery) = state.battery.as_mut() {
            battery.drain(avg_power, total);
        }

        QueryResult {
            latency: total,
            freq_factor: freq,
            dvfs_level,
            temperature_c,
            total_joules: state.energy.total_joules(),
            breakdown: QueryBreakdown {
                stage_compute,
                stage_engines,
                transfer: self.transfer,
                overhead: self.overhead,
                launch: self.launch,
                sync: self.sync,
            },
        }
    }
}

/// The frequency-dependent slice of one executed query: everything the
/// per-op roofline loop produces before the (state-dependent) thermal and
/// energy bookkeeping.
#[derive(Debug, Clone)]
struct SteadyState {
    stage_compute: Vec<SimDuration>,
    energy_terms: f64,
    compute_total: SimDuration,
}

impl SteadyState {
    /// The full O(ops) roofline walk — the exact loop `execute` has always
    /// run, factored so the memoized path can replay its recorded output.
    fn from_plan(plan: &QueryPlan, freq: f64) -> Self {
        let mut stage_compute = Vec::with_capacity(plan.stages.len());
        let mut energy_terms = 0.0f64;
        let mut compute_total = SimDuration::ZERO;
        let mut op_start = 0usize;
        for stage in &plan.stages {
            let mut t = 0.0f64;
            for op in &plan.ops[op_start..stage.ops_end] {
                let compute = if op.flops == 0.0 {
                    0.0
                } else {
                    op.flops / (op.denom * freq)
                };
                t += compute.max(op.memory_secs) + op.sched_secs;
            }
            op_start = stage.ops_end;
            energy_terms += stage.power_w * t;
            let d = SimDuration::from_secs_f64(t);
            compute_total += d;
            stage_compute.push(d);
        }
        SteadyState { stage_compute, energy_terms, compute_total }
    }
}

/// Steady-state fast-forward memo for [`QueryPlan::execute_memo`], keyed
/// by the exact bits of the query's DVFS frequency factor.
///
/// The DVFS ladder has a handful of operating points, so — like
/// [`OfflinePlan::execute`]'s rate memo — a linear scan over a tiny vec
/// beats hashing. The memo belongs to the caller (one per benchmark run),
/// never to the plan: plans are shared across threads and runs.
#[derive(Debug, Clone, Default)]
pub struct ExecMemo {
    entries: Vec<(u64, SteadyState)>,
    hits: u64,
}

impl ExecMemo {
    /// An empty memo; the first query at each operating point pays the
    /// full roofline walk.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries replayed from the memo so far (excludes the recording
    /// walks).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct DVFS operating points recorded.
    #[must_use]
    pub fn operating_points(&self) -> usize {
        self.entries.len()
    }

    fn lookup_or_record(&mut self, plan: &QueryPlan, freq: f64) -> SteadyState {
        let bits = freq.to_bits();
        if let Some((_, hit)) = self.entries.iter().find(|&&(b, _)| b == bits) {
            self.hits += 1;
            return hit.clone();
        }
        let fresh = SteadyState::from_plan(plan, freq);
        self.entries.push((bits, fresh.clone()));
        fresh
    }
}

/// One offline stream lowered to the fluid model's per-op terms.
///
/// The compute term is pre-divided by the roofline denominator
/// (`c = flops / (peak_ops × efficiency)`), matching the offline
/// estimator's historical arithmetic — which differs in rounding from the
/// single-stream path's `flops / (denom * freq)` and must stay distinct.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// `(compute_secs_at_full_freq, memory_secs, scheduling_secs)` per op.
    ops: Vec<(f64, f64, f64)>,
    /// Per-sample overhead at full batch amortization (seconds).
    overhead_secs: f64,
    /// Transfers between engines (seconds, frequency independent).
    transfer_secs: f64,
    /// Mean active power of the engines this stream occupies (watts).
    power_w: f64,
}

impl StreamPlan {
    /// Lowers one stream. Unlike [`QueryPlan::new`] this asserts nothing
    /// beyond engine-id bounds: the estimator historically tolerates
    /// unsupported placements (it is used to *cost* candidate placements,
    /// including bad ones).
    #[must_use]
    pub fn lower(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut ops = Vec::with_capacity(graph.len());
        let mut overhead_secs = 0.0;
        let mut transfer_secs = 0.0;
        let mut power_time = 0.0;
        let mut total_time = 0.0;

        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        overhead_secs += schedule.query_overhead_us * 1e-6;
        for (si, stage) in schedule.stages.iter().enumerate() {
            let engine = soc.engine(stage.engine);
            if !launched[stage.engine.0] {
                overhead_secs += engine.launch_overhead_us * 1e-6;
                launched[stage.engine.0] = true;
            }
            overhead_secs += stage.sync_overhead_us * 1e-6;
            if cross_bytes[si] > 0 {
                transfer_secs += soc.interconnect.transfer_secs(cross_bytes[si]);
            }
            let mut stage_time = 0.0;
            for &nid in &stage.nodes {
                let node = graph.node(nid);
                let compute = if node.cost.flops == 0 {
                    0.0
                } else {
                    node.cost.flops as f64
                        / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()))
                };
                let memory = node.cost.total_bytes(stage.dtype) as f64
                    / (engine.mem_bandwidth_gbps * 1e9);
                // Per-op scheduling cost is frequency-independent.
                ops.push((compute, memory, engine.per_op_overhead_us * 1e-6));
                stage_time += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
            }
            power_time += engine.active_power_w * stage_time;
            total_time += stage_time;
        }
        let power_w = if total_time > 0.0 { power_time / total_time } else { 0.0 };
        StreamPlan { ops, overhead_secs, transfer_secs, power_w }
    }

    /// Seconds per sample at DVFS factor `freq` with overheads amortized
    /// over `batch` samples.
    #[must_use]
    pub fn sample_secs(&self, freq: f64, batch: usize) -> f64 {
        let ops: f64 = self.ops.iter().map(|&(c, m, s)| (c / freq).max(m) + s).sum();
        ops + self.transfer_secs + self.overhead_secs / batch.max(1) as f64
    }

    /// Mean active power of the engines this stream occupies (watts).
    #[must_use]
    pub fn power_w(&self) -> f64 {
        self.power_w
    }
}

/// A single-knob change to an already-lowered plan, for parameter sweeps.
///
/// Each variant names one scalar the ablation studies sweep. Everything
/// else about the `(soc, graph, schedule)` triple — placement, op
/// rooflines, power terms — is unaffected by these knobs, so
/// [`SweepPlan`] can re-lower just the overhead/transfer splits in
/// O(stages) instead of re-validating the schedule and re-walking the
/// graph.
///
/// The two remaining swept knobs need no delta at all: the offline batch
/// size is already an argument of [`OfflinePlan::execute`], and DVFS
/// frequency / thermal parameters are runtime [`SocState`], read fresh on
/// every [`QueryPlan::execute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanDelta {
    /// Set the framework synchronization overhead of **every** stage to
    /// this value (µs) — the schedule-wide knob the partition planner
    /// annotates uniformly onto each stage.
    SyncOverheadUs(f64),
    /// Set the per-query fixed overhead (µs).
    QueryOverheadUs(f64),
    /// Set the interconnect's effective transfer bandwidth (GB/s); the
    /// per-handoff latency is unchanged.
    InterconnectGbps(f64),
}

/// A `(soc, graph, schedule)` triple lowered once, with enough of the
/// lowering inputs cached that any [`PlanDelta`] re-lowers in O(stages).
///
/// # Bit-identity contract
///
/// [`SweepPlan::relower_query`] (resp. [`relower_stream`]) returns a plan
/// bit-identical — every `f64`, 0 ULPs — to a fresh [`QueryPlan::new`]
/// (resp. [`StreamPlan::lower`]) against the knob-modified schedule or
/// SoC. The re-lowering replays the original accumulation loops (query
/// overhead, then per stage: first-launch overhead, sync, transfer) with
/// identical operand order; only the swept scalar changes.
/// `tests/plan_equivalence.rs` fuzzes this over random graphs, schedules
/// and knob values.
///
/// [`relower_stream`]: Self::relower_stream
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Fully-lowered baseline single-stream plan.
    query: QueryPlan,
    /// Fully-lowered baseline estimator profile.
    stream: StreamPlan,
    /// The schedule-wide per-query overhead knob (µs).
    query_overhead_us: f64,
    /// Per stage: runtime-launch overhead charged at this stage (µs);
    /// `0.0` when the stage's engine already launched earlier in the
    /// schedule. Adding the zero is bit-identical to skipping it (the
    /// overhead accumulators never go negative).
    launch_us: Vec<f64>,
    /// Per stage: framework synchronization overhead (µs).
    sync_us: Vec<f64>,
    /// Per stage: bytes crossing the interconnect *into* this stage.
    cross_bytes: Vec<u64>,
    /// The SoC's interconnect (bandwidth knob + fixed handoff latency).
    interconnect: crate::soc::InterconnectSpec,
}

impl SweepPlan {
    /// Lowers the triple once, caching the per-stage lowering inputs.
    ///
    /// # Panics
    ///
    /// Panics exactly as [`QueryPlan::new`] does: on an invalid schedule
    /// or an unsupported placement.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, schedule: &Schedule) -> Self {
        let query = QueryPlan::new(soc, graph, schedule);
        let stream = StreamPlan::lower(soc, graph, schedule);
        let cross_bytes = schedule.cross_engine_bytes(graph);
        let mut launched: Vec<bool> = vec![false; soc.engines.len()];
        let mut launch_us = Vec::with_capacity(schedule.stages.len());
        let mut sync_us = Vec::with_capacity(schedule.stages.len());
        for stage in &schedule.stages {
            let engine = soc.engine(stage.engine);
            launch_us.push(if launched[stage.engine.0] {
                0.0
            } else {
                launched[stage.engine.0] = true;
                engine.launch_overhead_us
            });
            sync_us.push(stage.sync_overhead_us);
        }
        SweepPlan {
            query,
            stream,
            query_overhead_us: schedule.query_overhead_us,
            launch_us,
            sync_us,
            cross_bytes,
            interconnect: soc.interconnect,
        }
    }

    /// The baseline (no-delta) single-stream plan.
    #[must_use]
    pub fn query_plan(&self) -> &QueryPlan {
        &self.query
    }

    /// The baseline (no-delta) estimator profile.
    #[must_use]
    pub fn stream_plan(&self) -> &StreamPlan {
        &self.stream
    }

    /// Replays the overhead/transfer accumulation with `delta` applied.
    /// Returns `(transfer, overhead, launch, sync)` in seconds, summed in
    /// the exact order [`QueryPlan::new`] and [`StreamPlan::lower`] use.
    fn relower_overheads(&self, delta: PlanDelta) -> (f64, f64, f64, f64) {
        let query_overhead_us = match delta {
            PlanDelta::QueryOverheadUs(v) => v,
            _ => self.query_overhead_us,
        };
        let interconnect = match delta {
            PlanDelta::InterconnectGbps(v) => crate::soc::InterconnectSpec {
                transfer_gbps: v,
                handoff_latency_us: self.interconnect.handoff_latency_us,
            },
            _ => self.interconnect,
        };
        let mut transfer = 0.0f64;
        let mut overhead = 0.0f64;
        let mut launch_secs = 0.0f64;
        let mut sync_secs = 0.0f64;
        overhead += query_overhead_us * 1e-6;
        for si in 0..self.sync_us.len() {
            let sync_us = match delta {
                PlanDelta::SyncOverheadUs(v) => v,
                _ => self.sync_us[si],
            };
            overhead += self.launch_us[si] * 1e-6;
            launch_secs += self.launch_us[si] * 1e-6;
            overhead += sync_us * 1e-6;
            sync_secs += sync_us * 1e-6;
            if self.cross_bytes[si] > 0 {
                transfer += interconnect.transfer_secs(self.cross_bytes[si]);
            }
        }
        (transfer, overhead, launch_secs, sync_secs)
    }

    /// Re-lowers the single-stream plan under `delta` — O(stages), no
    /// schedule re-validation, no graph walk. Bit-identical to a fresh
    /// [`QueryPlan::new`] against the knob-modified inputs.
    #[must_use]
    pub fn relower_query(&self, delta: PlanDelta) -> QueryPlan {
        let (transfer, overhead, launch_secs, sync_secs) = self.relower_overheads(delta);
        QueryPlan {
            ops: self.query.ops.clone(),
            stages: self.query.stages.clone(),
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        }
    }

    /// Re-lowers the estimator profile under `delta` — the [`StreamPlan`]
    /// analogue of [`Self::relower_query`].
    #[must_use]
    pub fn relower_stream(&self, delta: PlanDelta) -> StreamPlan {
        let (transfer_secs, overhead_secs, _, _) = self.relower_overheads(delta);
        StreamPlan {
            ops: self.stream.ops.clone(),
            overhead_secs,
            transfer_secs,
            power_w: self.stream.power_w,
        }
    }

    /// [`crate::executor::estimate_query_secs`] under `delta`: the
    /// single-sample, full-frequency latency estimate the backends rank
    /// candidate placements by. The schedule was validated once at
    /// construction.
    #[must_use]
    pub fn estimate_query_secs(&self, delta: PlanDelta) -> f64 {
        self.relower_stream(delta).sample_secs(1.0, 1)
    }
}

/// Simulation step for the offline loop.
const OFFLINE_CHUNK: SimDuration = SimDuration::from_millis(250);

/// A compiled offline (batched, multi-stream) run: every stream lowered
/// once, with total run power precomputed. [`OfflinePlan::execute`]
/// reproduces [`crate::executor::run_offline`] bit-identically, and
/// memoizes per-stream rates on the chunk's `freq.to_bits()` so
/// steady-state chunks (unthrottled, or parked at one DVFS point) skip
/// re-summing the per-op profiles every 250 ms.
#[derive(Debug, Clone)]
pub struct OfflinePlan {
    /// Lowered per-stream profiles, in stream order.
    streams: Vec<StreamPlan>,
    /// Power of all streams running concurrently plus platform idle (W).
    total_power: f64,
    /// Baseline platform power (watts), excluded from active energy.
    idle_power_w: f64,
}

impl OfflinePlan {
    /// Compiles an offline plan: validates every stream schedule and
    /// lowers it.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any schedule is invalid — the same
    /// panics (and messages) [`crate::executor::run_offline`] raises.
    #[must_use]
    pub fn new(soc: &Soc, graph: &Graph, streams: &[Schedule]) -> Self {
        assert!(!streams.is_empty(), "offline needs at least one stream");
        for s in streams {
            s.validate(graph)
                .unwrap_or_else(|e| panic!("invalid offline schedule: {e}"));
        }
        let streams: Vec<StreamPlan> =
            streams.iter().map(|s| StreamPlan::lower(soc, graph, s)).collect();
        let total_power: f64 =
            streams.iter().map(StreamPlan::power_w).sum::<f64>() + soc.idle_power_w;
        OfflinePlan { streams, total_power, idle_power_w: soc.idle_power_w }
    }

    /// Number of lowered streams.
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Executes `total_samples` across the plan's streams under the fluid
    /// model, advancing thermal/energy state chunk by chunk.
    ///
    /// # Panics
    ///
    /// Panics if `total_samples == 0` or no stream makes progress.
    #[must_use]
    pub fn execute(
        &self,
        state: &mut SocState,
        total_samples: u64,
        batch_size: usize,
    ) -> OfflineResult {
        assert!(total_samples > 0, "offline needs samples");

        let mut remaining = total_samples as f64;
        let mut per_stream = vec![0.0f64; self.streams.len()];
        let mut elapsed = SimDuration::ZERO;
        let mut throttled = SimDuration::ZERO;
        // Per-stream sample rates keyed by the chunk's exact frequency
        // bits. The ladder has a handful of operating points, so a linear
        // scan over a tiny vec beats hashing.
        let mut rate_memo: Vec<(u64, Box<[f64]>)> = Vec::new();

        while remaining > 0.0 {
            let freq = state.freq_factor();
            if freq < 1.0 {
                throttled += OFFLINE_CHUNK;
            }
            let bits = freq.to_bits();
            let memo_idx = match rate_memo.iter().position(|&(b, _)| b == bits) {
                Some(i) => i,
                None => {
                    let rates: Box<[f64]> = self
                        .streams
                        .iter()
                        .map(|p| 1.0 / p.sample_secs(freq, batch_size))
                        .collect();
                    rate_memo.push((bits, rates));
                    rate_memo.len() - 1
                }
            };
            let rates = &rate_memo[memo_idx].1;

            let chunk_secs = OFFLINE_CHUNK.as_secs_f64();
            let mut processed_this_chunk = 0.0;
            for (i, &rate) in rates.iter().enumerate() {
                let done = (rate * chunk_secs).min(remaining);
                per_stream[i] += done;
                processed_this_chunk += done;
                remaining -= done;
                if remaining <= 0.0 {
                    break;
                }
            }
            // All streams active concurrently: total power dissipates
            // together.
            state.thermal.advance(self.total_power, OFFLINE_CHUNK);
            state
                .energy
                .record_active(self.total_power - self.idle_power_w, OFFLINE_CHUNK);
            if let Some(battery) = state.battery.as_mut() {
                battery.drain(self.total_power, OFFLINE_CHUNK);
            }
            elapsed += OFFLINE_CHUNK;
            assert!(
                processed_this_chunk > 0.0,
                "offline run stalled: no stream makes progress"
            );
        }

        let fps = total_samples as f64 / elapsed.as_secs_f64();
        OfflineResult {
            duration: elapsed,
            throughput_fps: fps,
            throttled_fraction: throttled.as_secs_f64() / elapsed.as_secs_f64(),
            per_stream_samples: apportion_samples(&per_stream, total_samples),
        }
    }
}

/// Rounds the fluid model's fractional per-stream tallies to integers
/// that account for **every** sample: the returned counts always sum to
/// exactly `total_samples`.
///
/// The fluid-model rounding contract: each stream's tally is rounded to
/// the nearest integer first (preserving the historical per-stream
/// counts whenever they already added up); any residual — nearest
/// rounding can drift by up to ±0.5 per stream — is then settled against
/// the streams with the largest leftover fraction (largest-remainder
/// apportionment, ties broken by stream index), never driving a count
/// negative.
fn apportion_samples(per_stream: &[f64], total_samples: u64) -> Vec<u64> {
    let mut counts: Vec<u64> = per_stream.iter().map(|&s| s.round() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    if assigned == total_samples {
        return counts;
    }
    let mut order: Vec<usize> = (0..counts.len()).collect();
    if assigned < total_samples {
        // Hand the missing samples to the streams that rounded down most.
        order.sort_by(|&a, &b| {
            let ra = per_stream[a] - counts[a] as f64;
            let rb = per_stream[b] - counts[b] as f64;
            rb.partial_cmp(&ra).expect("tallies are finite").then(a.cmp(&b))
        });
        let mut deficit = total_samples - assigned;
        let mut i = 0;
        while deficit > 0 {
            counts[order[i % order.len()]] += 1;
            deficit -= 1;
            i += 1;
        }
    } else {
        // Claw back the surplus from the streams that rounded up most.
        order.sort_by(|&a, &b| {
            let ra = counts[a] as f64 - per_stream[a];
            let rb = counts[b] as f64 - per_stream[b];
            rb.partial_cmp(&ra).expect("tallies are finite").then(a.cmp(&b))
        });
        let mut surplus = assigned - total_samples;
        let mut i = 0;
        while surplus > 0 {
            let j = order[i % order.len()];
            if counts[j] > 0 {
                counts[j] -= 1;
                surplus -= 1;
            }
            i += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_identity_when_counts_already_sum() {
        assert_eq!(apportion_samples(&[3.0, 5.0], 8), vec![3, 5]);
        assert_eq!(apportion_samples(&[2.6, 5.4], 8), vec![3, 5]);
    }

    #[test]
    fn apportion_settles_deficit_by_largest_remainder() {
        // round() gives [1, 2] (1.4 -> 1, 2.4 -> 2) but 4 samples ran;
        // stream 0 and 1 tie on remainder 0.4 so index order wins.
        assert_eq!(apportion_samples(&[1.4, 2.4], 4), vec![2, 2]);
        // Half-way ties round away from zero: [1.5, 2.5] -> [2, 3] = 5.
        assert_eq!(apportion_samples(&[1.5, 2.5], 4), vec![1, 3]);
    }

    #[test]
    fn apportion_never_underflows() {
        assert_eq!(apportion_samples(&[0.4, 0.4, 0.2], 1), vec![1, 0, 0]);
        let counts = apportion_samples(&[0.5, 0.5], 1);
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }
}
