//! Catalog of the commercial platforms that submitted to MLPerf Mobile
//! v0.7 and v1.0.
//!
//! Engine throughputs, overheads and interconnects are *calibrated from the
//! paper's published results* (Table 3 latencies, the 674.4/605.37 FPS
//! offline figures, the 12.7x Exynos segmentation uplift, the 26-vs-15 TOPS
//! Hexagon specs, the 1.1x/1.04x Intel frequency deltas) plus public SoC
//! spec sheets; values the paper only shows graphically are set to
//! plausible levels consistent with every stated ordering. See
//! EXPERIMENTS.md for the simulated-vs-paper comparison.
//!
//! Laptop entries bundle their OpenVINO software generation (the paper's
//! v1.0 NLP uplift came from a quantized GPU kernel, i.e. software): the
//! i7-11375H entry carries the optimized kernel efficiencies.

use crate::engine::{EngineKind, EngineSpecBuilder};
use crate::soc::{InterconnectSpec, Soc};
use crate::thermal::ThermalSpec;
use nn_graph::OpClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Benchmark round a platform submitted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Generation {
    /// First round (v0.7, late 2020).
    V0_7,
    /// Second round (v1.0, mid 2021).
    V1_0,
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Generation::V0_7 => f.write_str("v0.7"),
            Generation::V1_0 => f.write_str("v1.0"),
        }
    }
}

/// The platforms appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChipId {
    /// MediaTek Dimensity 820 (v0.7): single-core MDLA APU 3.0.
    Dimensity820,
    /// MediaTek Dimensity 1100 (v1.0): dual-core MDLA.
    Dimensity1100,
    /// Samsung Exynos 990 (v0.7): dual-core NPU + Mali-G77.
    Exynos990,
    /// Samsung Exynos 2100 (v1.0): triple-core NPU + DSP, Mali-G78.
    Exynos2100,
    /// Qualcomm Snapdragon 865+ (v0.7): Hexagon 698 (15 TOPS), Adreno 650.
    Snapdragon865Plus,
    /// Qualcomm Snapdragon 888 (v1.0): fused Hexagon 780 (26 TOPS).
    Snapdragon888,
    /// Intel Core i7-1165G7 laptop (v0.7): Tiger Lake + Xe-LP iGPU.
    CoreI7_1165G7,
    /// Intel Core i7-11375H laptop (v1.0): higher frequencies + OpenVINO
    /// quantized GPU kernels.
    CoreI7_11375H,
}

impl ChipId {
    /// Every platform in the catalog.
    pub const ALL: [ChipId; 8] = [
        ChipId::Dimensity820,
        ChipId::Dimensity1100,
        ChipId::Exynos990,
        ChipId::Exynos2100,
        ChipId::Snapdragon865Plus,
        ChipId::Snapdragon888,
        ChipId::CoreI7_1165G7,
        ChipId::CoreI7_11375H,
    ];

    /// The smartphone chipsets of one generation.
    #[must_use]
    pub fn smartphones(generation: Generation) -> Vec<ChipId> {
        ChipId::ALL
            .iter()
            .copied()
            .filter(|c| c.generation() == generation && !c.build().is_laptop)
            .collect()
    }

    /// Which round this platform submitted to.
    #[must_use]
    pub fn generation(self) -> Generation {
        match self {
            ChipId::Dimensity820
            | ChipId::Exynos990
            | ChipId::Snapdragon865Plus
            | ChipId::CoreI7_1165G7 => Generation::V0_7,
            _ => Generation::V1_0,
        }
    }

    /// The next-generation platform from the same vendor, if any.
    #[must_use]
    pub fn successor(self) -> Option<ChipId> {
        match self {
            ChipId::Dimensity820 => Some(ChipId::Dimensity1100),
            ChipId::Exynos990 => Some(ChipId::Exynos2100),
            ChipId::Snapdragon865Plus => Some(ChipId::Snapdragon888),
            ChipId::CoreI7_1165G7 => Some(ChipId::CoreI7_11375H),
            _ => None,
        }
    }

    /// Builds the full SoC description.
    #[must_use]
    pub fn build(self) -> Soc {
        match self {
            ChipId::Dimensity820 => dimensity_820(),
            ChipId::Dimensity1100 => dimensity_1100(),
            ChipId::Exynos990 => exynos_990(),
            ChipId::Exynos2100 => exynos_2100(),
            ChipId::Snapdragon865Plus => snapdragon_865_plus(),
            ChipId::Snapdragon888 => snapdragon_888(),
            ChipId::CoreI7_1165G7 => core_i7_1165g7(),
            ChipId::CoreI7_11375H => core_i7_11375h(),
        }
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipId::Dimensity820 => "Dimensity 820",
            ChipId::Dimensity1100 => "Dimensity 1100",
            ChipId::Exynos990 => "Exynos 990",
            ChipId::Exynos2100 => "Exynos 2100",
            ChipId::Snapdragon865Plus => "Snapdragon 865+",
            ChipId::Snapdragon888 => "Snapdragon 888",
            ChipId::CoreI7_1165G7 => "Core i7-1165G7",
            ChipId::CoreI7_11375H => "Core i7-11375H",
        };
        f.write_str(s)
    }
}

/// Op classes a mobile CPU executes well (it executes everything).
const CPU_ALL: &[OpClass] = &[
    OpClass::Conv,
    OpClass::DepthwiseConv,
    OpClass::FullyConnected,
    OpClass::MatMul,
    OpClass::Pool,
    OpClass::Softmax,
    OpClass::LayerNorm,
    OpClass::Eltwise,
    OpClass::Concat,
    OpClass::Shape,
    OpClass::Resize,
    OpClass::Embedding,
    OpClass::Nms,
    OpClass::BoxDecode,
    OpClass::Lstm,
];

/// Classes mobile NPUs accelerate.
const NPU_FAST: &[OpClass] = &[OpClass::Conv, OpClass::FullyConnected];
/// Classes mobile NPUs run but poorly (memory-bound dataflow mismatch).
const NPU_SLOW: &[OpClass] = &[
    OpClass::Pool,
    OpClass::Softmax,
    OpClass::Eltwise,
    OpClass::Concat,
    OpClass::Shape,
];
/// Classes mobile NPUs cannot run at all: they fall back to CPU/GPU —
/// the framework-fragmentation effect of paper Section 2.2.
const NPU_NONE: &[OpClass] = &[
    OpClass::MatMul,
    OpClass::LayerNorm,
    OpClass::Resize,
    OpClass::Embedding,
    OpClass::Nms,
    OpClass::BoxDecode,
    OpClass::Lstm,
];

fn mobile_cpu(name: &str, kind: EngineKind, int8: f64, power: f64) -> EngineSpecBuilder {
    EngineSpecBuilder::new(name, kind, int8, int8 * 0.55, int8 * 0.45)
        .bandwidth(12.0)
        .launch_us(20.0)
        .per_op_us(1.0)
        .power_w(power)
        .eff_all(CPU_ALL, 0.30)
        .eff(OpClass::Nms, 0.40)
        .eff(OpClass::BoxDecode, 0.40)
        .eff(OpClass::Shape, 0.50)
}

fn mobile_gpu_fp32(name: &str, fp16: f64, fp32_ratio: f64, power: f64) -> EngineSpecBuilder {
    EngineSpecBuilder::new(name, EngineKind::Gpu, fp16 * 0.9, fp16, fp16 * fp32_ratio)
        .bandwidth(18.0)
        .launch_us(150.0)
        .per_op_us(2.0)
        .power_w(power)
        .eff(OpClass::Conv, 0.25)
        .eff(OpClass::DepthwiseConv, 0.10)
        .eff(OpClass::FullyConnected, 0.30)
        .eff(OpClass::MatMul, 0.22)
        .eff(OpClass::Pool, 0.20)
        .eff(OpClass::Softmax, 0.06)
        .eff(OpClass::LayerNorm, 0.08)
        .eff(OpClass::Eltwise, 0.20)
        .eff(OpClass::Concat, 0.30)
        .eff(OpClass::Shape, 0.40)
        .eff(OpClass::Resize, 0.30)
        .eff(OpClass::Embedding, 0.15)
        .eff(OpClass::Lstm, 0.15)
        .eff(OpClass::Nms, 0.0)
        .eff(OpClass::BoxDecode, 0.0)
}

fn mobile_gpu(name: &str, fp16: f64, power: f64) -> EngineSpecBuilder {
    mobile_gpu_fp32(name, fp16, 0.5, power)
}

fn mobile_npu(name: &str, kind: EngineKind, int8: f64, conv_eff: f64, power: f64) -> EngineSpecBuilder {
    EngineSpecBuilder::new(name, kind, int8, int8 * 0.4, 0.0)
        .bandwidth(32.0)
        .launch_us(120.0)
        .per_op_us(5.0)
        .power_w(power)
        .eff_all(NPU_FAST, conv_eff)
        .eff(OpClass::DepthwiseConv, conv_eff * 0.4)
        .eff_all(NPU_SLOW, 0.08)
        .eff_all(NPU_NONE, 0.0)
}

fn dimensity_820() -> Soc {
    Soc {
        name: "Dimensity 820".into(),
        vendor: "MediaTek".into(),
        engines: vec![
            mobile_cpu("Cortex-A76 x4", EngineKind::CpuBig, 95.0, 2.4).build(),
            mobile_cpu("Cortex-A55 x4", EngineKind::CpuLittle, 35.0, 0.9).build(),
            mobile_gpu("Mali-G57 MC5", 700.0, 2.0).build(),
            mobile_npu("APU 3.0 (1x MDLA)", EngineKind::Npu, 2400.0, 0.150, 1.8)
                .launch_us(300.0)
                .per_op_us(8.0)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 8.0, handoff_latency_us: 150.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn dimensity_1100() -> Soc {
    Soc {
        name: "Dimensity 1100".into(),
        vendor: "MediaTek".into(),
        engines: vec![
            mobile_cpu("Cortex-A78 x4", EngineKind::CpuBig, 120.0, 2.5).build(),
            mobile_cpu("Cortex-A55 x4", EngineKind::CpuLittle, 38.0, 0.9).build(),
            mobile_gpu("Mali-G77 MC9", 950.0, 2.1).build(),
            mobile_npu("APU 3.0 (2x MDLA)", EngineKind::Npu, 4900.0, 0.117, 2.0)
                .launch_us(200.0)
                .per_op_us(8.0)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 10.0, handoff_latency_us: 120.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn exynos_990() -> Soc {
    Soc {
        name: "Exynos 990".into(),
        vendor: "Samsung".into(),
        engines: vec![
            mobile_cpu("Exynos M5 x2", EngineKind::CpuBig, 110.0, 2.8)
                // The M5 was notoriously weak on branchy scalar code; NMS
                // and box decoding crawl (part of the v0.7 detection gap).
                .eff(OpClass::Nms, 0.15)
                .eff(OpClass::BoxDecode, 0.15)
                .build(),
            mobile_cpu("Cortex-A55 x4", EngineKind::CpuLittle, 35.0, 0.9).build(),
            // The G77's OpenCL FP32 convolution path in the v0.7-era driver
            // stack was immature: low utilization, quarter-rate FP32.
            mobile_gpu_fp32("Mali-G77 MP11", 1400.0, 0.25, 2.3)
                .eff(OpClass::Conv, 0.18)
                .build(),
            // Fast dual-core NPU, but graph setup is heavy (amortizes in
            // offline mode — key to the 674 FPS offline figure).
            mobile_npu("NPU (dual-core)", EngineKind::Npu, 5400.0, 0.120, 2.0)
                .launch_us(1300.0)
                .per_op_us(3.5)
                .build(),
        ],
        // The 990's documented weakness: slow inter-IP data transfer,
        // fixed in the 2100 ("critical features that reduce data transfer
        // between IP blocks").
        interconnect: InterconnectSpec { transfer_gbps: 0.18, handoff_latency_us: 2200.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.55,
        is_laptop: false,
    }
}

fn exynos_2100() -> Soc {
    Soc {
        name: "Exynos 2100".into(),
        vendor: "Samsung".into(),
        engines: vec![
            mobile_cpu("Cortex-X1 + A78 x3", EngineKind::CpuBig, 150.0, 3.0).build(),
            mobile_cpu("Cortex-A55 x4", EngineKind::CpuLittle, 40.0, 0.9).build(),
            mobile_gpu("Mali-G78 MP14", 2000.0, 2.4).build(),
            mobile_npu("NPU (triple-core) + DSP", EngineKind::Npu, 9200.0, 0.165, 2.3)
                .bandwidth(30.0)
                .launch_us(400.0)
                .per_op_us(3.0)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 10.0, handoff_latency_us: 120.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn snapdragon_865_plus() -> Soc {
    Soc {
        name: "Snapdragon 865+".into(),
        vendor: "Qualcomm".into(),
        engines: vec![
            mobile_cpu("Kryo 585 Prime+Gold", EngineKind::CpuBig, 105.0, 2.6).build(),
            mobile_cpu("Kryo 585 Silver x4", EngineKind::CpuLittle, 35.0, 0.9).build(),
            mobile_gpu("Adreno 650", 1200.0, 2.2).build(),
            // Hexagon 698: 15 TOPS marketing across the AIP cluster; the
            // discrete HTA and HVX blocks can run concurrently (offline AIP
            // mode) but single-stream uses the HTA alone.
            mobile_npu("Hexagon 698 HTA", EngineKind::Hta, 2550.0, 0.122, 1.9)
                .per_op_us(3.5)
                .build(),
            mobile_npu("Hexagon 698 HVX", EngineKind::Hvx, 1900.0, 0.121, 1.4)
                .per_op_us(3.5)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 6.0, handoff_latency_us: 200.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn snapdragon_888() -> Soc {
    Soc {
        name: "Snapdragon 888".into(),
        vendor: "Qualcomm".into(),
        engines: vec![
            mobile_cpu("Kryo 680 Prime+Gold", EngineKind::CpuBig, 130.0, 2.8).build(),
            mobile_cpu("Kryo 680 Silver x4", EngineKind::CpuLittle, 38.0, 0.9).build(),
            mobile_gpu("Adreno 660", 1500.0, 2.3).build(),
            // Hexagon 780: scalar/vector/tensor fused into one monolithic
            // block — 26 TOPS, "73% faster" than the 698 (paper Section 7.1)
            // and no intra-AIP handoff.
            mobile_npu("Hexagon 780 (fused)", EngineKind::Hta, 7700.0, 0.076, 2.1).build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 9.0, handoff_latency_us: 130.0 },
        thermal: ThermalSpec::default(),
        idle_power_w: 0.5,
        is_laptop: false,
    }
}

fn laptop_thermal() -> ThermalSpec {
    ThermalSpec {
        resistance_c_per_w: 3.0,
        capacitance_j_per_c: 40.0,
        throttle_onset_c: 85.0,
        throttle_full_c: 100.0,
        min_freq_factor: 0.6,
    }
}

fn laptop_cpu(name: &str, int8: f64) -> EngineSpecBuilder {
    EngineSpecBuilder::new(name, EngineKind::CpuLaptop, int8, int8 * 0.5, int8 * 0.25)
        .bandwidth(35.0)
        .launch_us(10.0)
        .per_op_us(0.5)
        .power_w(20.0)
        .eff_all(CPU_ALL, 0.40)
        .eff(OpClass::DepthwiseConv, 0.10)
        // Sequence GEMMs underutilize VNNI without per-layer repacking —
        // why laptop NLP runs on the iGPU (paper Section 7.1).
        .eff(OpClass::FullyConnected, 0.12)
        .eff(OpClass::MatMul, 0.12)
        .eff(OpClass::Shape, 0.60)
}

fn laptop_igpu(name: &str, gops: f64, fc_int8_eff: f64) -> EngineSpecBuilder {
    EngineSpecBuilder::new(name, EngineKind::IntegratedGpu, gops, gops, gops * 0.5)
        .bandwidth(45.0)
        .launch_us(60.0)
        .per_op_us(1.5)
        .power_w(12.0)
        .eff(OpClass::Conv, 0.26)
        .eff(OpClass::DepthwiseConv, 0.10)
        .eff(OpClass::FullyConnected, fc_int8_eff)
        .eff(OpClass::MatMul, fc_int8_eff * 0.8)
        .eff(OpClass::Pool, 0.20)
        .eff(OpClass::Softmax, 0.08)
        .eff(OpClass::LayerNorm, 0.10)
        .eff(OpClass::Eltwise, 0.20)
        .eff(OpClass::Concat, 0.30)
        .eff(OpClass::Shape, 0.40)
        .eff(OpClass::Resize, 0.30)
        .eff(OpClass::Embedding, 0.15)
        .eff(OpClass::Lstm, 0.18)
        .eff(OpClass::Nms, 0.0)
        .eff(OpClass::BoxDecode, 0.0)
}

fn core_i7_1165g7() -> Soc {
    Soc {
        name: "Core i7-1165G7".into(),
        vendor: "Intel".into(),
        engines: vec![
            laptop_cpu("Tiger Lake 4C (VNNI)", 1400.0).build(),
            // v0.7 OpenVINO: no optimized quantized GEMM kernel on the iGPU.
            laptop_igpu("Iris Xe 96EU", 2100.0, 0.13).build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 25.0, handoff_latency_us: 30.0 },
        thermal: laptop_thermal(),
        idle_power_w: 2.0,
        is_laptop: true,
    }
}

fn core_i7_11375h() -> Soc {
    Soc {
        name: "Core i7-11375H".into(),
        vendor: "Intel".into(),
        engines: vec![
            // 1.1x CPU frequency over the 1165G7 (paper Section 7.1).
            laptop_cpu("Tiger Lake H35 4C (VNNI)", 1400.0 * 1.1).build(),
            // 1.04x GPU frequency, plus the OpenVINO quantized GPU kernels
            // that produced the large v1.0 NLP gain (and a small conv
            // kernel improvement that keeps segmentation on the iGPU).
            laptop_igpu("Iris Xe 96EU (H35)", 2100.0 * 1.04, 0.36)
                .eff(OpClass::Conv, 0.28)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 25.0, handoff_latency_us: 30.0 },
        thermal: laptop_thermal(),
        idle_power_w: 2.0,
        is_laptop: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_chips_build() {
        for id in ChipId::ALL {
            let soc = id.build();
            assert!(!soc.engines.is_empty(), "{id} has engines");
            assert!(soc.engines.iter().any(|e| e.kind.is_cpu()), "{id} has a CPU");
        }
    }

    #[test]
    fn generations_partition() {
        let v07 = ChipId::smartphones(Generation::V0_7);
        let v10 = ChipId::smartphones(Generation::V1_0);
        assert_eq!(v07.len(), 3);
        assert_eq!(v10.len(), 3);
    }

    #[test]
    fn successors_cross_generations() {
        for id in ChipId::ALL {
            if let Some(next) = id.successor() {
                assert_eq!(id.generation(), Generation::V0_7);
                assert_eq!(next.generation(), Generation::V1_0);
                assert_eq!(id.build().vendor, next.build().vendor);
            }
        }
    }

    #[test]
    fn hexagon_780_is_73_percent_faster() {
        // Paper: Hexagon 780 performs 26 TOPS, 73% faster than the 865+'s 15.
        let sd865 = snapdragon_865_plus();
        let sd888 = snapdragon_888();
        let old_aip: f64 = sd865
            .engines
            .iter()
            .filter(|e| e.kind.is_accelerator())
            .map(|e| e.peak_int8_gops)
            .sum();
        let new_aip: f64 = sd888
            .engines
            .iter()
            .filter(|e| e.kind.is_accelerator())
            .map(|e| e.peak_int8_gops)
            .sum();
        let ratio = new_aip / old_aip;
        assert!((1.6..1.85).contains(&ratio), "AIP uplift {ratio:.2} should be ~1.73");
    }

    #[test]
    fn exynos_2100_interconnect_fixed() {
        let old = exynos_990();
        let new = exynos_2100();
        assert!(new.interconnect.transfer_gbps > 5.0 * old.interconnect.transfer_gbps);
        assert!(new.interconnect.handoff_latency_us < old.interconnect.handoff_latency_us / 4.0);
    }

    #[test]
    fn intel_frequency_uplift() {
        let old = core_i7_1165g7();
        let new = core_i7_11375h();
        let cpu_ratio = new.engines[0].peak_int8_gops / old.engines[0].peak_int8_gops;
        let gpu_ratio = new.engines[1].peak_int8_gops / old.engines[1].peak_int8_gops;
        assert!((cpu_ratio - 1.1).abs() < 1e-9);
        assert!((gpu_ratio - 1.04).abs() < 1e-9);
        assert!(old.is_laptop && new.is_laptop);
    }

    #[test]
    fn npus_cannot_run_nms() {
        use nn_graph::DataType;
        for id in ChipId::smartphones(Generation::V0_7) {
            let soc = id.build();
            for e in soc.engines.iter().filter(|e| e.kind.is_accelerator()) {
                assert!(
                    !e.supports(OpClass::Nms, DataType::U8),
                    "{} should not support NMS",
                    e.name
                );
            }
        }
    }

    #[test]
    fn phones_have_big_little() {
        for id in ChipId::ALL.iter().filter(|c| !c.build().is_laptop) {
            let soc = id.build();
            assert!(soc.engine_of_kind(EngineKind::CpuBig).is_some(), "{id}");
            assert!(soc.engine_of_kind(EngineKind::CpuLittle).is_some(), "{id}");
        }
    }
}
