//! Compute-engine models.
//!
//! A mobile SoC exposes a heterogeneous set of engines (paper Section 2.1):
//! big/LITTLE CPU clusters, GPU, DSP, and one or more NPUs under various
//! marketing names (APU, MDLA, HTA, HVX, Hexagon). Each engine is a
//! roofline: peak arithmetic throughput per precision, memory bandwidth,
//! a fixed kernel-launch overhead, and a per-op-class efficiency table
//! that captures how well the engine's dataflow matches each operator.

use nn_graph::{DataType, OpClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Engine family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EngineKind {
    /// Big (performance) CPU cluster.
    CpuBig,
    /// LITTLE (efficiency) CPU cluster.
    CpuLittle,
    /// Laptop-class CPU (x86).
    CpuLaptop,
    /// Mobile GPU (Mali, Adreno).
    Gpu,
    /// Integrated laptop GPU (Intel Xe).
    IntegratedGpu,
    /// Digital signal processor.
    Dsp,
    /// Neural processing unit (NPU/APU/MDLA).
    Npu,
    /// Hexagon Tensor Accelerator.
    Hta,
    /// Hexagon Vector Extensions.
    Hvx,
}

impl EngineKind {
    /// Whether this engine is a CPU cluster.
    #[must_use]
    pub fn is_cpu(self) -> bool {
        matches!(self, EngineKind::CpuBig | EngineKind::CpuLittle | EngineKind::CpuLaptop)
    }

    /// Whether this is a dedicated AI accelerator.
    #[must_use]
    pub fn is_accelerator(self) -> bool {
        matches!(self, EngineKind::Npu | EngineKind::Hta | EngineKind::Hvx | EngineKind::Dsp)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::CpuBig => "CPU(big)",
            EngineKind::CpuLittle => "CPU(LITTLE)",
            EngineKind::CpuLaptop => "CPU",
            EngineKind::Gpu => "GPU",
            EngineKind::IntegratedGpu => "iGPU",
            EngineKind::Dsp => "DSP",
            EngineKind::Npu => "NPU",
            EngineKind::Hta => "HTA",
            EngineKind::Hvx => "HVX",
        };
        f.write_str(s)
    }
}

/// Index of an engine within one SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EngineId(pub usize);

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Roofline description of one compute engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Marketing/architectural name ("Hexagon 780", "Mali-G77").
    pub name: String,
    /// Engine family.
    pub kind: EngineKind,
    /// Peak INT8 throughput in GOPS (ops/sec / 1e9).
    pub peak_int8_gops: f64,
    /// Peak FP16 throughput in GOPS.
    pub peak_fp16_gops: f64,
    /// Peak FP32 throughput in GOPS.
    pub peak_fp32_gops: f64,
    /// Sustainable memory bandwidth in GB/s (the engine's share of DRAM).
    pub mem_bandwidth_gbps: f64,
    /// Fixed per-partition launch overhead.
    pub launch_overhead_us: f64,
    /// Per-operator scheduling cost (command-buffer submission, tile
    /// setup), in µs. Paid once per op per inference.
    pub per_op_overhead_us: f64,
    /// Per-op-class utilization in `(0, 1]`; classes absent from the map
    /// fall back to [`EngineSpec::DEFAULT_EFFICIENCY`].
    pub efficiency: BTreeMap<OpClass, f64>,
    /// Sustained power draw when active, in watts (for the thermal model).
    pub active_power_w: f64,
}

impl EngineSpec {
    /// Utilization assumed for op classes without an explicit entry.
    pub const DEFAULT_EFFICIENCY: f64 = 0.10;

    /// Peak arithmetic throughput (ops/sec) at a given precision.
    ///
    /// INT8 and UINT8 run at the integer rate; INT32 falls back to FP32
    /// rate (scalar-ish).
    #[must_use]
    pub fn peak_ops(&self, dtype: DataType) -> f64 {
        let gops = match dtype {
            DataType::I8 | DataType::U8 => self.peak_int8_gops,
            DataType::F16 => self.peak_fp16_gops,
            DataType::F32 | DataType::I32 => self.peak_fp32_gops,
        };
        gops * 1e9
    }

    /// Utilization for one op class.
    #[must_use]
    pub fn efficiency(&self, class: OpClass) -> f64 {
        self.efficiency
            .get(&class)
            .copied()
            .unwrap_or(Self::DEFAULT_EFFICIENCY)
    }

    /// Whether the engine can execute the class at all (efficiency > 0).
    ///
    /// Zero-efficiency entries model missing kernel support: those ops must
    /// be placed elsewhere (usually the CPU) — the fragmentation the
    /// paper's Section 2.2 describes.
    #[must_use]
    pub fn supports(&self, class: OpClass, dtype: DataType) -> bool {
        self.efficiency(class) > 0.0 && self.peak_ops(dtype) > 0.0
    }

    /// Roofline execution time in seconds for `flops` of work in `class`
    /// at `dtype` moving `bytes` of memory, at a frequency factor `freq`
    /// (1.0 = nominal, lower when thermally throttled).
    ///
    /// # Panics
    ///
    /// Panics if the engine does not support the class/dtype.
    #[must_use]
    pub fn op_time_secs(&self, class: OpClass, dtype: DataType, flops: u64, bytes: u64, freq: f64) -> f64 {
        assert!(
            self.supports(class, dtype),
            "{} cannot execute {class} at {dtype}",
            self.name
        );
        let compute = flops as f64 / (self.peak_ops(dtype) * self.efficiency(class) * freq);
        // Memory bandwidth is not DVFS-scaled (DRAM is on its own rail).
        let memory = bytes as f64 / (self.mem_bandwidth_gbps * 1e9);
        compute.max(memory)
    }
}

/// Builder-style helper for writing catalog entries tersely.
#[derive(Debug)]
pub struct EngineSpecBuilder {
    spec: EngineSpec,
}

impl EngineSpecBuilder {
    /// Starts a spec with the given name/kind and peak GOPS triple
    /// (int8, fp16, fp32).
    #[must_use]
    pub fn new(name: &str, kind: EngineKind, int8: f64, fp16: f64, fp32: f64) -> Self {
        EngineSpecBuilder {
            spec: EngineSpec {
                name: name.to_owned(),
                kind,
                peak_int8_gops: int8,
                peak_fp16_gops: fp16,
                peak_fp32_gops: fp32,
                mem_bandwidth_gbps: 10.0,
                launch_overhead_us: 50.0,
                per_op_overhead_us: 2.0,
                efficiency: BTreeMap::new(),
                active_power_w: 1.0,
            },
        }
    }

    /// Sets memory bandwidth (GB/s).
    #[must_use]
    pub fn bandwidth(mut self, gbps: f64) -> Self {
        self.spec.mem_bandwidth_gbps = gbps;
        self
    }

    /// Sets launch overhead (microseconds).
    #[must_use]
    pub fn launch_us(mut self, us: f64) -> Self {
        self.spec.launch_overhead_us = us;
        self
    }

    /// Sets the per-operator scheduling cost (microseconds).
    #[must_use]
    pub fn per_op_us(mut self, us: f64) -> Self {
        self.spec.per_op_overhead_us = us;
        self
    }

    /// Sets active power (watts).
    #[must_use]
    pub fn power_w(mut self, w: f64) -> Self {
        self.spec.active_power_w = w;
        self
    }

    /// Sets the efficiency of one op class.
    #[must_use]
    pub fn eff(mut self, class: OpClass, value: f64) -> Self {
        assert!((0.0..=1.0).contains(&value), "efficiency must be in [0, 1]");
        self.spec.efficiency.insert(class, value);
        self
    }

    /// Sets the same efficiency for several classes.
    #[must_use]
    pub fn eff_all(mut self, classes: &[OpClass], value: f64) -> Self {
        for &c in classes {
            self = self.eff(c, value);
        }
        self
    }

    /// Finalizes the spec.
    #[must_use]
    pub fn build(self) -> EngineSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn npu() -> EngineSpec {
        EngineSpecBuilder::new("test-npu", EngineKind::Npu, 1000.0, 250.0, 0.0)
            .bandwidth(20.0)
            .eff(OpClass::Conv, 0.5)
            .eff(OpClass::DepthwiseConv, 0.1)
            .eff(OpClass::Nms, 0.0)
            .build()
    }

    #[test]
    fn peak_ops_by_dtype() {
        let e = npu();
        assert_eq!(e.peak_ops(DataType::I8), 1e12);
        assert_eq!(e.peak_ops(DataType::U8), 1e12);
        assert_eq!(e.peak_ops(DataType::F16), 250e9);
        assert_eq!(e.peak_ops(DataType::F32), 0.0);
    }

    #[test]
    fn support_table() {
        let e = npu();
        assert!(e.supports(OpClass::Conv, DataType::I8));
        assert!(!e.supports(OpClass::Nms, DataType::I8)); // zero efficiency
        assert!(!e.supports(OpClass::Conv, DataType::F32)); // no fp32 rate
        // Unlisted class falls back to default efficiency: supported.
        assert!(e.supports(OpClass::Softmax, DataType::I8));
    }

    #[test]
    fn compute_bound_op_time() {
        let e = npu();
        // 1e9 flops at 1e12 ops * 0.5 eff = 2 ms; tiny memory traffic.
        let t = e.op_time_secs(OpClass::Conv, DataType::I8, 1_000_000_000, 1000, 1.0);
        assert!((t - 0.002).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn memory_bound_op_time() {
        let e = npu();
        // Tiny flops, 20 MB of traffic at 20 GB/s = 1 ms.
        let t = e.op_time_secs(OpClass::DepthwiseConv, DataType::I8, 1000, 20_000_000, 1.0);
        assert!((t - 0.001).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn throttling_slows_compute_not_memory() {
        let e = npu();
        let full = e.op_time_secs(OpClass::Conv, DataType::I8, 1_000_000_000, 0, 1.0);
        let half = e.op_time_secs(OpClass::Conv, DataType::I8, 1_000_000_000, 0, 0.5);
        assert!((half - full * 2.0).abs() < 1e-9);
        let mem_full = e.op_time_secs(OpClass::Conv, DataType::I8, 0, 20_000_000, 1.0);
        let mem_half = e.op_time_secs(OpClass::Conv, DataType::I8, 0, 20_000_000, 0.5);
        assert_eq!(mem_full, mem_half);
    }

    #[test]
    #[should_panic(expected = "cannot execute")]
    fn unsupported_class_panics() {
        let e = npu();
        let _ = e.op_time_secs(OpClass::Nms, DataType::I8, 100, 100, 1.0);
    }

    #[test]
    fn kind_predicates() {
        assert!(EngineKind::CpuBig.is_cpu());
        assert!(!EngineKind::Gpu.is_cpu());
        assert!(EngineKind::Hta.is_accelerator());
        assert!(!EngineKind::Gpu.is_accelerator());
    }
}
