//! Lumped-RC thermal model with a throttling governor.
//!
//! ML workloads are computationally heavy and trigger run-time thermal
//! throttling (paper Section 6.1), which is why the run rules require
//! 20–25 °C ambient, an air gap, and cooldown intervals between tests.
//! The model integrates dissipated power into die temperature through a
//! single thermal resistance/capacitance pair; the governor converts
//! temperature into a DVFS frequency factor.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Thermal parameters of a device (die + enclosure lump).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Thermal resistance junction→ambient in °C/W.
    pub resistance_c_per_w: f64,
    /// Thermal capacitance in J/°C.
    pub capacitance_j_per_c: f64,
    /// Die temperature where throttling begins (°C).
    pub throttle_onset_c: f64,
    /// Die temperature of maximum throttling (°C).
    pub throttle_full_c: f64,
    /// Frequency factor at (and beyond) full throttle.
    pub min_freq_factor: f64,
}

impl Default for ThermalSpec {
    /// A typical passively-cooled smartphone: ~3 W sustained at the 3 W TDP
    /// ceiling the paper's Appendix E mentions.
    fn default() -> Self {
        ThermalSpec {
            resistance_c_per_w: 12.0,
            capacitance_j_per_c: 3.0,
            throttle_onset_c: 65.0,
            throttle_full_c: 85.0,
            min_freq_factor: 0.45,
        }
    }
}

impl ThermalSpec {
    /// Steady-state die temperature under constant `power_w` at `ambient_c`.
    #[must_use]
    pub fn steady_state_c(&self, power_w: f64, ambient_c: f64) -> f64 {
        ambient_c + power_w * self.resistance_c_per_w
    }
}

/// Mutable thermal state of a running device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    spec: ThermalSpec,
    ambient_c: f64,
    temperature_c: f64,
}

impl ThermalState {
    /// Starts at thermal equilibrium with the ambient.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (non-positive R or C, or onset
    /// above full-throttle temperature).
    #[must_use]
    pub fn new(spec: ThermalSpec, ambient_c: f64) -> Self {
        assert!(spec.resistance_c_per_w > 0.0 && spec.capacitance_j_per_c > 0.0);
        assert!(spec.throttle_onset_c < spec.throttle_full_c);
        assert!((0.0..=1.0).contains(&spec.min_freq_factor));
        ThermalState { spec, ambient_c, temperature_c: ambient_c }
    }

    /// Current die temperature (°C).
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Ambient temperature (°C).
    #[must_use]
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Whether the governor is currently limiting frequency.
    #[must_use]
    pub fn is_throttling(&self) -> bool {
        self.freq_factor() < 1.0
    }

    /// DVFS frequency factor in `[min_freq_factor, 1.0]`.
    ///
    /// 1.0 below onset; linear ramp down to `min_freq_factor` at the
    /// full-throttle temperature.
    #[must_use]
    pub fn freq_factor(&self) -> f64 {
        let s = &self.spec;
        if self.temperature_c <= s.throttle_onset_c {
            1.0
        } else if self.temperature_c >= s.throttle_full_c {
            s.min_freq_factor
        } else {
            let frac =
                (self.temperature_c - s.throttle_onset_c) / (s.throttle_full_c - s.throttle_onset_c);
            1.0 - frac * (1.0 - s.min_freq_factor)
        }
    }

    /// The RC time constant `R * C` in seconds.
    #[must_use]
    pub fn time_constant_secs(&self) -> f64 {
        self.spec.resistance_c_per_w * self.spec.capacitance_j_per_c
    }

    /// The exponential decay factor `exp(-dt / tau)` the RC integration
    /// applies over `dt`.
    ///
    /// A pure function of `dt` and [`Self::time_constant_secs`] — states
    /// agreeing on both (to the bit) share the same factor, which lets a
    /// lockstep batch executor pay the `exp` once per distinct
    /// `(dt, tau)` pair instead of once per lane.
    #[must_use]
    pub fn decay_alpha(&self, dt: SimDuration) -> f64 {
        (-dt.as_secs_f64() / self.time_constant_secs()).exp()
    }

    /// Integrates the RC model over `dt` with dissipation `power_w`.
    ///
    /// Uses the exact exponential solution of the first-order ODE, so the
    /// result is step-size independent — important because query durations
    /// vary over five orders of magnitude across the suite.
    pub fn advance(&mut self, power_w: f64, dt: SimDuration) {
        let alpha = self.decay_alpha(dt);
        self.advance_with_alpha(power_w, alpha);
    }

    /// [`Self::advance`] with a precomputed decay factor.
    ///
    /// `alpha` must be `self.decay_alpha(dt)` for the `dt` the power was
    /// dissipated over; with that input this is bit-identical to
    /// [`Self::advance`].
    pub fn advance_with_alpha(&mut self, power_w: f64, alpha: f64) {
        let target = self.spec.steady_state_c(power_w, self.ambient_c);
        self.temperature_c = target + (self.temperature_c - target) * alpha;
    }

    /// Passive cooldown: advance with zero power.
    pub fn cooldown(&mut self, dt: SimDuration) {
        self.advance(0.0, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state() -> ThermalState {
        ThermalState::new(ThermalSpec::default(), 22.0)
    }

    #[test]
    fn starts_at_ambient_unthrottled() {
        let s = state();
        assert_eq!(s.temperature_c(), 22.0);
        assert_eq!(s.freq_factor(), 1.0);
        assert!(!s.is_throttling());
    }

    #[test]
    fn heats_toward_steady_state() {
        let mut s = state();
        // 3 W for a long time: steady state = 22 + 3*12 = 58 °C.
        s.advance(3.0, SimDuration::from_secs(10_000));
        assert!((s.temperature_c() - 58.0).abs() < 0.1);
        assert!(!s.is_throttling(), "3 W must stay under the 65 °C onset");
    }

    #[test]
    fn heavy_load_throttles() {
        let mut s = state();
        // 6 W steady state = 94 °C: will pass onset and reach full throttle.
        s.advance(6.0, SimDuration::from_secs(10_000));
        assert!(s.is_throttling());
        assert_eq!(s.freq_factor(), ThermalSpec::default().min_freq_factor);
    }

    #[test]
    fn cooldown_restores_full_frequency() {
        let mut s = state();
        s.advance(6.0, SimDuration::from_secs(10_000));
        assert!(s.is_throttling());
        // Paper run rules: up to 5-minute cooldown between tests.
        s.cooldown(SimDuration::from_secs(300));
        assert!(!s.is_throttling(), "temp {}", s.temperature_c());
    }

    #[test]
    fn linear_ramp_between_onset_and_full() {
        let mut s = state();
        // Drive exactly to midway: (65+85)/2 = 75 °C.
        s.temperature_c = 75.0;
        let expected = 1.0 - 0.5 * (1.0 - ThermalSpec::default().min_freq_factor);
        assert!((s.freq_factor() - expected).abs() < 1e-12);
    }

    #[test]
    fn integration_is_step_size_independent() {
        let mut coarse = state();
        coarse.advance(4.0, SimDuration::from_secs(100));
        let mut fine = state();
        for _ in 0..10_000 {
            fine.advance(4.0, SimDuration::from_millis(10));
        }
        assert!((coarse.temperature_c() - fine.temperature_c()).abs() < 1e-6);
    }

    #[test]
    fn hot_ambient_throttles_sooner() {
        // Paper requires 20-25 °C ambient; a 45 °C car dashboard changes results.
        let mut cool = ThermalState::new(ThermalSpec::default(), 22.0);
        let mut hot = ThermalState::new(ThermalSpec::default(), 45.0);
        for s in [&mut cool, &mut hot] {
            s.advance(4.0, SimDuration::from_secs(600));
        }
        assert!(hot.freq_factor() < cool.freq_factor());
    }

    proptest! {
        #[test]
        fn temperature_never_exceeds_steady_state(
            power in 0.0f64..10.0,
            secs in 1u64..5000,
        ) {
            let mut s = state();
            s.advance(power, SimDuration::from_secs(secs));
            let ss = ThermalSpec::default().steady_state_c(power, 22.0);
            prop_assert!(s.temperature_c() <= ss.max(22.0) + 1e-9);
            prop_assert!(s.temperature_c() >= 22.0 - 1e-9);
        }

        #[test]
        fn freq_factor_bounded(temp in 0.0f64..150.0) {
            let mut s = state();
            s.temperature_c = temp;
            let f = s.freq_factor();
            prop_assert!((ThermalSpec::default().min_freq_factor..=1.0).contains(&f));
        }
    }
}
