//! Seeded device-population sampling for fleet-scale sweeps.
//!
//! The catalog ([`crate::catalog`]) models eight *lab* phones: nominal
//! silicon at a bench ambient. A fleet sweep asks a different question —
//! what does the same deployment look like across a million *field*
//! units, where silicon binning, case choice, climate, battery wear and
//! background load all perturb the device model? This module samples
//! those per-unit perturbations as a pure function of `(seed, index)`,
//! so any shard of the population can be regenerated independently —
//! nothing is ever materialized, and the sweep is bit-reproducible
//! regardless of worker count or shard interleaving.
//!
//! # Dedup-friendly by construction
//!
//! Every distribution is **discrete or grid-quantized** (speed bins,
//! envelope classes, ambients on a 0.25 °C grid, battery health/charge on
//! a 0.01 grid, background-load classes). Two units that land on the same
//! grid points have **bit-equal** sampled state, which is what the batched
//! executor's frequency-bit dedup ([`crate::plan_batch`]) and the fleet
//! unit memo key on: a uniform sub-population packed into one wave costs
//! one op-array walk per step instead of K, and repeated units skip
//! execution entirely. Continuous distributions would make every unit
//! unique and silently turn both fast paths off.

use crate::battery::{BatterySpec, BatteryState};
use crate::dvfs::DvfsLadder;
use crate::power::EnergyMeter;
use crate::soc::{Soc, SocState};
use crate::thermal::{ThermalSpec, ThermalState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid step for sampled ambient temperatures (°C).
const AMBIENT_GRID_C: f64 = 0.25;

/// Grid step for sampled battery health and state-of-charge fractions.
const BATTERY_GRID: f64 = 0.01;

/// The population model: per-unit perturbation distributions applied on
/// top of a catalog [`Soc`]. All fields are public knobs; the
/// [`Default`] profile models a mixed consumer installed base.
///
/// Weights need not sum to 1 — they are normalized at sampling time.
///
/// # Distribution shapes
///
/// * `speed_bins` — silicon binning: each bin scales every DVFS ladder
///   point, so a 0.96 unit runs all its operating points 4 % slower.
/// * `envelopes` — thermal envelope classes (bare / case / heavy case):
///   each class scales the thermal resistance, so cased units heat up
///   further per watt and throttle earlier.
/// * `ambient_bands` — `(lo_c, hi_c, weight)` climate bands, sampled
///   uniformly inside the band then snapped to a 0.25 °C grid.
/// * `wall_power_fraction` — units benched on wall power (no battery
///   model); the rest sample battery health and charge.
/// * `health_range` / `charge_range` — battery capacity retention and
///   state of charge, uniform then snapped to a 0.01 grid.
/// * `background_us` — background-load classes: extra per-query overhead
///   (µs) from other apps sharing the device.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Silicon speed bins: `(dvfs_scale, weight)`.
    pub speed_bins: Vec<(f64, f64)>,
    /// Thermal envelope classes: `(thermal_resistance_scale, weight)`.
    pub envelopes: Vec<(f64, f64)>,
    /// Climate bands: `(lo_c, hi_c, weight)`.
    pub ambient_bands: Vec<(f64, f64, f64)>,
    /// Fraction of units on wall power.
    pub wall_power_fraction: f64,
    /// Battery capacity retention range (fraction of spec capacity).
    pub health_range: (f64, f64),
    /// Battery state-of-charge range.
    pub charge_range: (f64, f64),
    /// Background-load classes: `(extra_query_overhead_us, weight)`.
    pub background_us: Vec<(f64, f64)>,
}

impl Default for FleetProfile {
    /// A mixed consumer installed base: most units near nominal silicon,
    /// indoors, on battery, with light background load.
    fn default() -> Self {
        FleetProfile {
            speed_bins: vec![(1.0, 0.28), (0.98, 0.40), (0.96, 0.22), (0.94, 0.10)],
            envelopes: vec![(1.0, 0.55), (1.12, 0.35), (1.30, 0.10)],
            ambient_bands: vec![
                (18.0, 26.0, 0.62), // indoors
                (4.0, 35.0, 0.30),  // outdoors, temperate
                (35.0, 48.0, 0.08), // hot climates / direct sun
            ],
            wall_power_fraction: 0.15,
            health_range: (0.80, 1.0),
            charge_range: (0.05, 1.0),
            background_us: vec![(0.0, 0.50), (150.0, 0.30), (400.0, 0.15), (1200.0, 0.05)],
        }
    }
}

impl FleetProfile {
    /// A degenerate profile where every sampled unit is bit-identical:
    /// nominal silicon, bare envelope, fixed `ambient_c`, wall power, no
    /// background load. The uniform-fleet fast path's best case, used by
    /// tests and throughput benches to bound the dedup win.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_c` is not on the 0.25 °C sampling grid.
    #[must_use]
    pub fn uniform(ambient_c: f64) -> Self {
        assert!(
            (ambient_c / AMBIENT_GRID_C).fract() == 0.0,
            "uniform ambient must sit on the {AMBIENT_GRID_C} degC sampling grid"
        );
        FleetProfile {
            speed_bins: vec![(1.0, 1.0)],
            envelopes: vec![(1.0, 1.0)],
            // A band narrower than half a grid step always snaps to
            // `ambient_c` itself.
            ambient_bands: vec![(ambient_c, ambient_c + AMBIENT_GRID_C / 4.0, 1.0)],
            wall_power_fraction: 1.0,
            health_range: (1.0, 1.0),
            charge_range: (1.0, 1.0),
            background_us: vec![(0.0, 1.0)],
        }
    }
}

/// One sampled field unit: the per-device perturbations applied on top
/// of a catalog [`Soc`]. Produced by [`sample_unit`]; purely a function
/// of `(seed, index, profile)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceUnit {
    /// Silicon speed bin: scales every DVFS ladder point.
    pub speed_scale: f64,
    /// Thermal envelope class: scales the SoC's thermal resistance.
    pub envelope_scale: f64,
    /// Ambient temperature (°C), on a 0.25 °C grid.
    pub ambient_c: f64,
    /// `Some((health, charge))` when on battery power, `None` on wall.
    pub battery: Option<(f64, f64)>,
    /// Background load: extra per-query overhead (µs).
    pub extra_query_overhead_us: f64,
}

impl DeviceUnit {
    /// The full sampled state as exact bit patterns: units with equal
    /// keys have bit-equal [`DeviceUnit::state`] and therefore bit-equal
    /// trajectories through any plan. The fleet executor sorts shard
    /// populations by this key so identical units pack into the same
    /// lanes (frequency-bit dedup) and repeats replay a memoized score.
    #[must_use]
    pub fn dedup_key(&self) -> [u64; 6] {
        let (health, charge) = match self.battery {
            // `to_bits` of a valid health/charge never collides with
            // `u64::MAX` (that bit pattern is a NaN).
            Some((h, c)) => (h.to_bits(), c.to_bits()),
            None => (u64::MAX, u64::MAX),
        };
        [
            self.speed_scale.to_bits(),
            self.envelope_scale.to_bits(),
            self.ambient_c.to_bits(),
            health,
            charge,
            self.extra_query_overhead_us.to_bits(),
        ]
    }

    /// Builds the unit's run-time state on `soc`: the catalog state with
    /// this unit's envelope scaling the thermal resistance, the speed bin
    /// scaling every DVFS point, and battery wear scaling the capacity.
    ///
    /// # Panics
    ///
    /// Panics (via [`BatteryState::new`] / [`DvfsLadder::new`]) if the
    /// unit's fields are out of range — sampled units never are.
    #[must_use]
    pub fn state(&self, soc: &Soc) -> SocState {
        let thermal = ThermalSpec {
            resistance_c_per_w: soc.thermal.resistance_c_per_w * self.envelope_scale,
            ..soc.thermal
        };
        let ladder: Vec<f64> =
            DvfsLadder::default().factors().iter().map(|f| f * self.speed_scale).collect();
        SocState {
            thermal: ThermalState::new(thermal, self.ambient_c),
            energy: EnergyMeter::new(soc.idle_power_w),
            battery: self.battery.map(|(health, charge)| {
                let spec = BatterySpec::default();
                BatteryState::new(
                    BatterySpec { capacity_wh: spec.capacity_wh * health, ..spec },
                    charge,
                )
            }),
            dvfs: DvfsLadder::new(ladder),
        }
    }
}

/// SplitMix64-style combine of the fleet seed and the unit index, so
/// neighbouring indices land on uncorrelated RNG streams.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Snaps `v` to the nearest multiple of `step`.
fn quantize(v: f64, step: f64) -> f64 {
    (v / step).round() * step
}

/// Weighted choice over `(value, weight)` pairs.
fn pick_weighted(rng: &mut StdRng, choices: &[(f64, f64)]) -> f64 {
    let total: f64 = choices.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for &(value, weight) in choices {
        if x < weight {
            return value;
        }
        x -= weight;
    }
    choices.last().expect("weighted choice needs at least one entry").0
}

/// Samples unit `index` of the population — a pure function of
/// `(seed, index, profile)`, so any sub-range of the population can be
/// regenerated on any worker with identical bits.
///
/// # Panics
///
/// Panics if the profile is degenerate in a way the device model rejects
/// (empty choice lists, inverted ranges, weights summing to zero).
#[must_use]
pub fn sample_unit(seed: u64, index: u64, profile: &FleetProfile) -> DeviceUnit {
    let mut rng = StdRng::seed_from_u64(mix(seed, index));
    let speed_scale = pick_weighted(&mut rng, &profile.speed_bins);
    let envelope_scale = pick_weighted(&mut rng, &profile.envelopes);
    let band_total: f64 = profile.ambient_bands.iter().map(|&(_, _, w)| w).sum();
    let mut x = rng.gen::<f64>() * band_total;
    let mut band = *profile.ambient_bands.last().expect("profile needs an ambient band");
    for &(lo, hi, w) in &profile.ambient_bands {
        if x < w {
            band = (lo, hi, w);
            break;
        }
        x -= w;
    }
    let ambient_c = quantize(rng.gen_range(band.0..band.1), AMBIENT_GRID_C);
    let battery = if rng.gen_bool(profile.wall_power_fraction) {
        None
    } else {
        let health = quantize(sample_range(&mut rng, profile.health_range), BATTERY_GRID);
        let charge = quantize(sample_range(&mut rng, profile.charge_range), BATTERY_GRID);
        Some((health, charge))
    };
    let extra_query_overhead_us = pick_weighted(&mut rng, &profile.background_us);
    DeviceUnit { speed_scale, envelope_scale, ambient_c, battery, extra_query_overhead_us }
}

/// Uniform sample over `[lo, hi]`, tolerating the degenerate `lo == hi`
/// point range (which `gen_range` rejects).
fn sample_range(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    assert!(lo <= hi, "range must be ordered");
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ChipId;

    fn population(seed: u64, n: u64, profile: &FleetProfile) -> Vec<DeviceUnit> {
        (0..n).map(|i| sample_unit(seed, i, profile)).collect()
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        let profile = FleetProfile::default();
        let a = population(42, 512, &profile);
        let b = population(42, 512, &profile);
        assert_eq!(a, b);
        // Regenerating an arbitrary sub-range matches the full pass —
        // the property sharding relies on.
        for i in [0u64, 17, 311, 511] {
            assert_eq!(sample_unit(42, i, &profile), a[i as usize]);
        }
        // A different seed moves the population.
        let c = population(43, 512, &profile);
        assert_ne!(a, c);
    }

    #[test]
    fn distribution_shapes_match_the_profile() {
        let profile = FleetProfile::default();
        let n = 20_000u64;
        let units = population(7, n, &profile);

        // Speed bins: mean within 0.5 % of the weighted mean, and only
        // the profiled bins occur.
        let weighted_mean = 1.0 * 0.28 + 0.98 * 0.40 + 0.96 * 0.22 + 0.94 * 0.10;
        let mean: f64 = units.iter().map(|u| u.speed_scale).sum::<f64>() / n as f64;
        assert!((mean - weighted_mean).abs() < 0.005, "speed mean {mean} vs {weighted_mean}");
        assert!(units.iter().all(|u| [1.0, 0.98, 0.96, 0.94].contains(&u.speed_scale)));

        // Envelopes: only the profiled classes, with the common class
        // actually common.
        assert!(units.iter().all(|u| [1.0, 1.12, 1.30].contains(&u.envelope_scale)));
        let bare = units.iter().filter(|u| u.envelope_scale == 1.0).count() as f64 / n as f64;
        assert!((bare - 0.55).abs() < 0.02, "bare-envelope fraction {bare}");

        // Ambients: inside the union of bands, on the sampling grid.
        for u in &units {
            // Grid snapping can round a sample at a band edge up to the
            // edge itself, so the bound is inclusive.
            assert!((4.0..=48.0).contains(&u.ambient_c), "ambient {} out of band", u.ambient_c);
            assert!(
                (u.ambient_c / AMBIENT_GRID_C).fract() == 0.0,
                "ambient {} off grid",
                u.ambient_c
            );
        }

        // Battery: wall-power fraction near the knob; health/charge in
        // range and on the grid.
        let wall = units.iter().filter(|u| u.battery.is_none()).count() as f64 / n as f64;
        assert!((wall - 0.15).abs() < 0.02, "wall-power fraction {wall}");
        for (health, charge) in units.iter().filter_map(|u| u.battery) {
            assert!((0.80..=1.0).contains(&health));
            assert!((0.05..=1.0).contains(&charge));
            assert!((health / BATTERY_GRID).round() * BATTERY_GRID == health);
        }

        // Background load: only the profiled classes, idle class common.
        assert!(units
            .iter()
            .all(|u| [0.0, 150.0, 400.0, 1200.0].contains(&u.extra_query_overhead_us)));
        let idle = units.iter().filter(|u| u.extra_query_overhead_us == 0.0).count() as f64
            / n as f64;
        assert!((idle - 0.50).abs() < 0.02, "idle-background fraction {idle}");
    }

    #[test]
    fn sampled_units_build_valid_states_on_every_chip() {
        let profile = FleetProfile::default();
        for (i, chip) in ChipId::ALL.iter().cycle().take(400).enumerate() {
            let soc = chip.build();
            let unit = sample_unit(11, i as u64, &profile);
            let state = unit.state(&soc);
            // Ladder stays strictly descending in (0, 1] after binning.
            assert_eq!(state.dvfs.factors()[0], unit.speed_scale);
            assert_eq!(state.thermal.ambient_c(), unit.ambient_c);
            assert_eq!(state.battery.is_some(), unit.battery.is_some());
        }
    }

    #[test]
    fn equal_dedup_keys_mean_bit_equal_states() {
        let profile = FleetProfile::default();
        let soc = ChipId::Dimensity1100.build();
        let units = population(3, 4096, &profile);
        for w in units.windows(2) {
            if w[0].dedup_key() == w[1].dedup_key() {
                assert_eq!(w[0].state(&soc), w[1].state(&soc));
            }
        }
        // And the uniform profile collapses the whole population onto
        // one key.
        let uniform = FleetProfile::uniform(22.0);
        let key = sample_unit(9, 0, &uniform).dedup_key();
        assert!(population(9, 256, &uniform).iter().all(|u| u.dedup_key() == key));
    }
}
