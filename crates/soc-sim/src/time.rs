//! Simulated time.
//!
//! The whole benchmark runs on a virtual clock: the SoC simulator reports
//! per-query durations, and the LoadGen advances this clock instead of
//! wall time. A "60-second minimum run" therefore finishes in milliseconds
//! of host time while preserving every run rule (sample counts, percentile
//! math, thermal integration).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time. Internally nanoseconds (`u64`), giving
/// ~584 years of range — far beyond any benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds. Negative or NaN inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant on the simulated clock (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The run-start epoch.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Duration since another (earlier) instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("instant ordering"))
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(5).as_millis_f64(), 5.0);
        assert_eq!(SimDuration::from_secs(60).as_secs_f64(), 60.0);
        assert_eq!(SimDuration::from_micros(12).as_nanos(), 12_000);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_millis_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!((a + b).as_millis_f64(), 5.0);
        assert_eq!((a - b).as_millis_f64(), 1.0);
        assert_eq!((a * 4).as_millis_f64(), 12.0);
        assert_eq!((a / 3).as_millis_f64(), 1.0);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis_f64(), 10.0);
    }

    #[test]
    fn instants_advance() {
        let mut t = SimInstant::EPOCH;
        t += SimDuration::from_secs(1);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.duration_since(SimInstant::EPOCH).as_millis_f64(), 1500.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }
}
