//! Discrete-event simulator for heterogeneous mobile SoCs.
//!
//! The substrate under the MLPerf Mobile reproduction: compute engines with
//! roofline cost models, a catalog of the eight commercial platforms from
//! the paper's two submission rounds, inter-engine interconnects, a lumped
//! RC thermal model with DVFS throttling, energy accounting, and executors
//! for single-query (single-stream) and multi-stream batched (offline /
//! accelerator-level-parallel) inference.
//!
//! # Examples
//!
//! ```
//! use soc_sim::catalog::ChipId;
//! use soc_sim::engine::EngineKind;
//! use soc_sim::schedule::Schedule;
//! use soc_sim::executor::run_query;
//! use nn_graph::models::ModelId;
//! use nn_graph::DataType;
//!
//! let soc = ChipId::Dimensity1100.build();
//! let graph = nn_graph::graph::retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
//! let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
//! let schedule = Schedule::single(&graph, npu, DataType::U8, 0.0);
//! let mut state = soc.new_state(22.0);
//! let result = run_query(&soc, &graph, &schedule, &mut state);
//! assert!(result.latency.as_millis_f64() > 0.1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod battery;
pub mod catalog;
pub mod dvfs;
pub mod engine;
pub mod executor;
pub mod fleet;
pub mod plan;
pub mod plan_batch;
pub mod power;
pub mod schedule;
pub mod search;
pub mod soc;
pub mod thermal;
pub mod time;

pub use battery::{BatterySpec, BatteryState};
pub use catalog::{ChipId, Generation};
pub use dvfs::DvfsLadder;
pub use engine::{EngineId, EngineKind, EngineSpec, EngineSpecBuilder};
pub use executor::{estimate_query_secs, run_offline, run_query, OfflineResult, QueryBreakdown, QueryResult};
pub use fleet::{sample_unit, DeviceUnit, FleetProfile};
pub use plan::{ExecMemo, OfflinePlan, QueryPlan, RateMemo, StreamPlan};
pub use plan_batch::{BatchPlan, BatchState};
pub use power::{EnergyMeter, EnergySnapshot};
pub use schedule::{Schedule, ScheduleError, Stage};
pub use search::{active_energy_j, CostModel, PartialAssign, SearchScore, SearchTarget};
pub use soc::{InterconnectSpec, Soc, SocState};
pub use thermal::{ThermalSpec, ThermalState};
pub use time::{SimDuration, SimInstant};
