//! Energy accounting.
//!
//! Power measurement is future work in the paper (Appendix E), but the
//! thermal model needs dissipation, and the accounting is exposed so
//! experiments can report energy per inference (most smartphone chipsets
//! are capped at a ~3 W TDP).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Running energy/power accounting for a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    total_joules: f64,
    busy_time: SimDuration,
    idle_power_w: f64,
}

impl EnergyMeter {
    /// Creates a meter with the given baseline (idle/rail) power.
    #[must_use]
    pub fn new(idle_power_w: f64) -> Self {
        EnergyMeter { total_joules: 0.0, busy_time: SimDuration::ZERO, idle_power_w }
    }

    /// Records a busy interval at `active_power_w` (idle power is added on
    /// top — rails stay up).
    pub fn record_active(&mut self, active_power_w: f64, dt: SimDuration) {
        self.total_joules += (active_power_w + self.idle_power_w) * dt.as_secs_f64();
        self.busy_time += dt;
    }

    /// Records an idle interval.
    pub fn record_idle(&mut self, dt: SimDuration) {
        self.total_joules += self.idle_power_w * dt.as_secs_f64();
    }

    /// Total energy consumed, in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// Total busy time recorded.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Average power over `elapsed`, in watts.
    #[must_use]
    pub fn average_power_w(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_joules / secs
        }
    }

    /// Energy per inference given a completed query count.
    #[must_use]
    pub fn joules_per_query(&self, queries: u64) -> f64 {
        if queries == 0 {
            0.0
        } else {
            self.total_joules / queries as f64
        }
    }

    /// A point-in-time copy of the meter over an elapsed run window —
    /// the run-end surface the harness and trace exporters consume.
    ///
    /// `total_joules` and `busy_ns` are the meter's exact accumulators
    /// (no recomputation, so downstream reports tie back to
    /// [`EnergyMeter::total_joules`] at 0 ULPs); `average_power_w` is
    /// derived over `elapsed`.
    #[must_use]
    pub fn snapshot(&self, elapsed: SimDuration) -> EnergySnapshot {
        EnergySnapshot {
            total_joules: self.total_joules,
            busy_ns: self.busy_time.as_nanos(),
            idle_power_w: self.idle_power_w,
            average_power_w: self.average_power_w(elapsed),
            elapsed_ns: elapsed.as_nanos(),
        }
    }
}

/// Run-end energy summary captured from an [`EnergyMeter`].
///
/// Invariants (property-tested in `tests/energy_properties.rs`):
/// `total_joules` is monotone non-decreasing over a run, `busy_ns` never
/// exceeds `elapsed_ns` when every interval is recorded, and
/// `average_power_w` is bounded below by the idle power whenever the whole
/// window was accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySnapshot {
    /// Total energy consumed since the meter was created (joules).
    pub total_joules: f64,
    /// Total busy time recorded (ns).
    pub busy_ns: u64,
    /// Baseline rail power the meter was created with (watts).
    pub idle_power_w: f64,
    /// Average power over the elapsed window (watts).
    pub average_power_w: f64,
    /// The elapsed window the average was computed over (ns).
    pub elapsed_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_accumulates() {
        let mut m = EnergyMeter::new(0.5);
        m.record_active(2.5, SimDuration::from_secs(10)); // (2.5+0.5)*10 = 30 J
        m.record_idle(SimDuration::from_secs(20)); // 0.5*20 = 10 J
        assert!((m.total_joules() - 40.0).abs() < 1e-9);
        assert_eq!(m.busy_time(), SimDuration::from_secs(10));
    }

    #[test]
    fn average_power() {
        let mut m = EnergyMeter::new(0.0);
        m.record_active(3.0, SimDuration::from_secs(30));
        assert!((m.average_power_w(SimDuration::from_secs(60)) - 1.5).abs() < 1e-9);
        assert_eq!(m.average_power_w(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn per_query_energy() {
        let mut m = EnergyMeter::new(0.0);
        m.record_active(2.0, SimDuration::from_secs(5));
        assert!((m.joules_per_query(100) - 0.1).abs() < 1e-9);
        assert_eq!(m.joules_per_query(0), 0.0);
    }
}
