//! Battery model.
//!
//! The run rules (paper Section 6.1) state "the benchmark runs while the
//! phone is battery powered, but we recommend a full charge beforehand to
//! avoid entering power-saving mode". This module models exactly that
//! hazard: a finite-capacity battery whose state of charge, once below the
//! power-saving threshold, caps the DVFS frequency — silently degrading
//! scores. It also supports the energy-per-query reporting the paper lists
//! as future work (Appendix E, "power measurement").

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static battery description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Usable capacity in watt-hours (a 4500 mAh / 3.85 V phone pack is
    /// ~17 Wh).
    pub capacity_wh: f64,
    /// State of charge below which the OS enters power-saving mode.
    pub power_save_threshold: f64,
    /// Frequency cap applied in power-saving mode.
    pub power_save_freq_cap: f64,
}

impl Default for BatterySpec {
    fn default() -> Self {
        BatterySpec {
            capacity_wh: 17.0,
            power_save_threshold: 0.20,
            power_save_freq_cap: 0.70,
        }
    }
}

/// Mutable battery state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    spec: BatterySpec,
    remaining_wh: f64,
}

impl BatteryState {
    /// A battery at the given state of charge in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive capacity or out-of-range state of charge.
    #[must_use]
    pub fn new(spec: BatterySpec, state_of_charge: f64) -> Self {
        assert!(spec.capacity_wh > 0.0, "capacity must be positive");
        assert!((0.0..=1.0).contains(&state_of_charge), "SoC out of range");
        assert!((0.0..=1.0).contains(&spec.power_save_threshold));
        assert!((0.0..=1.0).contains(&spec.power_save_freq_cap));
        BatteryState { spec, remaining_wh: spec.capacity_wh * state_of_charge }
    }

    /// A fully-charged battery — what the run rules recommend.
    #[must_use]
    pub fn full(spec: BatterySpec) -> Self {
        BatteryState::new(spec, 1.0)
    }

    /// Current state of charge in `[0, 1]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        (self.remaining_wh / self.spec.capacity_wh).clamp(0.0, 1.0)
    }

    /// Remaining energy in watt-hours.
    #[must_use]
    pub fn remaining_wh(&self) -> f64 {
        self.remaining_wh
    }

    /// Whether the OS is in power-saving mode.
    #[must_use]
    pub fn power_saving(&self) -> bool {
        self.state_of_charge() < self.spec.power_save_threshold
    }

    /// The frequency cap this battery state imposes (1.0 when healthy).
    #[must_use]
    pub fn freq_cap(&self) -> f64 {
        if self.power_saving() {
            self.spec.power_save_freq_cap
        } else {
            1.0
        }
    }

    /// Drains the battery by `power_w` over `dt`. Clamps at empty.
    pub fn drain(&mut self, power_w: f64, dt: SimDuration) {
        let joules = power_w * dt.as_secs_f64();
        self.remaining_wh = (self.remaining_wh - joules / 3600.0).max(0.0);
    }

    /// Drains a fixed energy amount in joules. Clamps at empty.
    pub fn drain_joules(&mut self, joules: f64) {
        self.remaining_wh = (self.remaining_wh - joules / 3600.0).max(0.0);
    }

    /// Whether the battery is flat.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining_wh <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_battery_no_cap() {
        let b = BatteryState::full(BatterySpec::default());
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.power_saving());
        assert_eq!(b.freq_cap(), 1.0);
    }

    #[test]
    fn drain_arithmetic() {
        let mut b = BatteryState::full(BatterySpec::default());
        // 17 W for one hour empties a 17 Wh pack.
        b.drain(17.0, SimDuration::from_secs(3600));
        assert!(b.is_empty());
    }

    #[test]
    fn low_battery_enters_power_saving() {
        let spec = BatterySpec::default();
        let mut b = BatteryState::new(spec, 0.25);
        assert!(!b.power_saving());
        // Drain 10% of capacity: 1.7 Wh = 6120 J.
        b.drain_joules(0.06 * spec.capacity_wh * 3600.0);
        assert!(b.power_saving(), "SoC {:.2}", b.state_of_charge());
        assert!((b.freq_cap() - spec.power_save_freq_cap).abs() < 1e-12);
    }

    #[test]
    fn benchmark_energy_is_negligible_on_full_charge() {
        // A full suite run burns a few hundred joules; a charged pack
        // barely notices — the run rule exists for *low* batteries.
        let mut b = BatteryState::full(BatterySpec::default());
        b.drain_joules(500.0);
        assert!(b.state_of_charge() > 0.99);
    }

    proptest! {
        #[test]
        fn soc_never_negative(joules in 0.0f64..1e6) {
            let mut b = BatteryState::full(BatterySpec::default());
            b.drain_joules(joules);
            prop_assert!(b.state_of_charge() >= 0.0);
            prop_assert!(b.remaining_wh() >= 0.0);
        }

        #[test]
        fn freq_cap_is_binary(soc in 0.0f64..1.0) {
            let b = BatteryState::new(BatterySpec::default(), soc);
            let cap = b.freq_cap();
            prop_assert!(cap == 1.0 || (cap - 0.70).abs() < 1e-12);
        }
    }
}
