//! Property tests for the energy accounting surface: the invariants the
//! profile/report layers rely on when they print joules-per-inference and
//! average-power columns.
//!
//! 1. total energy is monotone non-decreasing under any interleaving of
//!    active and idle intervals,
//! 2. `average_power_w` is bounded below by the idle power over any fully
//!    accounted window containing activity (active intervals add power on
//!    top of the rails, never below),
//! 3. recorded busy time never exceeds the elapsed window,
//! 4. [`EnergySnapshot`] mirrors the meter's accumulators exactly (0 ULPs)
//!    whether taken directly or through [`SocState::energy_snapshot`].

use proptest::prelude::*;
use soc_sim::catalog::ChipId;
use soc_sim::power::EnergyMeter;
use soc_sim::time::SimDuration;

/// One recorded interval: busy at some active power, or idle.
#[derive(Debug, Clone)]
enum Interval {
    Active { power_w: f64, micros: u64 },
    Idle { micros: u64 },
}

/// Draws active and idle intervals with equal probability.
struct IntervalStrategy;

impl Strategy for IntervalStrategy {
    type Value = Interval;

    fn sample(&self, rng: &mut proptest::rng::StdRng) -> Interval {
        let micros = Strategy::sample(&(1u64..5_000_000), rng);
        if Strategy::sample(&(0u8..2), rng) == 0 {
            Interval::Active { power_w: Strategy::sample(&(0.0f64..20.0), rng), micros }
        } else {
            Interval::Idle { micros }
        }
    }
}

fn interval() -> impl Strategy<Value = Interval> {
    IntervalStrategy
}

proptest! {
    #[test]
    fn energy_is_monotone_non_decreasing(
        idle_w in 0.0f64..3.0,
        intervals in proptest::collection::vec(interval(), 1..64),
    ) {
        let mut m = EnergyMeter::new(idle_w);
        let mut prev = m.total_joules();
        for iv in &intervals {
            match *iv {
                Interval::Active { power_w, micros } => {
                    m.record_active(power_w, SimDuration::from_micros(micros));
                }
                Interval::Idle { micros } => m.record_idle(SimDuration::from_micros(micros)),
            }
            prop_assert!(m.total_joules() >= prev, "energy decreased");
            prev = m.total_joules();
        }
    }

    #[test]
    fn average_power_bounded_below_by_idle(
        idle_w in 0.01f64..3.0,
        intervals in proptest::collection::vec(interval(), 1..64),
    ) {
        // Record every interval, so the elapsed window is fully accounted
        // for: the average can then never dip below the rail power, because
        // active intervals burn idle + active watts.
        let mut m = EnergyMeter::new(idle_w);
        let mut elapsed = SimDuration::ZERO;
        let mut saw_activity = false;
        for iv in &intervals {
            match *iv {
                Interval::Active { power_w, micros } => {
                    let dt = SimDuration::from_micros(micros);
                    m.record_active(power_w, dt);
                    elapsed += dt;
                    saw_activity = true;
                }
                Interval::Idle { micros } => {
                    let dt = SimDuration::from_micros(micros);
                    m.record_idle(dt);
                    elapsed += dt;
                }
            }
        }
        if saw_activity {
            let avg = m.average_power_w(elapsed);
            // Tiny tolerance for the float sum over many intervals.
            prop_assert!(
                avg >= idle_w * (1.0 - 1e-9),
                "avg {avg} below idle {idle_w}"
            );
        }
    }

    #[test]
    fn busy_time_never_exceeds_elapsed(
        intervals in proptest::collection::vec(interval(), 0..64),
    ) {
        let mut m = EnergyMeter::new(0.5);
        let mut elapsed = SimDuration::ZERO;
        for iv in &intervals {
            match *iv {
                Interval::Active { power_w, micros } => {
                    let dt = SimDuration::from_micros(micros);
                    m.record_active(power_w, dt);
                    elapsed += dt;
                }
                Interval::Idle { micros } => {
                    let dt = SimDuration::from_micros(micros);
                    m.record_idle(dt);
                    elapsed += dt;
                }
            }
        }
        prop_assert!(m.busy_time() <= elapsed);
        let snap = m.snapshot(elapsed);
        prop_assert!(snap.busy_ns <= snap.elapsed_ns);
    }

    #[test]
    fn snapshot_mirrors_meter_exactly(
        idle_w in 0.0f64..3.0,
        power_w in 0.0f64..15.0,
        busy_micros in 1u64..10_000_000,
        idle_micros in 0u64..10_000_000,
    ) {
        let mut m = EnergyMeter::new(idle_w);
        m.record_active(power_w, SimDuration::from_micros(busy_micros));
        m.record_idle(SimDuration::from_micros(idle_micros));
        let elapsed = SimDuration::from_micros(busy_micros + idle_micros);
        let snap = m.snapshot(elapsed);
        // The snapshot is a copy, not a recomputation: 0 ULPs.
        prop_assert_eq!(snap.total_joules.to_bits(), m.total_joules().to_bits());
        prop_assert_eq!(snap.busy_ns, m.busy_time().as_nanos());
        prop_assert_eq!(snap.idle_power_w.to_bits(), idle_w.to_bits());
        prop_assert_eq!(
            snap.average_power_w.to_bits(),
            m.average_power_w(elapsed).to_bits()
        );
    }
}

#[test]
fn soc_state_surfaces_meter_totals_at_run_end() {
    // End-to-end through the real executor: after a run, the SocState
    // snapshot is exactly the meter's accumulated totals.
    let soc = ChipId::Snapdragon888.build();
    let graph = nn_graph::graph::retype(
        &nn_graph::models::ModelId::MobileNetEdgeTpu.build(),
        nn_graph::DataType::I8,
    );
    let schedule = soc_sim::schedule::Schedule::single(&graph, soc.cpu(), nn_graph::DataType::I8, 0.0);
    let mut state = soc.new_state(22.0);
    let mut elapsed = SimDuration::ZERO;
    for _ in 0..32 {
        let r = soc_sim::executor::run_query(&soc, &graph, &schedule, &mut state);
        elapsed += r.latency;
        assert_eq!(
            r.total_joules.to_bits(),
            state.energy.total_joules().to_bits(),
            "query result carries the meter total verbatim"
        );
    }
    let snap = state.energy_snapshot(elapsed);
    assert_eq!(snap.total_joules.to_bits(), state.energy.total_joules().to_bits());
    assert_eq!(snap.busy_ns, state.energy.busy_time().as_nanos());
    assert!(snap.busy_ns <= snap.elapsed_ns, "queries ran back to back");
    assert!(snap.average_power_w >= soc.idle_power_w, "device was active the whole window");
}
