//! The compiled-plan contract: [`QueryPlan`]/[`OfflinePlan`] execution is
//! bit-identical — 0 ULPs on every float — to the historical per-query
//! graph traversal, across random graphs, schedules, frequency factors and
//! thermal states.
//!
//! The reference here is a *legacy oracle*: a verbatim reimplementation of
//! the pre-plan `run_query` arithmetic (same operand order, same addition
//! order) written against the public simulator API. Any drift in the plan
//! lowering — reordered sums, refactored operand grouping, cached terms
//! rounded differently — trips these tests even if it would survive the
//! coarser integration suites.

use nn_graph::builder::GraphBuilder;
use nn_graph::graph::retype;
use nn_graph::{Activation, DataType, Graph, Shape};
use proptest::prelude::*;
use soc_sim::engine::{EngineId, EngineKind, EngineSpecBuilder};
use soc_sim::executor::{run_offline, run_query, QueryResult};
use soc_sim::plan::{ExecMemo, OfflinePlan, PlanDelta, QueryPlan, StreamPlan, SweepPlan};
use soc_sim::schedule::{Schedule, Stage};
use soc_sim::soc::{InterconnectSpec, Soc, SocState};
use soc_sim::thermal::ThermalSpec;
use soc_sim::time::SimDuration;
use nn_graph::OpClass;

/// A two-engine SoC with a hair-trigger thermal envelope, so short query
/// sequences already traverse several DVFS operating points.
fn soc() -> Soc {
    Soc {
        name: "PlanChip".into(),
        vendor: "Acme".into(),
        engines: vec![
            EngineSpecBuilder::new("cpu", EngineKind::CpuBig, 100.0, 100.0, 50.0)
                .bandwidth(15.0)
                .launch_us(5.0)
                .power_w(6.0)
                .eff_all(&[OpClass::Conv, OpClass::FullyConnected], 0.4)
                .build(),
            EngineSpecBuilder::new("npu", EngineKind::Npu, 2000.0, 500.0, 0.0)
                .bandwidth(25.0)
                .launch_us(80.0)
                .power_w(9.0)
                .eff(OpClass::Conv, 0.5)
                .build(),
        ],
        interconnect: InterconnectSpec { transfer_gbps: 8.0, handoff_latency_us: 120.0 },
        thermal: ThermalSpec {
            resistance_c_per_w: 10.0,
            capacitance_j_per_c: 0.8,
            throttle_onset_c: 45.0,
            throttle_full_c: 80.0,
            min_freq_factor: 0.4,
        },
        idle_power_w: 0.3,
        is_laptop: false,
    }
}

fn small_graph(channels: usize, depth: usize) -> Graph {
    let mut b = GraphBuilder::new("t", Shape::nhwc(24, 24, 3), DataType::F32);
    let mut prev = b.input_id();
    for i in 0..depth.max(1) {
        prev = b.conv2d(&format!("c{i}"), prev, 3, 1, channels, Activation::Relu6);
    }
    let p = b.global_avg_pool("gap", prev);
    let _ = b.fully_connected("fc", p, 10, Activation::None);
    b.finish()
}

/// Splits the graph's node list into up to `stages` contiguous partitions
/// with per-stage engines/sync drawn from the inputs.
fn random_schedule(
    graph: &Graph,
    cuts: &[usize],
    engines: &[usize],
    sync_us: f64,
    query_us: f64,
) -> Schedule {
    let all: Vec<_> = graph.iter().map(|n| n.id).collect();
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % all.len()).collect();
    bounds.push(0);
    bounds.push(all.len());
    bounds.sort_unstable();
    bounds.dedup();
    let stages: Vec<Stage> = bounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| Stage {
            engine: EngineId(engines[i % engines.len()] % 2),
            dtype: DataType::I8,
            nodes: all[w[0]..w[1]].to_vec(),
            sync_overhead_us: sync_us,
        })
        .collect();
    Schedule { stages, query_overhead_us: query_us }
}

/// The pre-plan `run_query` arithmetic, verbatim: validation, support
/// asserts, then the roofline traversal in the executor's historical
/// operand and addition order. Kept as the independent oracle the plan
/// must match to 0 ULPs.
fn legacy_run_query(
    soc: &Soc,
    graph: &Graph,
    schedule: &Schedule,
    state: &mut SocState,
) -> QueryResult {
    schedule
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid schedule for {}: {e}", graph.name()));
    for stage in &schedule.stages {
        let engine = soc.engine(stage.engine);
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            if node.cost.flops > 0 {
                assert!(engine.supports(node.class(), stage.dtype));
            }
        }
    }

    let freq = state.freq_factor();
    let dvfs_level = state.dvfs_level();
    let temperature_c = state.thermal.temperature_c();
    let cross_bytes = schedule.cross_engine_bytes(graph);

    let mut stage_compute = Vec::new();
    let mut stage_engines = Vec::new();
    let mut transfer = 0.0f64;
    let mut overhead = 0.0f64;
    let mut launch_secs = 0.0f64;
    let mut sync_secs = 0.0f64;
    let mut energy_terms = 0.0f64;

    let mut launched: Vec<bool> = vec![false; soc.engines.len()];
    overhead += schedule.query_overhead_us * 1e-6;
    for (si, stage) in schedule.stages.iter().enumerate() {
        let engine = soc.engine(stage.engine);
        if !launched[stage.engine.0] {
            overhead += engine.launch_overhead_us * 1e-6;
            launch_secs += engine.launch_overhead_us * 1e-6;
            launched[stage.engine.0] = true;
        }
        overhead += stage.sync_overhead_us * 1e-6;
        sync_secs += stage.sync_overhead_us * 1e-6;
        stage_engines.push(stage.engine);
        if cross_bytes[si] > 0 {
            transfer += soc.interconnect.transfer_secs(cross_bytes[si]);
        }
        let mut t = 0.0f64;
        for &nid in &stage.nodes {
            let node = graph.node(nid);
            let compute = if node.cost.flops == 0 {
                0.0
            } else {
                node.cost.flops as f64
                    / (engine.peak_ops(stage.dtype) * engine.efficiency(node.class()) * freq)
            };
            let memory =
                node.cost.total_bytes(stage.dtype) as f64 / (engine.mem_bandwidth_gbps * 1e9);
            t += compute.max(memory) + engine.per_op_overhead_us * 1e-6;
        }
        energy_terms += engine.active_power_w * t;
        stage_compute.push(SimDuration::from_secs_f64(t));
    }

    let total = stage_compute.iter().copied().sum::<SimDuration>()
        + SimDuration::from_secs_f64(transfer)
        + SimDuration::from_secs_f64(overhead);

    let avg_power = if total > SimDuration::ZERO {
        energy_terms / total.as_secs_f64()
    } else {
        0.0
    };
    state.thermal.advance(avg_power, total);
    state.energy.record_active(avg_power, total);
    if let Some(battery) = state.battery.as_mut() {
        battery.drain(avg_power, total);
    }

    QueryResult {
        latency: total,
        freq_factor: freq,
        dvfs_level,
        temperature_c,
        total_joules: state.energy.total_joules(),
        breakdown: soc_sim::executor::QueryBreakdown {
            stage_compute,
            stage_engines,
            transfer: SimDuration::from_secs_f64(transfer),
            overhead: SimDuration::from_secs_f64(overhead),
            launch: SimDuration::from_secs_f64(launch_secs),
            sync: SimDuration::from_secs_f64(sync_secs),
        },
    }
}

/// Asserts a delta re-lowering is bit-identical to a fresh full compile of
/// the knob-modified `(soc, graph, schedule)`: the [`QueryPlan`]s execute
/// identically over an evolving trajectory, the [`StreamPlan`]s sample
/// identically across frequencies and batch sizes, and the ranked-estimate
/// scalar matches the executor's.
fn assert_delta_matches_fresh(
    soc: &Soc,
    graph: &Graph,
    modified: &Schedule,
    sweep: &SweepPlan,
    delta: PlanDelta,
    queries: usize,
) {
    let fresh = QueryPlan::new(soc, graph, modified);
    let relowered = sweep.relower_query(delta);
    let mut fresh_state = soc.new_state(24.0);
    let mut relowered_state = soc.new_state(24.0);
    for _ in 0..queries {
        assert_bit_identical(
            &fresh.execute(&mut fresh_state),
            &relowered.execute(&mut relowered_state),
        );
    }
    assert_eq!(fresh_state, relowered_state, "{delta:?} state drift");

    let fresh_stream = StreamPlan::lower(soc, graph, modified);
    let relowered_stream = sweep.relower_stream(delta);
    for (freq, batch) in [(1.0, 1), (0.7, 8), (0.4, 128)] {
        assert_eq!(
            fresh_stream.sample_secs(freq, batch).to_bits(),
            relowered_stream.sample_secs(freq, batch).to_bits(),
            "{delta:?} stream ULP drift at freq {freq} batch {batch}"
        );
    }
    assert_eq!(
        soc_sim::executor::estimate_query_secs(soc, graph, modified).to_bits(),
        sweep.estimate_query_secs(delta).to_bits(),
        "{delta:?} estimate ULP drift"
    );
}

/// Asserts two query results are identical down to the float bits.
fn assert_bit_identical(a: &QueryResult, b: &QueryResult) {
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.freq_factor.to_bits(), b.freq_factor.to_bits(), "freq ULP drift");
    assert_eq!(a.dvfs_level, b.dvfs_level);
    assert_eq!(a.temperature_c.to_bits(), b.temperature_c.to_bits(), "temp ULP drift");
    assert_eq!(a.total_joules.to_bits(), b.total_joules.to_bits(), "energy ULP drift");
    assert_eq!(a.breakdown, b.breakdown);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned execution == unplanned `run_query` == the legacy oracle,
    /// over an evolving thermal/DVFS/battery trajectory: every query
    /// result and every piece of device state match to 0 ULPs.
    #[test]
    fn planned_matches_legacy_oracle_across_thermal_trajectory(
        channels in 4usize..48,
        depth in 1usize..4,
        cuts in proptest::collection::vec(0usize..16, 0..3),
        engines in proptest::collection::vec(0usize..2, 1..4),
        sync_us in 0.0f64..500.0,
        query_us in 0.0f64..200.0,
        ambient in 20.0f64..40.0,
        queries in 1usize..60,
        on_battery: bool,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, depth), DataType::I8);
        let schedule = random_schedule(&graph, &cuts, &engines, sync_us, query_us);
        // Contiguous partitions of the topological node order are always
        // valid schedules; anything else is a bug in the generator.
        schedule.validate(&graph).expect("generator must emit valid schedules");

        let new_state = || {
            if on_battery {
                soc.new_state_on_battery(
                    ambient,
                    soc_sim::battery::BatteryState::new(
                        soc_sim::battery::BatterySpec::default(),
                        0.9,
                    ),
                )
            } else {
                soc.new_state(ambient)
            }
        };
        let mut oracle_state = new_state();
        let mut direct_state = new_state();
        let mut planned_state = new_state();
        let plan = QueryPlan::new(&soc, &graph, &schedule);

        for q in 0..queries {
            let oracle = legacy_run_query(&soc, &graph, &schedule, &mut oracle_state);
            let direct = run_query(&soc, &graph, &schedule, &mut direct_state);
            let planned = plan.execute(&mut planned_state);
            assert_bit_identical(&oracle, &direct);
            assert_bit_identical(&oracle, &planned);
            // The whole DVFS/thermal/energy/battery trajectory stays in
            // lockstep, not just the visible results.
            prop_assert_eq!(&oracle_state, &direct_state, "query {}", q);
            prop_assert_eq!(&oracle_state, &planned_state, "query {}", q);
        }
    }

    /// The plan's one-time lowering is just as reusable as it claims: one
    /// plan driven over two states from different ambients produces the
    /// same results as two independently compiled plans.
    #[test]
    fn one_plan_serves_many_states(
        channels in 4usize..32,
        ambient_a in 20.0f64..30.0,
        ambient_b in 30.0f64..45.0,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, 2), DataType::I8);
        let schedule = Schedule::single(&graph, EngineId(1), DataType::I8, 40.0);
        let shared = QueryPlan::new(&soc, &graph, &schedule);
        for ambient in [ambient_a, ambient_b] {
            let mut s1 = soc.new_state(ambient);
            let mut s2 = soc.new_state(ambient);
            let fresh = QueryPlan::new(&soc, &graph, &schedule);
            for _ in 0..10 {
                assert_bit_identical(&shared.execute(&mut s1), &fresh.execute(&mut s2));
            }
            prop_assert_eq!(s1, s2);
        }
    }

    /// Offline: the planned fluid loop (with its freq-bits rate memo)
    /// matches `run_offline` exactly, and the integer per-stream counts
    /// always account for every sample.
    #[test]
    fn offline_plan_matches_and_accounts_all_samples(
        channels in 4usize..32,
        total in 1u64..20_000,
        batch in 1usize..64,
        two_streams: bool,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, 2), DataType::I8);
        let npu = Schedule::single(&graph, EngineId(1), DataType::I8, 0.0);
        let cpu = Schedule::single(&graph, EngineId(0), DataType::I8, 0.0);
        let streams: Vec<Schedule> =
            if two_streams { vec![npu, cpu] } else { vec![npu] };

        let mut s1 = soc.new_state(22.0);
        let direct = run_offline(&soc, &graph, &streams, &mut s1, total, batch);
        let plan = OfflinePlan::new(&soc, &graph, &streams);
        let mut s2 = soc.new_state(22.0);
        let planned = plan.execute(&mut s2, total, batch);

        prop_assert_eq!(&direct, &planned);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(
            planned.per_stream_samples.iter().sum::<u64>(),
            total,
            "rounding must account for every sample"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sweep engine's bit-identity contract: for every [`PlanDelta`]
    /// knob, delta re-lowering an already-compiled [`SweepPlan`] equals a
    /// fresh full compile of the knob-modified inputs — query execution,
    /// stream sampling and the ranked estimate, all to 0 ULPs.
    #[test]
    fn sweep_delta_matches_fresh_recompile(
        channels in 4usize..48,
        depth in 1usize..4,
        cuts in proptest::collection::vec(0usize..16, 0..3),
        engines in proptest::collection::vec(0usize..2, 1..4),
        sync_us in 0.0f64..500.0,
        query_us in 0.0f64..200.0,
        sync_knob in 0.0f64..500.0,
        query_knob in 0.0f64..300.0,
        gbps_knob in 0.5f64..64.0,
        queries in 1usize..30,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, depth), DataType::I8);
        let schedule = random_schedule(&graph, &cuts, &engines, sync_us, query_us);
        let sweep = SweepPlan::new(&soc, &graph, &schedule);

        // Sync knob: the partition planner annotates it uniformly onto
        // every stage.
        let mut sync_mod = schedule.clone();
        for stage in &mut sync_mod.stages {
            stage.sync_overhead_us = sync_knob;
        }
        assert_delta_matches_fresh(
            &soc, &graph, &sync_mod, &sweep,
            PlanDelta::SyncOverheadUs(sync_knob), queries,
        );

        // Per-query fixed-overhead knob.
        let mut query_mod = schedule.clone();
        query_mod.query_overhead_us = query_knob;
        assert_delta_matches_fresh(
            &soc, &graph, &query_mod, &sweep,
            PlanDelta::QueryOverheadUs(query_knob), queries,
        );

        // Interconnect bandwidth knob: the schedule is unchanged but the
        // SoC is; the fresh compile sees the modified SoC.
        let mut soc_mod = soc.clone();
        soc_mod.interconnect.transfer_gbps = gbps_knob;
        assert_delta_matches_fresh(
            &soc_mod, &graph, &schedule, &sweep,
            PlanDelta::InterconnectGbps(gbps_knob), queries,
        );
    }

    /// The steady-state fast-forward contract: [`QueryPlan::execute_memo`]
    /// is bit-identical to [`QueryPlan::execute`] across the whole thermal
    /// trajectory (including throttle transitions, which change the DVFS
    /// frequency and miss the memo), and every query is accounted for as
    /// either a replay hit or a first-visit recording walk.
    #[test]
    fn fast_forward_matches_full_walk(
        channels in 4usize..48,
        depth in 1usize..4,
        cuts in proptest::collection::vec(0usize..16, 0..3),
        engines in proptest::collection::vec(0usize..2, 1..4),
        sync_us in 0.0f64..500.0,
        query_us in 0.0f64..200.0,
        ambient in 20.0f64..40.0,
        queries in 1usize..80,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, depth), DataType::I8);
        let schedule = random_schedule(&graph, &cuts, &engines, sync_us, query_us);
        let plan = QueryPlan::new(&soc, &graph, &schedule);

        let mut walk_state = soc.new_state(ambient);
        let mut memo_state = soc.new_state(ambient);
        let mut memo = ExecMemo::new();
        for q in 0..queries {
            let walked = plan.execute(&mut walk_state);
            let replayed = plan.execute_memo(&mut memo_state, &mut memo);
            assert_bit_identical(&walked, &replayed);
            prop_assert_eq!(&walk_state, &memo_state, "query {}", q);
        }
        prop_assert_eq!(
            memo.hits() + memo.operating_points() as u64,
            queries as u64,
            "every query is either a replay or a recording walk"
        );
    }
}

/// Builds `k` heterogeneous device states: ambients spread over the
/// throttle ramp and battery lanes whose state of charge straddles the
/// power-saving threshold, so lanes disperse across DVFS operating
/// points as the run evolves.
fn heterogeneous_states(soc: &Soc, k: usize, ambients: &[f64], socs: &[f64]) -> Vec<SocState> {
    (0..k)
        .map(|i| {
            let ambient = ambients[i % ambients.len()];
            if i % 3 == 2 {
                soc.new_state_on_battery(
                    ambient,
                    soc_sim::battery::BatteryState::new(
                        soc_sim::battery::BatterySpec::default(),
                        socs[i % socs.len()],
                    ),
                )
            } else {
                soc.new_state(ambient)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batched lockstep executor's bit-identity contract: every lane
    /// of a [`BatchPlan`] over heterogeneous device states — mixed
    /// ambients, battery lanes crossing the power-saving threshold —
    /// matches a fresh scalar [`QueryPlan::execute`] of the same device
    /// at 0 ULPs (latency, breakdown, energy, DVFS/thermal trajectory),
    /// for K in {1, 2, 4, 8, 16}.
    #[test]
    fn batched_lanes_match_scalar_execute(
        channels in 4usize..48,
        depth in 1usize..4,
        cuts in proptest::collection::vec(0usize..16, 0..3),
        engines in proptest::collection::vec(0usize..2, 1..4),
        sync_us in 0.0f64..500.0,
        query_us in 0.0f64..200.0,
        k_index in 0usize..5,
        ambients in proptest::collection::vec(20.0f64..45.0, 1..6),
        battery_socs in proptest::collection::vec(0.05f64..1.0, 1..4),
        queries in 1usize..40,
    ) {
        let k = [1usize, 2, 4, 8, 16][k_index];
        let soc = soc();
        let graph = retype(&small_graph(channels, depth), DataType::I8);
        let schedule = random_schedule(&graph, &cuts, &engines, sync_us, query_us);
        let plan = std::sync::Arc::new(QueryPlan::new(&soc, &graph, &schedule));

        let states = heterogeneous_states(&soc, k, &ambients, &battery_socs);
        let batch_plan = soc_sim::plan_batch::BatchPlan::broadcast(std::sync::Arc::clone(&plan), k);
        let mut batch = soc_sim::plan_batch::BatchState::gather(&states);
        let mut scalar: Vec<SocState> = states;
        for q in 0..queries {
            let results = batch_plan.execute(&mut batch);
            for (lane, state) in scalar.iter_mut().enumerate() {
                let reference = plan.execute(state);
                assert_bit_identical(&reference, &results[lane]);
            }
            prop_assert_eq!(&batch.scatter(), &scalar, "state drift at query {}", q);
        }
    }

    /// The batched fast path ([`BatchPlan::execute_latencies`]) advances
    /// lane states identically to the full [`BatchPlan::execute`] and
    /// reports the same latencies.
    #[test]
    fn batched_fast_path_matches_full_execute(
        channels in 4usize..32,
        k_index in 0usize..5,
        ambients in proptest::collection::vec(20.0f64..45.0, 1..6),
        queries in 1usize..40,
    ) {
        let k = [1usize, 2, 4, 8, 16][k_index];
        let soc = soc();
        let graph = retype(&small_graph(channels, 2), DataType::I8);
        let schedule = Schedule::single(&graph, EngineId(1), DataType::I8, 40.0);
        let plan = std::sync::Arc::new(QueryPlan::new(&soc, &graph, &schedule));

        let states = heterogeneous_states(&soc, k, &ambients, &[0.5]);
        let batch_plan = soc_sim::plan_batch::BatchPlan::broadcast(std::sync::Arc::clone(&plan), k);
        let mut full = soc_sim::plan_batch::BatchState::gather(&states);
        let mut fast = soc_sim::plan_batch::BatchState::gather(&states);
        for _ in 0..queries {
            let results = batch_plan.execute(&mut full);
            let latencies = fast_path_latencies(&batch_plan, &mut fast);
            for (r, l) in results.iter().zip(&latencies) {
                prop_assert_eq!(r.latency, *l);
            }
        }
        prop_assert_eq!(full.scatter(), fast.scatter());
    }

    /// The `PlanDelta`-relowered batch path: K knob variants evaluated in
    /// one pass ([`SweepPlan::relower_query_batch`]) match per-delta
    /// scalar re-lowerings ([`SweepPlan::relower_query`]) lane by lane at
    /// 0 ULPs, over heterogeneous lane states.
    #[test]
    fn relowered_batch_matches_scalar_relowerings(
        channels in 4usize..48,
        depth in 1usize..4,
        cuts in proptest::collection::vec(0usize..16, 0..3),
        engines in proptest::collection::vec(0usize..2, 1..4),
        sync_us in 0.0f64..500.0,
        query_us in 0.0f64..200.0,
        sync_knobs in proptest::collection::vec(0.0f64..500.0, 1..9),
        query_knobs in proptest::collection::vec(0.0f64..300.0, 1..9),
        ambients in proptest::collection::vec(20.0f64..45.0, 1..6),
        queries in 1usize..30,
    ) {
        let soc = soc();
        let graph = retype(&small_graph(channels, depth), DataType::I8);
        let schedule = random_schedule(&graph, &cuts, &engines, sync_us, query_us);
        let sweep = SweepPlan::new(&soc, &graph, &schedule);

        // Interleave the two knob kinds so adjacent lanes differ in
        // delta *kind*, not just value.
        let deltas: Vec<PlanDelta> = sync_knobs
            .iter()
            .map(|&v| PlanDelta::SyncOverheadUs(v))
            .chain(query_knobs.iter().map(|&v| PlanDelta::QueryOverheadUs(v)))
            .collect();
        let batch_plan = sweep.relower_query_batch(&deltas);
        prop_assert_eq!(batch_plan.lanes(), deltas.len());

        let states = heterogeneous_states(&soc, deltas.len(), &ambients, &[0.15, 0.8]);
        let mut batch = soc_sim::plan_batch::BatchState::gather(&states);
        let mut scalar: Vec<(QueryPlan, SocState)> = deltas
            .iter()
            .zip(&states)
            .map(|(&delta, state)| (sweep.relower_query(delta), state.clone()))
            .collect();
        for q in 0..queries {
            let results = batch_plan.execute(&mut batch);
            for (lane, (lane_plan, state)) in scalar.iter_mut().enumerate() {
                let reference = lane_plan.execute(state);
                assert_bit_identical(&reference, &results[lane]);
            }
            prop_assert_eq!(
                &batch.scatter(),
                &scalar.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
                "state drift at query {}", q
            );
        }
    }
}

/// Borrow-friendly wrapper: copies the fast-path latency slice out of the
/// batch state so callers can keep using the state afterwards.
fn fast_path_latencies(
    plan: &soc_sim::plan_batch::BatchPlan,
    batch: &mut soc_sim::plan_batch::BatchState,
) -> Vec<SimDuration> {
    plan.execute_latencies(batch).to_vec()
}

/// At a thermal fixed point (an envelope that never throttles) the DVFS
/// frequency is pinned, so after the first query's recording walk every
/// subsequent query replays from the memo: O(1) in the op count.
#[test]
fn steady_state_fast_forward_replays_at_thermal_fixed_point() {
    let mut soc = soc();
    soc.thermal.throttle_onset_c = 10_000.0;
    soc.thermal.throttle_full_c = 20_000.0;
    let graph = retype(&small_graph(24, 3), DataType::I8);
    let schedule = Schedule::single(&graph, EngineId(1), DataType::I8, 25.0);
    let plan = QueryPlan::new(&soc, &graph, &schedule);

    let mut walk_state = soc.new_state(22.0);
    let mut memo_state = soc.new_state(22.0);
    let mut memo = ExecMemo::new();
    for _ in 0..200 {
        assert_bit_identical(
            &plan.execute(&mut walk_state),
            &plan.execute_memo(&mut memo_state, &mut memo),
        );
    }
    assert_eq!(walk_state, memo_state);
    assert_eq!(memo.operating_points(), 1, "unthrottled run stays at one operating point");
    assert_eq!(memo.hits(), 199, "every query after the first replays");
}

#[test]
fn estimate_matches_plan_lowering() {
    // `estimate_query_secs` routes through the same StreamPlan lowering
    // the offline plan uses; a cold single-stream query agrees closely.
    let soc = soc();
    let graph = retype(&small_graph(24, 2), DataType::I8);
    let schedule = Schedule::single(&graph, EngineId(0), DataType::I8, 0.0);
    let est = soc_sim::executor::estimate_query_secs(&soc, &graph, &schedule);
    let lowered = soc_sim::plan::StreamPlan::lower(&soc, &graph, &schedule).sample_secs(1.0, 1);
    assert_eq!(est.to_bits(), lowered.to_bits(), "estimator must be the plan lowering verbatim");
}
