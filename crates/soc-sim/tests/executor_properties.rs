//! Property tests over the executor: physical invariants the simulator
//! must never violate regardless of workload or device.

use nn_graph::builder::GraphBuilder;
use nn_graph::graph::retype;
use nn_graph::models::ModelId;
use nn_graph::{Activation, DataType, Graph, Shape};
use proptest::prelude::*;
use soc_sim::catalog::ChipId;
use soc_sim::executor::{estimate_query_secs, run_offline, run_query};
use soc_sim::schedule::Schedule;
use soc_sim::time::SimDuration;

fn small_graph(channels: usize) -> Graph {
    let mut b = GraphBuilder::new("t", Shape::nhwc(16, 16, 3), DataType::F32);
    let c = b.conv2d("c", b.input_id(), 3, 1, channels, Activation::Relu6);
    let p = b.global_avg_pool("gap", c);
    let _ = b.fully_connected("fc", p, 10, Activation::None);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn latency_positive_and_finite_on_every_chip(
        chip_idx in 0usize..8,
        channels in 4usize..64,
    ) {
        let soc = ChipId::ALL[chip_idx].build();
        let graph = retype(&small_graph(channels), DataType::I8);
        let sched = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &graph, &sched, &mut state);
        prop_assert!(r.latency > SimDuration::ZERO);
        prop_assert!(r.latency < SimDuration::from_secs(10), "absurd latency {}", r.latency);
    }

    #[test]
    fn wider_convs_never_get_faster(
        chip_idx in 0usize..8,
        base in 4usize..32,
        extra in 1usize..32,
    ) {
        let soc = ChipId::ALL[chip_idx].build();
        let narrow = retype(&small_graph(base), DataType::I8);
        let wide = retype(&small_graph(base + extra), DataType::I8);
        let sn = Schedule::single(&narrow, soc.cpu(), DataType::I8, 0.0);
        let sw = Schedule::single(&wide, soc.cpu(), DataType::I8, 0.0);
        prop_assert!(
            estimate_query_secs(&soc, &wide, &sw)
                >= estimate_query_secs(&soc, &narrow, &sn) * 0.999
        );
    }

    #[test]
    fn hotter_start_never_faster(
        ambient in 20.0f64..45.0,
        hotter in 1.0f64..40.0,
    ) {
        let soc = ChipId::Snapdragon888.build();
        let graph = retype(&small_graph(32), DataType::I8);
        let sched = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
        let mut cool = soc.new_state(ambient);
        let mut hot = soc.new_state(ambient + hotter);
        let rc = run_query(&soc, &graph, &sched, &mut cool);
        let rh = run_query(&soc, &graph, &sched, &mut hot);
        prop_assert!(rh.latency >= rc.latency);
        prop_assert!(rh.freq_factor <= rc.freq_factor);
    }

    #[test]
    fn offline_duration_scales_with_samples(
        samples in 64u64..2048,
    ) {
        let soc = ChipId::Exynos2100.build();
        let graph = retype(&small_graph(16), DataType::I8);
        let sched = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
        let mut s1 = soc.new_state(22.0);
        let r1 = run_offline(&soc, &graph, std::slice::from_ref(&sched), &mut s1, samples, 32);
        let mut s2 = soc.new_state(22.0);
        let r2 = run_offline(&soc, &graph, &[sched], &mut s2, samples * 2, 32);
        prop_assert!(r2.duration >= r1.duration);
        // Throughput is roughly sample-count independent (steady state).
        let ratio = r2.throughput_fps / r1.throughput_fps;
        prop_assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
    }
}

#[test]
fn estimator_matches_cold_run_query() {
    // The estimator must agree with an actual cold (unthrottled) query.
    for chip in ChipId::ALL {
        let soc = chip.build();
        let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::I8);
        let sched = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
        let est = estimate_query_secs(&soc, &graph, &sched);
        let mut state = soc.new_state(22.0);
        let r = run_query(&soc, &graph, &sched, &mut state);
        let measured = r.latency.as_secs_f64();
        assert!(
            (est - measured).abs() / measured < 1e-6,
            "{chip:?}: estimate {est} vs cold run {measured}"
        );
    }
}

#[test]
fn energy_conservation_across_modes() {
    // Energy recorded must equal average power x time within rounding,
    // regardless of scenario.
    let soc = ChipId::Snapdragon888.build();
    let graph = retype(&small_graph(32), DataType::I8);
    let sched = Schedule::single(&graph, soc.cpu(), DataType::I8, 0.0);
    let mut state = soc.new_state(22.0);
    for _ in 0..100 {
        let _ = run_query(&soc, &graph, &sched, &mut state);
    }
    let joules = state.energy.total_joules();
    let busy = state.energy.busy_time().as_secs_f64();
    assert!(joules > 0.0 && busy > 0.0);
    let avg_w = joules / busy;
    // CPU active power is 2.8 W + idle share; average must be in a sane band.
    assert!((1.0..10.0).contains(&avg_w), "avg power {avg_w} W");
}
