//! Physical-plausibility tests for the lumped-RC thermal model: sustained
//! load heats monotonically toward the RC asymptote, throttling strictly
//! cuts effective frequency, and a long cooldown restores the initial
//! state.

use soc_sim::thermal::{ThermalSpec, ThermalState};
use soc_sim::time::SimDuration;

const AMBIENT_C: f64 = 22.0;

fn state() -> ThermalState {
    ThermalState::new(ThermalSpec::default(), AMBIENT_C)
}

#[test]
fn sustained_load_rises_monotonically_toward_asymptote() {
    let mut s = state();
    let power_w = 5.0;
    let asymptote = ThermalSpec::default().steady_state_c(power_w, AMBIENT_C);
    let mut previous = s.temperature_c();
    for step in 0..500 {
        s.advance(power_w, SimDuration::from_secs(2));
        let t = s.temperature_c();
        assert!(
            t > previous,
            "step {step}: temperature must strictly rise under sustained load ({previous} -> {t})"
        );
        assert!(
            t < asymptote,
            "step {step}: temperature {t} must stay below the RC asymptote {asymptote}"
        );
        previous = t;
    }
    // 1000 s is many time constants (tau = 36 s): effectively converged.
    assert!(
        asymptote - s.temperature_c() < 0.01,
        "after many time constants the trajectory must sit on the asymptote (got {}, want {asymptote})",
        s.temperature_c()
    );
}

#[test]
fn approach_rate_slows_as_asymptote_nears() {
    // Exponential approach: equal time steps yield strictly shrinking
    // temperature increments.
    let mut s = state();
    let mut deltas = Vec::new();
    let mut previous = s.temperature_c();
    for _ in 0..50 {
        s.advance(5.0, SimDuration::from_secs(5));
        deltas.push(s.temperature_c() - previous);
        previous = s.temperature_c();
    }
    assert!(
        deltas.windows(2).all(|w| w[1] < w[0]),
        "increments must strictly shrink: {deltas:?}"
    );
}

#[test]
fn throttling_strictly_reduces_effective_frequency() {
    let spec = ThermalSpec::default();
    let mut s = state();
    assert_eq!(s.freq_factor(), 1.0, "cold device runs at full frequency");
    // Drive the die past the throttle onset with a heavy load.
    let mut last_factor = 1.0;
    let mut saw_throttle = false;
    for _ in 0..2000 {
        s.advance(7.0, SimDuration::from_secs(1));
        let f = s.freq_factor();
        assert!(f <= last_factor + 1e-12, "frequency never rises while heating");
        if s.temperature_c() > spec.throttle_onset_c {
            assert!(s.is_throttling(), "above onset the governor must engage");
            assert!(f < 1.0, "throttled frequency is strictly below nominal");
            saw_throttle = true;
        }
        last_factor = f;
    }
    assert!(saw_throttle, "7 W must push past the {} °C onset", spec.throttle_onset_c);
    // 7 W steady state = 22 + 7*12 = 106 °C > full throttle: the factor
    // bottoms out at the floor, never below.
    assert_eq!(s.freq_factor(), spec.min_freq_factor);
}

#[test]
fn deeper_heat_means_lower_frequency_within_ramp() {
    // Within the (onset, full) window, hotter is strictly slower.
    let spec = ThermalSpec::default();
    let mut previous_factor = f64::INFINITY;
    let mut checked = 0;
    for decidegrees in (0..=200).step_by(5) {
        let temp = spec.throttle_onset_c + f64::from(decidegrees) / 10.0;
        if temp >= spec.throttle_full_c {
            break;
        }
        let mut s = state();
        // Closed-form inverse: reach `temp` exactly via its steady state.
        let power = (temp - AMBIENT_C) / spec.resistance_c_per_w;
        s.advance(power, SimDuration::from_secs(1_000_000));
        if s.temperature_c() > spec.throttle_onset_c + 1e-9 {
            let f = s.freq_factor();
            assert!(f < previous_factor, "{temp} °C: {f} not below {previous_factor}");
            previous_factor = f;
            checked += 1;
        }
    }
    assert!(checked > 10, "ramp window must be sampled, got {checked}");
}

#[test]
fn cooldown_restores_initial_state() {
    let mut s = state();
    s.advance(7.0, SimDuration::from_secs(3600));
    assert!(s.is_throttling(), "sanity: the device heated up");
    // A long idle returns the die to ambient equilibrium...
    s.cooldown(SimDuration::from_secs(3600));
    let cold = state();
    assert!(
        (s.temperature_c() - cold.temperature_c()).abs() < 1e-6,
        "cooldown must return to ambient: {} vs {}",
        s.temperature_c(),
        cold.temperature_c()
    );
    // ...and full frequency.
    assert_eq!(s.freq_factor(), 1.0);
    assert!(!s.is_throttling());
    assert_eq!(s.ambient_c(), cold.ambient_c());
}

#[test]
fn cooldown_never_undershoots_ambient() {
    let mut s = state();
    s.advance(4.0, SimDuration::from_secs(100));
    for _ in 0..100 {
        s.cooldown(SimDuration::from_secs(60));
        assert!(s.temperature_c() >= AMBIENT_C - 1e-9, "die cannot cool below ambient");
    }
}
