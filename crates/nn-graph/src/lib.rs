//! Operator-graph IR, cost model and model zoo for the MLPerf Mobile
//! reproduction.
//!
//! The crate provides a *performance-oriented* neural-network
//! representation: graphs carry shapes, element types and per-op
//! arithmetic/memory costs, but no weights. This is the unit the mobile
//! inference stack schedules — vendor SDKs and delegates partition these
//! graphs across SoC engines, and the simulator costs each placement.
//!
//! # Examples
//!
//! ```
//! use nn_graph::models::ModelId;
//!
//! let graph = ModelId::MobileNetEdgeTpu.build();
//! println!(
//!     "{}: {} ops, {:.2} GMACs, {:.1}M params",
//!     graph.name(),
//!     graph.len(),
//!     graph.gmacs(),
//!     graph.parameter_count() as f64 / 1e6,
//! );
//! # assert!(graph.gmacs() > 0.1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod cost;
pub mod graph;
pub mod models;
pub mod op;
pub mod serialize;
pub mod tensor;

pub use builder::GraphBuilder;
pub use cost::OpCost;
pub use graph::{Graph, GraphError, Node, NodeId};
pub use op::{Activation, Op, OpClass, Padding};
pub use tensor::{DataType, Shape, TensorDesc};
