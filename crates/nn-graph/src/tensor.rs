//! Tensor shapes and element types for the operator graph IR.
//!
//! The IR is a *performance* representation: tensors carry shapes and
//! element types but no data. Byte sizes are derived per [`DataType`] so the
//! same graph can be costed under different numerics (FP32 reference vs the
//! INT8/FP16 deployments the paper's submitters use).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
///
/// MLPerf Mobile submissions span FP32 reference models, FP16 GPU
/// deployments and INT8/UINT8 quantized NPU deployments (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit IEEE float — the reference numerics for all frozen models.
    F32,
    /// 16-bit IEEE float — used by GPU delegates, notably for MobileBERT.
    F16,
    /// Signed 8-bit affine-quantized integer (e.g. ENN, OpenVINO).
    I8,
    /// Unsigned 8-bit affine-quantized integer (e.g. SNPE, NNAPI).
    U8,
    /// 32-bit integer, used for indices and quantized accumulators.
    I32,
}

impl DataType {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F16 => 2,
            DataType::I8 | DataType::U8 => 1,
        }
    }

    /// Whether this is a floating-point type.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F16)
    }

    /// Whether this is an 8-bit quantized type.
    #[must_use]
    pub const fn is_quantized(self) -> bool {
        matches!(self, DataType::I8 | DataType::U8)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::F32 => "FP32",
            DataType::F16 => "FP16",
            DataType::I8 => "INT8",
            DataType::U8 => "UINT8",
            DataType::I32 => "INT32",
        };
        f.write_str(s)
    }
}

/// Shape of a tensor, stored as explicit dimensions.
///
/// Rank is at most 4 in every MLPerf Mobile reference model; we allow any
/// rank but provide NHWC convenience accessors for the common case.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never valid
    /// in the reference models and almost always indicate a builder bug.
    #[must_use]
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// A scalar (rank-0) shape.
    #[must_use]
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// NHWC image tensor with batch 1.
    #[must_use]
    pub fn nhwc(h: usize, w: usize, c: usize) -> Self {
        Shape::new(&[1, h, w, c])
    }

    /// Sequence tensor `[1, len, hidden]` used by the NLP model.
    #[must_use]
    pub fn seq(len: usize, hidden: usize) -> Self {
        Shape::new(&[1, len, hidden])
    }

    /// The dimensions as a slice.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for scalars).
    #[must_use]
    pub fn elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Byte size under the given element type.
    #[must_use]
    pub fn byte_size(&self, dtype: DataType) -> usize {
        self.elements() * dtype.size_bytes()
    }

    /// Height for an NHWC tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    #[must_use]
    pub fn height(&self) -> usize {
        assert_eq!(self.rank(), 4, "height() requires an NHWC tensor");
        self.0[1]
    }

    /// Width for an NHWC tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    #[must_use]
    pub fn width(&self) -> usize {
        assert_eq!(self.rank(), 4, "width() requires an NHWC tensor");
        self.0[2]
    }

    /// Channel count: the last dimension.
    ///
    /// # Panics
    ///
    /// Panics on scalars.
    #[must_use]
    pub fn channels(&self) -> usize {
        *self.0.last().expect("channels() requires rank >= 1")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

/// A typed tensor descriptor: shape plus element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorDesc {
    /// Shape of the tensor.
    pub shape: Shape,
    /// Element type.
    pub dtype: DataType,
}

impl TensorDesc {
    /// Creates a descriptor.
    #[must_use]
    pub fn new(shape: Shape, dtype: DataType) -> Self {
        TensorDesc { shape, dtype }
    }

    /// Total byte size of the described tensor.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.shape.byte_size(self.dtype)
    }

    /// The same shape reinterpreted under a different element type, as
    /// happens when a backend deploys the model at lower precision.
    #[must_use]
    pub fn with_dtype(&self, dtype: DataType) -> Self {
        TensorDesc { shape: self.shape.clone(), dtype }
    }
}

impl fmt::Display for TensorDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dtype, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::F16.size_bytes(), 2);
        assert_eq!(DataType::I8.size_bytes(), 1);
        assert_eq!(DataType::U8.size_bytes(), 1);
        assert_eq!(DataType::I32.size_bytes(), 4);
    }

    #[test]
    fn dtype_classification() {
        assert!(DataType::F32.is_float());
        assert!(DataType::F16.is_float());
        assert!(!DataType::I8.is_float());
        assert!(DataType::I8.is_quantized());
        assert!(DataType::U8.is_quantized());
        assert!(!DataType::F16.is_quantized());
        assert!(!DataType::I32.is_quantized());
    }

    #[test]
    fn shape_elements_and_bytes() {
        let s = Shape::nhwc(224, 224, 3);
        assert_eq!(s.elements(), 224 * 224 * 3);
        assert_eq!(s.byte_size(DataType::F32), 224 * 224 * 3 * 4);
        assert_eq!(s.byte_size(DataType::U8), 224 * 224 * 3);
    }

    #[test]
    fn shape_accessors() {
        let s = Shape::nhwc(300, 320, 24);
        assert_eq!(s.height(), 300);
        assert_eq!(s.width(), 320);
        assert_eq!(s.channels(), 24);
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.elements(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[1, 0, 3]);
    }

    #[test]
    fn seq_shape() {
        let s = Shape::seq(384, 512);
        assert_eq!(s.dims(), &[1, 384, 512]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[1, 2, 3]).to_string(), "[1x2x3]");
        assert_eq!(DataType::U8.to_string(), "UINT8");
        let d = TensorDesc::new(Shape::new(&[4]), DataType::F16);
        assert_eq!(d.to_string(), "FP16[4]");
    }

    #[test]
    fn tensor_desc_retype() {
        let d = TensorDesc::new(Shape::nhwc(8, 8, 16), DataType::F32);
        let q = d.with_dtype(DataType::I8);
        assert_eq!(q.byte_size() * 4, d.byte_size());
        assert_eq!(q.shape, d.shape);
    }
}
