//! Graph serialization.
//!
//! Submissions ship their (possibly optimized) deployed models for audit
//! review (paper Section 6.2: "all of the results are independently
//! audited, along with any modified models and code"). Graphs serialize to
//! JSON with full structural fidelity so the equivalence checker can run
//! on the wire format.

use crate::graph::Graph;

/// Serializes a graph to JSON.
///
/// # Errors
///
/// Returns the underlying serializer error (practically unreachable for
/// these types).
pub fn to_json(graph: &Graph) -> Result<String, serde_json::Error> {
    serde_json::to_string(graph)
}

/// Deserializes a graph from JSON and re-validates its DAG invariants.
///
/// # Errors
///
/// Returns a JSON error for malformed input, or a custom error when the
/// parsed graph violates the topological invariants (a tampered file).
pub fn from_json(text: &str) -> Result<Graph, Box<dyn std::error::Error + Send + Sync>> {
    let graph: Graph = serde_json::from_str(text)?;
    crate::graph::validate(&graph)?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;

    #[test]
    fn round_trip_every_model() {
        for model in ModelId::ALL {
            let g = model.build();
            let text = to_json(&g).unwrap();
            let parsed = from_json(&text).unwrap();
            assert_eq!(parsed.len(), g.len(), "{model}");
            assert_eq!(parsed.total_cost(), g.total_cost(), "{model}");
            assert_eq!(parsed.name(), g.name(), "{model}");
            assert_eq!(parsed.input(), g.input(), "{model}");
        }
    }

    #[test]
    fn costs_survive_serialization_exactly() {
        let g = ModelId::MobileNetEdgeTpu.build();
        let parsed = from_json(&to_json(&g).unwrap()).unwrap();
        for (a, b) in g.iter().zip(parsed.iter()) {
            assert_eq!(a.cost, b.cost, "{}", a.name);
            assert_eq!(a.output, b.output, "{}", a.name);
        }
    }

    #[test]
    fn tampered_topology_rejected() {
        let g = ModelId::MobileNetEdgeTpu.build();
        let mut text = to_json(&g).unwrap();
        // Forge a forward reference: make node 1 consume node 9999.
        text = text.replacen("\"inputs\":[0]", "\"inputs\":[9999]", 1);
        let result = from_json(&text);
        assert!(result.is_err(), "forward reference must be rejected");
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_json("{\"not\": \"a graph\"}").is_err());
        assert!(from_json("").is_err());
    }

    #[test]
    fn serialized_size_is_sane() {
        // MobileBERT is the largest graph (~800 nodes); its JSON should be
        // well under a few megabytes.
        let g = ModelId::MobileBert.build();
        let text = to_json(&g).unwrap();
        assert!(text.len() < 2_000_000, "{} bytes", text.len());
    }
}
