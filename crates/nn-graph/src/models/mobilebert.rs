//! MobileBERT — the question-answering reference model.
//!
//! A compact, task-agnostic BERT (Sun et al., 2020) for resource-limited
//! devices: 24 transformer layers with 512-wide inter-block features
//! squeezed through 128-wide intra-block bottlenecks, 4 attention heads and
//! a stacked 4x feed-forward network. ~25M parameters, maximum sequence
//! length 384 (paper Section 3.2), SQuAD v1.1 span-extraction head.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// Maximum sequence length the model was trained with.
pub const SEQ_LEN: usize = 384;
/// WordPiece vocabulary size.
pub const VOCAB: usize = 30522;
/// Inter-block (outer) hidden width.
pub const HIDDEN: usize = 512;
/// Intra-block bottleneck width.
pub const BOTTLENECK: usize = 128;
/// Attention heads.
pub const HEADS: usize = 4;
/// Transformer layers.
pub const LAYERS: usize = 24;
/// Stacked feed-forward sub-layers per block.
pub const FFN_STACK: usize = 4;

/// Builds the MobileBERT graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "mobilebert",
        Shape::new(&[1, SEQ_LEN]), // token ids
        DataType::F32,
    );
    let emb = b.embedding("embeddings", b.input_id(), VOCAB, BOTTLENECK, SEQ_LEN);
    let mut x = b.seq_dense("embed_proj", emb, HIDDEN, Activation::None);
    x = b.layer_norm("embed_ln", x);

    for layer in 0..LAYERS {
        x = encoder_layer(&mut b, &format!("layer{layer}"), x);
    }

    // SQuAD head: two logits (answer start, answer end) per token.
    let span = b.seq_dense("qa_outputs", x, 2, Activation::None);
    let _probs = b.softmax("span_probs", span);
    b.finish()
}

/// One MobileBERT encoder block.
fn encoder_layer(b: &mut GraphBuilder, name: &str, input: NodeId) -> NodeId {
    let head_dim = BOTTLENECK / HEADS;

    // Bottleneck in: 512 -> 128.
    let bn = b.seq_dense(&format!("{name}/bottleneck_in"), input, BOTTLENECK, Activation::None);

    // Multi-head self-attention in the bottleneck width.
    let q = b.seq_dense(&format!("{name}/q"), bn, BOTTLENECK, Activation::None);
    let k = b.seq_dense(&format!("{name}/k"), bn, BOTTLENECK, Activation::None);
    let v = b.seq_dense(&format!("{name}/v"), bn, BOTTLENECK, Activation::None);
    let qh = b.reshape(&format!("{name}/q_heads"), q, Shape::new(&[HEADS, SEQ_LEN, head_dim]));
    let kt = b.reshape(&format!("{name}/k_t"), k, Shape::new(&[HEADS, head_dim, SEQ_LEN]));
    let vh = b.reshape(&format!("{name}/v_heads"), v, Shape::new(&[HEADS, SEQ_LEN, head_dim]));
    let scores = b.matmul(&format!("{name}/scores"), qh, kt);
    let attn = b.softmax(&format!("{name}/attn"), scores);
    let ctx = b.matmul(&format!("{name}/context"), attn, vh);
    let merged = b.reshape(&format!("{name}/merge"), ctx, Shape::seq(SEQ_LEN, BOTTLENECK));
    let proj = b.seq_dense(&format!("{name}/attn_out"), merged, BOTTLENECK, Activation::None);
    let res1 = b.add(&format!("{name}/attn_res"), bn, proj);
    let mut y = b.layer_norm(&format!("{name}/attn_ln"), res1);

    // Stacked FFN: 4x (128 -> 512 -> 128) with residuals.
    for i in 0..FFN_STACK {
        let up = b.seq_dense(&format!("{name}/ffn{i}/up"), y, HIDDEN, Activation::Gelu);
        let down = b.seq_dense(&format!("{name}/ffn{i}/down"), up, BOTTLENECK, Activation::None);
        let res = b.add(&format!("{name}/ffn{i}/res"), y, down);
        y = b.layer_norm(&format!("{name}/ffn{i}/ln"), res);
    }

    // Bottleneck out: 128 -> 512, residual with the 512-wide block input.
    let up = b.seq_dense(&format!("{name}/bottleneck_out"), y, HIDDEN, Activation::None);
    let res = b.add(&format!("{name}/block_res"), input, up);
    b.layer_norm(&format!("{name}/block_ln"), res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::op::OpClass;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn parameter_count_matches_paper() {
        // Paper Table 1: 25M params.
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((18.0..28.0).contains(&params), "params {params:.2}M out of range");
    }

    #[test]
    fn heaviest_model_in_the_suite() {
        let bert = build().gmacs();
        let seg = crate::models::deeplab_v3plus::build().gmacs();
        assert!(bert > seg, "MobileBERT {bert:.2} should exceed DeepLab {seg:.2}");
        assert!((4.0..12.0).contains(&bert), "gmacs {bert:.2} out of range");
    }

    #[test]
    fn has_24_layers_of_attention() {
        let g = build();
        let softmaxes = g
            .iter()
            .filter(|n| n.class() == OpClass::Softmax && n.name.contains("attn"))
            .count();
        assert_eq!(softmaxes, LAYERS);
        let layernorms = g.iter().filter(|n| n.class() == OpClass::LayerNorm).count();
        // Per layer: attn_ln + 4 ffn ln + block_ln = 6, plus embed_ln.
        assert_eq!(layernorms, LAYERS * (2 + FFN_STACK) + 1);
    }

    #[test]
    fn span_output_shape() {
        let g = build();
        assert_eq!(g.output_node().output.shape.dims(), &[1, SEQ_LEN, 2]);
    }

    #[test]
    fn embedding_table_dominates_single_tensor_weights() {
        let g = build();
        let emb = g.iter().find(|n| n.class() == OpClass::Embedding).unwrap();
        assert_eq!(emb.cost.weight_elements, (VOCAB * BOTTLENECK) as u64);
    }
}
