//! The MLPerf Mobile model zoo (paper Table 1).
//!
//! Five reference models across four tasks. Each is constructed layer by
//! layer with realistic shapes so parameter and MAC counts line up with the
//! published figures; see each submodule for architecture notes.

pub mod common;
pub mod deeplab_v3plus;
pub mod edsr_mobile;
pub mod mobile_rnnt;
pub mod mobilebert;
pub mod mobiledet;
pub mod mobilenet_edgetpu;
pub mod ssd_mobilenet_v2;

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for a reference model in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelId {
    /// Image classification, v0.7 + v1.0 (224x224 ImageNet).
    MobileNetEdgeTpu,
    /// Object detection, v0.7 (300x300 COCO).
    SsdMobileNetV2,
    /// Object detection, v1.0 (320x320 COCO).
    MobileDetSsd,
    /// Semantic segmentation, v0.7 + v1.0 (512x512 ADE20K).
    DeepLabV3Plus,
    /// Question answering, v0.7 + v1.0 (SQuAD v1.1, seq len 384).
    MobileBert,
    /// Speech recognition — the in-progress extension task (Appendix E).
    MobileRnnt,
    /// 2x super-resolution — the future-work extension task (Appendix E).
    EdsrMobile,
}

impl ModelId {
    /// All models in the zoo, including the extension tasks.
    pub const ALL: [ModelId; 7] = [
        ModelId::MobileNetEdgeTpu,
        ModelId::SsdMobileNetV2,
        ModelId::MobileDetSsd,
        ModelId::DeepLabV3Plus,
        ModelId::MobileBert,
        ModelId::MobileRnnt,
        ModelId::EdsrMobile,
    ];

    /// The five models of the published v0.7/v1.0 suites (paper Table 1).
    pub const CORE_SUITE: [ModelId; 5] = [
        ModelId::MobileNetEdgeTpu,
        ModelId::SsdMobileNetV2,
        ModelId::MobileDetSsd,
        ModelId::DeepLabV3Plus,
        ModelId::MobileBert,
    ];

    /// Builds the FP32 reference graph for this model.
    #[must_use]
    pub fn build(self) -> Graph {
        match self {
            ModelId::MobileNetEdgeTpu => mobilenet_edgetpu::build(),
            ModelId::SsdMobileNetV2 => ssd_mobilenet_v2::build(),
            ModelId::MobileDetSsd => mobiledet::build(),
            ModelId::DeepLabV3Plus => deeplab_v3plus::build(),
            ModelId::MobileBert => mobilebert::build(),
            ModelId::MobileRnnt => mobile_rnnt::build(),
            ModelId::EdsrMobile => edsr_mobile::build(),
        }
    }

    /// Canonical model name as used in result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelId::MobileNetEdgeTpu => "MobileNetEdgeTPU",
            ModelId::SsdMobileNetV2 => "SSD-MobileNet v2",
            ModelId::MobileDetSsd => "MobileDET-SSD",
            ModelId::DeepLabV3Plus => "DeepLab v3+ MobileNet v2",
            ModelId::MobileBert => "MobileBERT",
            ModelId::MobileRnnt => "Mobile RNN-T",
            ModelId::EdsrMobile => "EDSR-mobile x2",
        }
    }

    /// Nominal parameter count from paper Table 1, in millions.
    #[must_use]
    pub fn nominal_params_m(self) -> f64 {
        match self {
            ModelId::MobileNetEdgeTpu => 4.0,
            ModelId::SsdMobileNetV2 => 17.0,
            ModelId::MobileDetSsd => 4.0,
            ModelId::DeepLabV3Plus => 2.0,
            ModelId::MobileBert => 25.0,
            // Extension models: no published counts; our design targets.
            ModelId::MobileRnnt => 23.0,
            ModelId::EdsrMobile => 0.12,
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build() {
        for id in ModelId::ALL {
            let g = id.build();
            assert!(!g.is_empty(), "{id} builds an empty graph");
            assert!(crate::graph::validate(&g).is_ok(), "{id} fails validation");
        }
    }

    #[test]
    fn params_within_2x_of_nominal() {
        for id in ModelId::ALL {
            let params_m = id.build().parameter_count() as f64 / 1e6;
            let nominal = id.nominal_params_m();
            let ratio = params_m / nominal;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{id}: {params_m:.2}M params vs nominal {nominal}M"
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = ModelId::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelId::ALL.len());
    }
}
