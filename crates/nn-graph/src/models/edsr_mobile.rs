//! EDSR-mobile — the 2x super-resolution model for the task the paper
//! lists as future work (Appendix E: "super-resolution and
//! high-resolution models are important use cases... heavy-duty").
//!
//! A compact EDSR-style network: 640x360 input, 32-channel trunk with four
//! residual blocks, pixel-shuffle x2 upsampling to 1280x720. Tiny
//! parameter count (~0.3M) but enormous computation (~26 GMACs) — the
//! opposite corner of the design space from the classification model, and
//! exactly the "heavyweight" end the paper's Section 3.1 describes.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// Input (low-resolution) height.
pub const LR_HEIGHT: usize = 360;
/// Input (low-resolution) width.
pub const LR_WIDTH: usize = 640;
/// Upscaling factor.
pub const SCALE: usize = 2;
/// Trunk channel width.
pub const CHANNELS: usize = 32;
/// Residual blocks in the trunk.
pub const BLOCKS: usize = 4;

fn res_block(b: &mut GraphBuilder, name: &str, input: NodeId) -> NodeId {
    let c1 = b.conv2d(&format!("{name}/conv1"), input, 3, 1, CHANNELS, Activation::Relu);
    let c2 = b.conv2d(&format!("{name}/conv2"), c1, 3, 1, CHANNELS, Activation::None);
    b.add(&format!("{name}/residual"), input, c2)
}

/// Builds the EDSR-mobile 2x graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "edsr_mobile_x2",
        Shape::nhwc(LR_HEIGHT, LR_WIDTH, 3),
        DataType::F32,
    );
    let stem = b.conv2d("stem", b.input_id(), 3, 1, CHANNELS, Activation::None);
    let mut x = stem;
    for blk in 0..BLOCKS {
        x = res_block(&mut b, &format!("block{blk}"), x);
    }
    let trunk = b.conv2d("trunk_out", x, 3, 1, CHANNELS, Activation::None);
    let skip = b.add("global_skip", stem, trunk);

    // Upsample: conv to scale^2 * C channels, then pixel shuffle (a pure
    // data-movement reshape) to the high-resolution grid.
    let expanded = b.conv2d("upsample/conv", skip, 3, 1, CHANNELS * SCALE * SCALE, Activation::None);
    let shuffled = b.reshape(
        "upsample/pixel_shuffle",
        expanded,
        Shape::nhwc(LR_HEIGHT * SCALE, LR_WIDTH * SCALE, CHANNELS),
    );
    let _out = b.conv2d("reconstruct", shuffled, 3, 1, 3, Activation::None);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn output_is_720p_rgb() {
        let g = build();
        assert_eq!(
            g.output_node().output.shape.dims(),
            &[1, LR_HEIGHT * SCALE, LR_WIDTH * SCALE, 3]
        );
    }

    #[test]
    fn tiny_params_huge_compute() {
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        let gmacs = g.gmacs();
        assert!(params < 0.5, "params {params:.2}M should be tiny");
        assert!(gmacs > 15.0, "gmacs {gmacs:.1} should dwarf the core suite");
        // Heavier than every core-suite model.
        let seg = crate::models::deeplab_v3plus::build().gmacs();
        assert!(gmacs > 2.0 * seg);
    }

    #[test]
    fn pixel_shuffle_preserves_elements() {
        let g = build();
        let shuffle = g.iter().find(|n| n.name.contains("pixel_shuffle")).unwrap();
        let producer = g.node(shuffle.inputs[0]);
        assert_eq!(
            shuffle.output.shape.elements(),
            producer.output.shape.elements()
        );
        assert_eq!(shuffle.cost.flops, 0);
    }

    #[test]
    fn activation_footprint_is_massive() {
        // 720p x 32 channels intermediate: memory-bound territory.
        let g = build();
        let peak = crate::graph::peak_activation_elements(&g);
        assert!(peak >= (720 * 1280 * 32) as u64);
    }
}
