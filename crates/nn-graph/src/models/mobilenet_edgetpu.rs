//! MobileNetEdgeTPU — the v0.7/v1.0 image-classification reference model.
//!
//! A MobileNet-v2 descendant optimized for mobile accelerators: early stages
//! use *fused* inverted bottlenecks (regular convolutions improve hardware
//! utilization), hard-swish and squeeze-excite are removed, later stages use
//! classic inverted bottlenecks. ~4M parameters, 224x224 input, 1001-way
//! classifier (ImageNet + background class).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::models::common::{fused_inverted_bottleneck, inverted_bottleneck};
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// ImageNet input resolution used by the benchmark.
pub const INPUT_SIZE: usize = 224;
/// Classifier width (1000 classes + background).
pub const NUM_CLASSES: usize = 1001;

/// Builds the MobileNetEdgeTPU graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "mobilenet_edgetpu",
        Shape::nhwc(INPUT_SIZE, INPUT_SIZE, 3),
        DataType::F32,
    );
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, 32, Activation::Relu6);

    // Stage 1-2: fused inverted bottlenecks (regular convs, accelerator
    // friendly). (expand, out, kernel, stride, repeats)
    let fused_stages: &[(usize, usize, usize, usize, usize)] = &[
        (4, 24, 3, 2, 1),
        (4, 32, 3, 2, 1),
        (4, 32, 3, 1, 2),
    ];
    let mut blk = 0usize;
    for &(e, c, k, s, n) in fused_stages {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            x = fused_inverted_bottleneck(&mut b, &format!("fused{blk}"), x, e, c, k, stride);
            blk += 1;
        }
    }

    // Stage 3+: classic inverted bottlenecks.
    let ibn_stages: &[(usize, usize, usize, usize, usize)] = &[
        (8, 64, 3, 2, 1),
        (4, 64, 3, 1, 3),
        (8, 96, 3, 1, 1),
        (4, 96, 3, 1, 3),
        (8, 160, 5, 2, 1),
        (4, 160, 5, 1, 3),
        (8, 192, 3, 1, 1),
    ];
    for &(e, c, k, s, n) in ibn_stages {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            x = inverted_bottleneck(&mut b, &format!("ibn{blk}"), x, e, c, k, stride);
            blk += 1;
        }
    }

    let head = b.conv2d("head", x, 1, 1, 1280, Activation::Relu6);
    let pooled = b.global_avg_pool("gap", head);
    let logits = b.fully_connected("logits", pooled, NUM_CLASSES, Activation::None);
    let _probs = b.softmax("probs", logits);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
        assert_eq!(g.name(), "mobilenet_edgetpu");
    }

    #[test]
    fn parameter_count_matches_paper() {
        // Paper Table 1: 4M params.
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((3.0..5.5).contains(&params), "params {params:.2}M out of range");
    }

    #[test]
    fn mac_count_plausible() {
        let g = build();
        let gmacs = g.gmacs();
        assert!((0.3..0.7).contains(&gmacs), "gmacs {gmacs:.3} out of range");
    }

    #[test]
    fn output_is_class_distribution() {
        let g = build();
        let out = &g.output_node().output;
        assert_eq!(out.shape.dims(), &[1, NUM_CLASSES]);
        assert_eq!(g.output_node().op.mnemonic(), "softmax");
    }

    #[test]
    fn no_hard_swish_anywhere() {
        // MobileNetEdgeTPU removed hard-swish for accelerator friendliness.
        use crate::op::{Activation, Op};
        let g = build();
        for n in &g {
            if let Op::Conv2d { activation, .. } | Op::DepthwiseConv2d { activation, .. } = n.op {
                assert_ne!(activation, Activation::HardSwish, "{} uses hard-swish", n.name);
            }
        }
    }

    #[test]
    fn fused_blocks_precede_ibn_blocks() {
        let g = build();
        let first_dw = g.iter().position(|n| n.op.mnemonic() == "dwconv2d").unwrap();
        let fused = g.iter().position(|n| n.name.contains("fused")).unwrap();
        assert!(fused < first_dw, "fused stages must come before depthwise stages");
    }
}
