//! MobileDets-SSD — the v1.0 object-detection reference model.
//!
//! MobileDets (Xiong et al., CVPR 2021) inject *regular* convolutions
//! between inverted bottlenecks, found by NAS to improve the
//! accuracy-latency trade-off on mobile accelerators (EdgeTPU, DSP). The
//! benchmark variant pairs the backbone with an SSDLite (depthwise
//! separable) head at 320x320: fewer parameters than SSD-MobileNet v2 (~4M
//! per paper Table 1) but more computation from the larger input.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::models::common::{fused_inverted_bottleneck, inverted_bottleneck, separable_conv};
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// COCO input resolution for the v1.0 model.
pub const INPUT_SIZE: usize = 320;
/// COCO classes + background.
pub const NUM_CLASSES: usize = 91;
/// Total anchors across the six feature maps (20x20 grid base).
pub const NUM_ANCHORS: usize = 2034;
/// Maximum detections emitted by NMS.
pub const MAX_DETECTIONS: usize = 100;

/// Builds the MobileDets-SSD graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "mobiledet_ssd",
        Shape::nhwc(INPUT_SIZE, INPUT_SIZE, 3),
        DataType::F32,
    );
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, 32, Activation::Relu6);

    // MobileDets-DSP-flavored backbone: fused blocks early, regular convs
    // injected mid-network, inverted bottlenecks late.
    x = fused_inverted_bottleneck(&mut b, "fused0", x, 4, 24, 3, 2); // 80x80
    x = fused_inverted_bottleneck(&mut b, "fused1", x, 4, 24, 3, 1);
    x = fused_inverted_bottleneck(&mut b, "fused2", x, 4, 40, 3, 2); // 40x40
    x = fused_inverted_bottleneck(&mut b, "fused3", x, 4, 40, 3, 1);
    // NAS-injected regular convolution block.
    x = b.conv2d("reg0", x, 3, 1, 64, Activation::Relu6);
    x = inverted_bottleneck(&mut b, "ibn0", x, 4, 64, 3, 2); // 20x20
    x = inverted_bottleneck(&mut b, "ibn1", x, 4, 64, 3, 1);
    x = b.conv2d("reg1", x, 3, 1, 96, Activation::Relu6);
    x = inverted_bottleneck(&mut b, "ibn2", x, 4, 96, 3, 1);
    x = inverted_bottleneck(&mut b, "ibn3", x, 4, 96, 3, 1);
    let feature_20 = x;
    x = inverted_bottleneck(&mut b, "ibn4", x, 8, 160, 5, 2); // 10x10
    x = inverted_bottleneck(&mut b, "ibn5", x, 4, 160, 5, 1);
    let feature_10 = b.conv2d("reg2", x, 3, 1, 240, Activation::Relu6);

    // SSDLite extra layers: separable stride-2 convs.
    let extra = |b: &mut GraphBuilder, name: &str, input: NodeId, out: usize| {
        separable_conv(b, name, input, 3, 2, out, Activation::Relu6)
    };
    let feature_5 = extra(&mut b, "extra1", feature_10, 256);
    let feature_3 = extra(&mut b, "extra2", feature_5, 256);
    let feature_2 = extra(&mut b, "extra3", feature_3, 128);
    let feature_1 = extra(&mut b, "extra4", feature_2, 128);

    // SSDLite box predictors: depthwise-separable heads.
    let per_anchor = 4 + NUM_CLASSES;
    let mut heads = Vec::new();
    let taps: &[(NodeId, usize, &str)] = &[
        (feature_20, 3, "pred0"),
        (feature_10, 6, "pred1"),
        (feature_5, 6, "pred2"),
        (feature_3, 6, "pred3"),
        (feature_2, 6, "pred4"),
        (feature_1, 6, "pred5"),
    ];
    for &(tap, anchors_per_loc, name) in taps {
        let shape = b.output_of(tap).shape.clone();
        let (h, w) = (shape.height(), shape.width());
        let raw = separable_conv(&mut b, name, tap, 3, 1, anchors_per_loc * per_anchor, Activation::None);
        let n_anchors = h * w * anchors_per_loc;
        let r = b.reshape(
            &format!("{name}/flatten"),
            raw,
            Shape::new(&[1, per_anchor, n_anchors]),
        );
        heads.push(r);
    }
    let all = b.concat("anchors", &heads);
    debug_assert_eq!(b.output_of(all).shape.channels(), NUM_ANCHORS);
    let decoded = b.box_decode("decode", all, NUM_ANCHORS, NUM_CLASSES);
    let _det = b.nms("nms", decoded, NUM_ANCHORS, MAX_DETECTIONS);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::op::{Op, OpClass};

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn anchor_arithmetic() {
        // 20x20x3 + 10x10x6 + 5x5x6 + 3x3x6 + 2x2x6 + 1x1x6 = 2034.
        assert_eq!(
            20 * 20 * 3 + 100 * 6 + 25 * 6 + 9 * 6 + 4 * 6 + 6,
            NUM_ANCHORS
        );
    }

    #[test]
    fn parameter_count_matches_paper() {
        // Paper Table 1: 4M params — far fewer than SSD-MobileNet v2.
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((2.0..6.0).contains(&params), "params {params:.2}M out of range");
        let v2 = crate::models::ssd_mobilenet_v2::build().parameter_count();
        assert!(g.parameter_count() * 2 < v2, "MobileDets must be much smaller");
    }

    #[test]
    fn injects_regular_convolutions() {
        // The defining MobileDets property: standalone regular convs exist
        // between bottleneck blocks.
        let g = build();
        let regs: Vec<_> = g.iter().filter(|n| n.name.starts_with("reg")).collect();
        assert!(regs.len() >= 3);
        for r in regs {
            assert!(matches!(r.op, Op::Conv2d { .. }));
        }
    }

    #[test]
    fn higher_resolution_than_v07_model() {
        assert_eq!(INPUT_SIZE, 320);
        assert_eq!(crate::models::ssd_mobilenet_v2::INPUT_SIZE, 300);
    }

    #[test]
    fn postprocessing_present() {
        let g = build();
        assert!(g.iter().any(|n| n.class() == OpClass::Nms));
        assert_eq!(g.output_node().output.shape.dims(), &[1, MAX_DETECTIONS, 6]);
    }
}
