//! SSD-MobileNet v2 — the v0.7 object-detection reference model.
//!
//! MobileNet v2 backbone (300x300 input) feeding a six-scale SSD head with
//! regular-convolution box predictors over 1917 anchors and 91 COCO classes
//! (~17M parameters, matching paper Table 1), followed by box decoding and
//! non-maximum suppression — the post-processing stages that typically fall
//! back to the CPU on mobile accelerators.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::models::common::inverted_bottleneck;
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// COCO input resolution for the v0.7 model.
pub const INPUT_SIZE: usize = 300;
/// COCO classes + background.
pub const NUM_CLASSES: usize = 91;
/// Total anchor count across the six feature maps.
pub const NUM_ANCHORS: usize = 1917;
/// Maximum detections emitted by NMS.
pub const MAX_DETECTIONS: usize = 100;

/// MobileNet v2 inverted-residual table: (expand, channels, repeats, stride).
const MOBILENET_V2: &[(usize, usize, usize, usize)] = &[
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds the SSD-MobileNet v2 graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "ssd_mobilenet_v2",
        Shape::nhwc(INPUT_SIZE, INPUT_SIZE, 3),
        DataType::F32,
    );
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, 32, Activation::Relu6);

    // Backbone, capturing the 19x19 intermediate (expansion of the first
    // stride-16 block group end) used as the first SSD feature map.
    let mut feature_19: Option<NodeId> = None;
    let mut blk = 0usize;
    for (stage, &(e, c, n, s)) in MOBILENET_V2.iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            x = inverted_bottleneck(&mut b, &format!("ibn{blk}"), x, e, c, 3, stride);
            blk += 1;
        }
        // End of the 96-channel stage is the classic 19x19 SSD tap.
        if stage == 4 {
            feature_19 = Some(x);
        }
    }
    let feature_19 = feature_19.expect("stage 4 tap exists");
    let feature_10 = b.conv2d("head_1280", x, 1, 1, 1280, Activation::Relu6);

    // Extra feature layers: 1x1 squeeze then 3x3 stride-2 expand.
    let extra = |b: &mut GraphBuilder, name: &str, input: NodeId, squeeze: usize, expand_c: usize| {
        let s = b.conv2d(&format!("{name}/squeeze"), input, 1, 1, squeeze, Activation::Relu6);
        b.conv2d(&format!("{name}/expand"), s, 3, 2, expand_c, Activation::Relu6)
    };
    let feature_5 = extra(&mut b, "extra1", feature_10, 256, 512);
    let feature_3 = extra(&mut b, "extra2", feature_5, 128, 256);
    let feature_2 = extra(&mut b, "extra3", feature_3, 128, 256);
    let feature_1 = extra(&mut b, "extra4", feature_2, 64, 128);

    // Box predictor per feature map: regular 3x3 conv producing
    // anchors_per_location * (4 + classes) channels, reshaped to
    // [1, 4+classes, n_anchors] for anchor-axis concatenation.
    let per_anchor = 4 + NUM_CLASSES;
    let mut heads = Vec::new();
    let taps: &[(NodeId, usize, &str)] = &[
        (feature_19, 3, "pred0"),
        (feature_10, 6, "pred1"),
        (feature_5, 6, "pred2"),
        (feature_3, 6, "pred3"),
        (feature_2, 6, "pred4"),
        (feature_1, 6, "pred5"),
    ];
    for &(tap, anchors_per_loc, name) in taps {
        let shape = b.output_of(tap).shape.clone();
        let (h, w) = (shape.height(), shape.width());
        let raw = b.conv2d(name, tap, 3, 1, anchors_per_loc * per_anchor, Activation::None);
        let n_anchors = h * w * anchors_per_loc;
        let r = b.reshape(
            &format!("{name}/flatten"),
            raw,
            Shape::new(&[1, per_anchor, n_anchors]),
        );
        heads.push(r);
    }
    let all = b.concat("anchors", &heads);
    debug_assert_eq!(b.output_of(all).shape.channels(), NUM_ANCHORS);
    let decoded = b.box_decode("decode", all, NUM_ANCHORS, NUM_CLASSES);
    let _det = b.nms("nms", decoded, NUM_ANCHORS, MAX_DETECTIONS);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::op::OpClass;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn anchor_count_is_1917() {
        // 19x19x3 + 10x10x6 + 5x5x6 + 3x3x6 + 2x2x6 + 1x1x6 = 1917.
        assert_eq!(
            19 * 19 * 3 + 100 * 6 + 25 * 6 + 9 * 6 + 4 * 6 + 6,
            NUM_ANCHORS
        );
        // And the graph actually produces that many.
        let g = build();
        let decode = g.iter().find(|n| n.name == "decode").unwrap();
        assert_eq!(decode.output.shape.dims()[1], NUM_ANCHORS);
    }

    #[test]
    fn parameter_count_matches_paper() {
        // Paper Table 1: 17M params.
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((14.0..20.0).contains(&params), "params {params:.2}M out of range");
    }

    #[test]
    fn postprocessing_present() {
        let g = build();
        assert!(g.iter().any(|n| n.class() == OpClass::Nms));
        assert!(g.iter().any(|n| n.class() == OpClass::BoxDecode));
        assert_eq!(g.output_node().output.shape.dims(), &[1, MAX_DETECTIONS, 6]);
    }

    #[test]
    fn macs_heavier_than_classifier() {
        let det = build().gmacs();
        let cls = crate::models::mobilenet_edgetpu::build().gmacs();
        assert!(det > cls, "SSD ({det:.2}) must out-weigh classifier ({cls:.2})");
    }
}
