//! Mobile RNN-T — the on-device speech-recognition model the paper lists
//! as in-progress future work (Appendix E: "Speech RNN-T is in the works —
//! we're working with Google and Facebook engineers to build a mobile
//! model version", citing He et al. 2018).
//!
//! A compact streaming transducer: 5 encoder LSTM layers (h=640) over
//! 300 acoustic frames, a 2-layer prediction network, and a joint network
//! with a wordpiece softmax. ~23M parameters, LSTM-dominated — an op class
//! most mobile AI engines cannot run, so like MobileBERT it exercises the
//! CPU/GPU fallback paths rather than the NPUs.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// Acoustic frames per utterance (3 s at a 10 ms hop).
pub const FRAMES: usize = 300;
/// Log-mel feature bins per frame.
pub const FEATURES: usize = 80;
/// LSTM hidden width.
pub const HIDDEN: usize = 640;
/// Encoder LSTM layers.
pub const ENCODER_LAYERS: usize = 5;
/// Prediction-network LSTM layers.
pub const PREDICTION_LAYERS: usize = 2;
/// Wordpiece vocabulary (incl. blank).
pub const VOCAB: usize = 1024;
/// Joint-network width.
pub const JOINT: usize = 512;

/// Builds the mobile RNN-T graph at FP32.
///
/// The decoding loop is modeled at its per-utterance cost: the prediction
/// and joint networks are evaluated once per encoder frame (the greedy
/// decode upper bound), expressed as sequence ops over the frame axis.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "mobile_rnnt",
        Shape::seq(FRAMES, FEATURES),
        DataType::F32,
    );
    // Encoder: stacked unidirectional LSTMs (streaming).
    let mut x = b.input_id();
    for layer in 0..ENCODER_LAYERS {
        x = b.lstm(&format!("encoder/lstm{layer}"), x, HIDDEN);
    }
    let enc = b.seq_dense("encoder/proj", x, JOINT, Activation::None);

    // Prediction network over the decode steps (bounded by frame count).
    let mut p = enc;
    for layer in 0..PREDICTION_LAYERS {
        p = b.lstm(&format!("prediction/lstm{layer}"), p, HIDDEN);
    }
    let pred = b.seq_dense("prediction/proj", p, JOINT, Activation::None);

    // Joint network: combine, nonlinearity, wordpiece logits.
    let joint = b.add("joint/combine", enc, pred);
    let joint = b.seq_dense("joint/dense", joint, JOINT, Activation::Tanh);
    let logits = b.seq_dense("joint/logits", joint, VOCAB, Activation::None);
    let _probs = b.softmax("joint/probs", logits);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::op::OpClass;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
        assert_eq!(g.name(), "mobile_rnnt");
    }

    #[test]
    fn parameter_count_mobile_scale() {
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((15.0..32.0).contains(&params), "params {params:.1}M");
    }

    #[test]
    fn lstm_dominates_compute() {
        let g = build();
        let total = g.total_cost().flops;
        let lstm: u64 = g
            .iter()
            .filter(|n| n.class() == OpClass::Lstm)
            .map(|n| n.cost.flops)
            .sum();
        assert!(
            lstm as f64 > 0.7 * total as f64,
            "LSTM share {:.2} should dominate",
            lstm as f64 / total as f64
        );
    }

    #[test]
    fn seven_lstm_layers() {
        let g = build();
        let lstms = g.iter().filter(|n| n.class() == OpClass::Lstm).count();
        assert_eq!(lstms, ENCODER_LAYERS + PREDICTION_LAYERS);
    }

    #[test]
    fn heavy_like_bert() {
        let g = build();
        let gmacs = g.gmacs();
        assert!((4.0..12.0).contains(&gmacs), "gmacs {gmacs:.1}");
    }

    #[test]
    fn output_is_wordpiece_distribution() {
        let g = build();
        assert_eq!(g.output_node().output.shape.dims(), &[1, FRAMES, VOCAB]);
        assert_eq!(g.output_node().op.mnemonic(), "softmax");
    }
}
