//! Shared building blocks for the reference models: inverted bottlenecks
//! (MobileNet v2), fused inverted bottlenecks (MobileNetEdgeTPU, MobileDets)
//! and depthwise-separable convolutions (SSDLite, DeepLab decoder).

use crate::builder::GraphBuilder;
use crate::graph::NodeId;
use crate::op::Activation;

/// Inverted bottleneck (MobileNet v2 "MBConv"): 1x1 expand → depthwise →
/// 1x1 linear project, with a residual when stride is 1 and channels match.
pub fn inverted_bottleneck(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    expand: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
) -> NodeId {
    let in_channels = b.output_of(input).shape.channels();
    let mid = in_channels * expand;
    let mut x = input;
    if expand != 1 {
        x = b.conv2d(&format!("{name}/expand"), x, 1, 1, mid, Activation::Relu6);
    }
    x = b.depthwise_conv2d(&format!("{name}/dw"), x, kernel, stride, Activation::Relu6);
    let projected = b.conv2d(&format!("{name}/project"), x, 1, 1, out_channels, Activation::None);
    if stride == 1 && in_channels == out_channels {
        b.add(&format!("{name}/residual"), input, projected)
    } else {
        projected
    }
}

/// Fused inverted bottleneck (MobileNetEdgeTPU / MobileDets): a regular
/// `k x k` expansion convolution replaces the 1x1-expand + depthwise pair,
/// trading MACs for hardware utilization on wide accelerators.
pub fn fused_inverted_bottleneck(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    expand: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
) -> NodeId {
    let in_channels = b.output_of(input).shape.channels();
    let mid = in_channels * expand;
    let x = b.conv2d(&format!("{name}/fused"), input, kernel, stride, mid, Activation::Relu6);
    let projected = b.conv2d(&format!("{name}/project"), x, 1, 1, out_channels, Activation::None);
    if stride == 1 && in_channels == out_channels {
        b.add(&format!("{name}/residual"), input, projected)
    } else {
        projected
    }
}

/// Depthwise-separable convolution (SSDLite prediction layers, DeepLab
/// decoder): depthwise `k x k` followed by a 1x1 projection.
pub fn separable_conv(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    kernel: usize,
    stride: usize,
    out_channels: usize,
    activation: Activation,
) -> NodeId {
    let x = b.depthwise_conv2d(&format!("{name}/dw"), input, kernel, stride, Activation::Relu6);
    b.conv2d(&format!("{name}/pw"), x, 1, 1, out_channels, activation)
}

/// Atrous depthwise-separable convolution for the DeepLab ASPP branches.
pub fn atrous_separable_conv(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    rate: usize,
    out_channels: usize,
) -> NodeId {
    // Depthwise with dilation is modeled as a dilated regular conv per
    // channel; cost-wise a depthwise conv's MACs do not change with
    // dilation, so we use the depthwise op and note the rate in the name.
    let x = b.depthwise_conv2d(&format!("{name}/dw_rate{rate}"), input, 3, 1, Activation::Relu6);
    b.conv2d(&format!("{name}/pw"), x, 1, 1, out_channels, Activation::Relu6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{DataType, Shape};

    #[test]
    fn ibn_residual_when_stride1_same_channels() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(14, 14, 64), DataType::F32);
        let inp = b.input_id();
        let out = inverted_bottleneck(&mut b, "blk", inp, 6, 64, 3, 1);
        // Residual add means the output node is an eltwise add.
        assert_eq!(b.output_of(out).shape, Shape::nhwc(14, 14, 64));
        let g = b.finish();
        assert_eq!(g.output_node().op.mnemonic(), "add");
    }

    #[test]
    fn ibn_no_residual_on_stride2() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(14, 14, 64), DataType::F32);
        let inp = b.input_id();
        let out = inverted_bottleneck(&mut b, "blk", inp, 6, 96, 3, 2);
        assert_eq!(b.output_of(out).shape, Shape::nhwc(7, 7, 96));
        let g = b.finish();
        assert_eq!(g.output_node().op.mnemonic(), "conv2d");
    }

    #[test]
    fn ibn_expand1_skips_expansion() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(112, 112, 32), DataType::F32);
        let inp = b.input_id();
        let _ = inverted_bottleneck(&mut b, "blk", inp, 1, 16, 3, 1);
        let g = b.finish();
        // input + dw + project = 3 nodes (no expand, no residual).
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn fused_block_uses_regular_conv() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(56, 56, 24), DataType::F32);
        let inp = b.input_id();
        let _ = fused_inverted_bottleneck(&mut b, "blk", inp, 4, 32, 3, 2);
        let g = b.finish();
        let convs: Vec<_> = g.iter().filter(|n| n.op.mnemonic() == "conv2d").collect();
        assert_eq!(convs.len(), 2); // fused kxk + 1x1 project
        assert!(g.iter().all(|n| n.op.mnemonic() != "dwconv2d"));
    }

    #[test]
    fn separable_halves_params_vs_dense() {
        let mut b1 = GraphBuilder::new("sep", Shape::nhwc(19, 19, 576), DataType::F32);
        let i1 = b1.input_id();
        let _ = separable_conv(&mut b1, "p", i1, 3, 1, 24, Activation::None);
        let sep = b1.finish().parameter_count();

        let mut b2 = GraphBuilder::new("dense", Shape::nhwc(19, 19, 576), DataType::F32);
        let i2 = b2.input_id();
        let _ = b2.conv2d("p", i2, 3, 1, 24, Activation::None);
        let dense = b2.finish().parameter_count();
        assert!(sep * 2 < dense, "separable {sep} should be far below dense {dense}");
    }
}
