//! DeepLab v3+ (MobileNet v2 backbone) — the semantic-segmentation
//! reference model.
//!
//! Encoder/decoder with atrous spatial pyramid pooling (ASPP) at output
//! stride 16, MobileNet v2 feature extractor, and a 32-class head (the 31
//! most frequent ADE20K classes plus an "other" bucket, per the paper's
//! Section 3.2). 512x512 input, ~2M parameters.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::models::common::{atrous_separable_conv, inverted_bottleneck, separable_conv};
use crate::op::Activation;
use crate::tensor::{DataType, Shape};

/// ADE20K crop resolution used by the benchmark.
pub const INPUT_SIZE: usize = 512;
/// Predicted classes: 31 frequent ADE20K classes + 1 "other".
pub const NUM_CLASSES: usize = 32;

/// Builds the DeepLab v3+ graph at FP32.
#[must_use]
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "deeplab_v3plus_mnv2",
        Shape::nhwc(INPUT_SIZE, INPUT_SIZE, 3),
        DataType::F32,
    );
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, 32, Activation::Relu6); // 256

    // MobileNet v2 backbone at output stride 16: the last stride-2 stage
    // runs at stride 1 with (conceptually) dilated depthwise convs.
    // (expand, channels, repeats, stride)
    let stages: &[(usize, usize, usize, usize)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),  // 128 — low-level decoder tap after this stage
        (6, 32, 3, 2),  // 64
        (6, 64, 4, 2),  // 32 (= output stride 16)
        (6, 96, 3, 1),
        (6, 160, 3, 1), // stride 1 instead of 2: atrous, keeps 32x32
        (6, 320, 1, 1),
    ];
    let mut low_level = None;
    let mut blk = 0usize;
    for (stage, &(e, c, n, s)) in stages.iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            x = inverted_bottleneck(&mut b, &format!("ibn{blk}"), x, e, c, 3, stride);
            blk += 1;
        }
        if stage == 1 {
            low_level = Some(x);
        }
    }
    let low_level = low_level.expect("low-level tap exists");

    // ASPP over the 32x32x320 encoder output: 1x1 branch, three atrous
    // separable branches (rates 6/12/18), and global image pooling.
    let aspp_c = 192;
    let b0 = b.conv2d("aspp/b0", x, 1, 1, aspp_c, Activation::Relu6);
    let b1 = atrous_separable_conv(&mut b, "aspp/b1", x, 6, aspp_c);
    let b2 = atrous_separable_conv(&mut b, "aspp/b2", x, 12, aspp_c);
    let b3 = atrous_separable_conv(&mut b, "aspp/b3", x, 18, aspp_c);
    let pooled = b.global_avg_pool("aspp/pool", x);
    let pooled = b.conv2d("aspp/pool_proj", pooled, 1, 1, aspp_c, Activation::Relu6);
    let pooled = b.resize_bilinear("aspp/pool_up", pooled, 32, 32);
    let aspp = b.concat("aspp/concat", &[b0, b1, b2, b3, pooled]);
    let enc = b.conv2d("aspp/project", aspp, 1, 1, aspp_c, Activation::Relu6);

    // Decoder: upsample x4, fuse with the reduced low-level feature, refine
    // with separable convs, classify, upsample to full resolution.
    let up4 = b.resize_bilinear("decoder/up4", enc, 128, 128);
    let low = b.conv2d("decoder/low_proj", low_level, 1, 1, 48, Activation::Relu6);
    let fused = b.concat("decoder/concat", &[up4, low]);
    let r1 = separable_conv(&mut b, "decoder/refine1", fused, 3, 1, 160, Activation::Relu6);
    let r2 = separable_conv(&mut b, "decoder/refine2", r1, 3, 1, 160, Activation::Relu6);
    let logits = b.conv2d("classifier", r2, 1, 1, NUM_CLASSES, Activation::None);
    let _out = b.resize_bilinear("upsample_out", logits, INPUT_SIZE, INPUT_SIZE);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::op::OpClass;

    #[test]
    fn builds_and_validates() {
        let g = build();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn parameter_count_matches_paper() {
        // Paper Table 1: 2M params.
        let g = build();
        let params = g.parameter_count() as f64 / 1e6;
        assert!((1.2..3.5).contains(&params), "params {params:.2}M out of range");
    }

    #[test]
    fn output_is_per_pixel_classes() {
        let g = build();
        let out = &g.output_node().output.shape;
        assert_eq!(out.dims(), &[1, INPUT_SIZE, INPUT_SIZE, NUM_CLASSES]);
    }

    #[test]
    fn aspp_has_atrous_and_pooling_branches() {
        let g = build();
        assert!(g.iter().any(|n| n.name.contains("aspp/b1")));
        assert!(g.iter().any(|n| n.name.contains("aspp/pool")));
        // Decoder performs bilinear upsampling twice plus the ASPP pool-up.
        let resizes = g.iter().filter(|n| n.class() == OpClass::Resize).count();
        assert_eq!(resizes, 3);
    }

    #[test]
    fn heaviest_vision_model() {
        // Segmentation at 512x512 out-computes classification and detection.
        let seg = build().gmacs();
        let cls = crate::models::mobilenet_edgetpu::build().gmacs();
        assert!(seg > 3.0 * cls, "seg {seg:.2} vs cls {cls:.2}");
    }

    #[test]
    fn large_activation_footprint() {
        // The full-resolution output map dominates peak activations: 512*512*32.
        let g = build();
        let peak = crate::graph::peak_activation_elements(&g);
        assert_eq!(peak, (INPUT_SIZE * INPUT_SIZE * NUM_CLASSES) as u64);
    }
}
