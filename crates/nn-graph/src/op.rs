//! Operator definitions for the graph IR.
//!
//! Operators carry the attributes needed to compute output shapes and
//! arithmetic/memory cost. They are deliberately at the granularity the
//! mobile frameworks schedule at (a fused conv+BN+ReLU is one `Conv2d`),
//! because that is the unit vendor compilers place onto engines.

use crate::tensor::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Padding policy for spatial ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// Output spatial size = ceil(input / stride) ("SAME").
    Same,
    /// No padding; output = floor((input - kernel) / stride) + 1 ("VALID").
    Valid,
}

impl Padding {
    /// Output spatial extent for one dimension.
    #[must_use]
    pub fn output_extent(self, input: usize, kernel: usize, stride: usize, dilation: usize) -> usize {
        let effective_kernel = dilation * (kernel - 1) + 1;
        match self {
            Padding::Same => input.div_ceil(stride),
            Padding::Valid => {
                assert!(
                    input >= effective_kernel,
                    "VALID padding: input {input} smaller than effective kernel {effective_kernel}"
                );
                (input - effective_kernel) / stride + 1
            }
        }
    }
}

/// Activation fused into a compute op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No activation.
    None,
    /// Rectified linear unit.
    Relu,
    /// ReLU clamped at 6, the mobile default.
    Relu6,
    /// Hard swish (MobileNet v3 family; *removed* in MobileNetEdgeTPU).
    HardSwish,
    /// Gaussian error linear unit (MobileBERT).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Average pooling (global average pooling when kernel == input).
    Average,
    /// Max pooling.
    Max,
}

/// Element-wise binary op flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EltwiseKind {
    /// Addition — residual connections.
    Add,
    /// Multiplication — attention masking, SE-style scaling.
    Mul,
}

/// Coarse operator class used by backends' op-support tables.
///
/// A vendor engine advertises support per class (e.g. an NPU supports
/// `Conv` and `DepthwiseConv` but not `Nms`, which falls back to the CPU) —
/// this is exactly the fragmentation the paper's Section 2.2 describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Regular convolution (incl. atrous).
    Conv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Fully connected / dense.
    FullyConnected,
    /// Batched matrix multiply (attention score/context).
    MatMul,
    /// Pooling.
    Pool,
    /// Softmax.
    Softmax,
    /// Layer normalization.
    LayerNorm,
    /// Element-wise binary ops.
    Eltwise,
    /// Concatenation.
    Concat,
    /// Reshape / transpose / squeeze — data movement only.
    Shape,
    /// Bilinear resize (DeepLab decoder upsampling).
    Resize,
    /// Embedding table lookup (MobileBERT input).
    Embedding,
    /// Non-maximum suppression (SSD post-processing).
    Nms,
    /// SSD anchor decode (box regression to corners).
    BoxDecode,
    /// Long short-term memory recurrence (speech models). Few mobile AI
    /// engines support it — the same support gap that pushes NLP off the
    /// NPUs (paper Insight 5).
    Lstm,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An operator with its attributes.
///
/// Shapes of inputs/outputs live on the graph nodes; the op holds only the
/// parameters that are intrinsic to the operator itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// 2-D convolution, optionally dilated (atrous), with fused activation.
    Conv2d {
        /// Square kernel extent.
        kernel: usize,
        /// Stride in both spatial dimensions.
        stride: usize,
        /// Output channel count.
        out_channels: usize,
        /// Dilation rate (1 = dense; >1 = atrous, used by DeepLab ASPP).
        dilation: usize,
        /// Padding policy.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Depthwise 2-D convolution with fused activation.
    DepthwiseConv2d {
        /// Square kernel extent.
        kernel: usize,
        /// Stride in both spatial dimensions.
        stride: usize,
        /// Dilation rate.
        dilation: usize,
        /// Padding policy.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Fully connected layer.
    FullyConnected {
        /// Output feature count.
        out_features: usize,
        /// Fused activation.
        activation: Activation,
    },
    /// Batched matrix multiply: `[.., m, k] x [.., k, n] -> [.., m, n]`.
    MatMul {
        /// Inner (contraction) dimension.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Pooling flavor.
        kind: PoolKind,
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Softmax over the last dimension.
    Softmax,
    /// Layer normalization over the last dimension.
    LayerNorm,
    /// Element-wise binary operation between two same-shaped tensors.
    Eltwise {
        /// Flavor.
        kind: EltwiseKind,
    },
    /// Channel-wise concatenation of the inputs.
    Concat,
    /// Pure data-movement reshape/transpose to an explicit output shape.
    Reshape {
        /// Target shape (element count must match the input).
        shape: Shape,
    },
    /// Bilinear resize to a new spatial extent.
    ResizeBilinear {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// Embedding lookup producing `[1, seq, hidden]`.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding width.
        hidden: usize,
        /// Sequence length.
        seq: usize,
    },
    /// Non-maximum suppression over decoded boxes.
    Nms {
        /// Maximum detections kept.
        max_detections: usize,
        /// Anchor count evaluated.
        anchors: usize,
    },
    /// SSD anchor box decoding.
    BoxDecode {
        /// Anchor count.
        anchors: usize,
        /// Classes scored per anchor.
        classes: usize,
    },
    /// LSTM layer over a `[1, seq, in]` sequence producing `[1, seq, h]`:
    /// input and recurrent projections into the four gates plus the cell
    /// update (weights `(in + h) * 4h`, strictly sequential over time).
    Lstm {
        /// Hidden (and cell) width.
        hidden: usize,
    },
}

impl Op {
    /// The coarse class used by backend op-support tables.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            Op::Conv2d { .. } => OpClass::Conv,
            Op::DepthwiseConv2d { .. } => OpClass::DepthwiseConv,
            Op::FullyConnected { .. } => OpClass::FullyConnected,
            Op::MatMul { .. } => OpClass::MatMul,
            Op::Pool { .. } => OpClass::Pool,
            Op::Softmax => OpClass::Softmax,
            Op::LayerNorm => OpClass::LayerNorm,
            Op::Eltwise { .. } => OpClass::Eltwise,
            Op::Concat => OpClass::Concat,
            Op::Reshape { .. } => OpClass::Shape,
            Op::ResizeBilinear { .. } => OpClass::Resize,
            Op::Embedding { .. } => OpClass::Embedding,
            Op::Nms { .. } => OpClass::Nms,
            Op::BoxDecode { .. } => OpClass::BoxDecode,
            Op::Lstm { .. } => OpClass::Lstm,
        }
    }

    /// Short human-readable mnemonic, used in schedules and logs.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Conv2d { dilation, .. } if *dilation > 1 => "atrous_conv2d",
            Op::Conv2d { .. } => "conv2d",
            Op::DepthwiseConv2d { .. } => "dwconv2d",
            Op::FullyConnected { .. } => "fc",
            Op::MatMul { .. } => "matmul",
            Op::Pool { kind: PoolKind::Average, .. } => "avgpool",
            Op::Pool { kind: PoolKind::Max, .. } => "maxpool",
            Op::Softmax => "softmax",
            Op::LayerNorm => "layernorm",
            Op::Eltwise { kind: EltwiseKind::Add } => "add",
            Op::Eltwise { kind: EltwiseKind::Mul } => "mul",
            Op::Concat => "concat",
            Op::Reshape { .. } => "reshape",
            Op::ResizeBilinear { .. } => "resize_bilinear",
            Op::Embedding { .. } => "embedding",
            Op::Nms { .. } => "nms",
            Op::BoxDecode { .. } => "box_decode",
            Op::Lstm { .. } => "lstm",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_same() {
        assert_eq!(Padding::Same.output_extent(224, 3, 2, 1), 112);
        assert_eq!(Padding::Same.output_extent(7, 3, 1, 1), 7);
    }

    #[test]
    fn padding_valid() {
        assert_eq!(Padding::Valid.output_extent(224, 3, 2, 1), 111);
        assert_eq!(Padding::Valid.output_extent(7, 7, 1, 1), 1);
    }

    #[test]
    fn padding_valid_with_dilation() {
        // effective kernel = 2*(3-1)+1 = 5
        assert_eq!(Padding::Valid.output_extent(9, 3, 1, 2), 5);
    }

    #[test]
    #[should_panic(expected = "VALID padding")]
    fn padding_valid_too_small() {
        let _ = Padding::Valid.output_extent(2, 3, 1, 1);
    }

    #[test]
    fn op_classes() {
        let conv = Op::Conv2d {
            kernel: 3,
            stride: 1,
            out_channels: 8,
            dilation: 1,
            padding: Padding::Same,
            activation: Activation::Relu6,
        };
        assert_eq!(conv.class(), OpClass::Conv);
        assert_eq!(conv.mnemonic(), "conv2d");

        let atrous = Op::Conv2d {
            kernel: 3,
            stride: 1,
            out_channels: 8,
            dilation: 12,
            padding: Padding::Same,
            activation: Activation::None,
        };
        assert_eq!(atrous.mnemonic(), "atrous_conv2d");
        assert_eq!(atrous.class(), OpClass::Conv);

        assert_eq!(Op::Softmax.class(), OpClass::Softmax);
        assert_eq!(
            Op::Nms { max_detections: 10, anchors: 1917 }.class(),
            OpClass::Nms
        );
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(Op::LayerNorm.mnemonic(), "layernorm");
        assert_eq!(
            Op::Eltwise { kind: EltwiseKind::Add }.mnemonic(),
            "add"
        );
        assert_eq!(
            Op::Pool { kind: PoolKind::Average, kernel: 7, stride: 1 }.to_string(),
            "avgpool"
        );
    }
}
